#!/usr/bin/env python3
"""layering-check: keep the trusted side of the stack server-blind.

The refactor that extracted :mod:`repro.services.backend` holds only if
nothing above the seam quietly reaches around it.  This lint parses
every module under ``src/repro`` (AST only — nothing is imported) and
enforces the layering that ``docs/architecture.md`` documents:

* **client and extension code** (``repro.client.*``,
  ``repro.extension.*``) may import from ``repro.services`` only the
  wire-protocol surface: ``repro.services.backend``, the request/
  response builders (``repro.services.gdocs.protocol``,
  ``repro.services.bespin``'s builders, ``repro.services.buzzword``'s
  XML helpers).  The *simulated servers* and their storage
  (``repro.services.gdocs.server`` / ``storage`` / ``pieces``), the
  replication facade (``repro.services.replicated``), and — for the
  client layer — the server-constructing ``repro.services.registry``
  are off limits: a client that imports a server is a client whose
  tests prove nothing about the wire contract.
  (``repro.extension`` gets a registry exemption: the session/stack
  builders are exactly the place that turns a service *name* into a
  server.)
* **service code** (``repro.services.*``) may not import
  ``repro.client`` or ``repro.extension`` — providers are untrusted
  and know nothing of the mediation stack above them.
* **the OT merge engine** (``repro.services.ot``, PR 8) additionally
  may not import ``repro.crypto``: it rebases ciphertext deltas
  *blind*, and a merge engine holding key material would be a
  provider that can read.
* **transport/server code** (``repro.net.*``, PR 7) sits below the
  trust boundary and sees only ciphertext: it may not import the
  trusted layer (``repro.client``, ``repro.extension``) *or*
  ``repro.crypto`` — a transport with key material in scope is a
  transport one bug away from leaking it.
* **trusted code reaches a server only through the Transport seam**:
  ``repro.client.*`` / ``repro.extension.*`` may not import
  ``repro.net.server`` (the socket server is provider territory), and
  the client layer may not import ``repro.net.pool`` either — it holds
  a ``Transport``, never raw connections.
* **the tenant catalog** (``repro.services.catalog``, PR 10) is a
  provider like any other (trusted-layer imports banned by the
  services rule) and additionally may not import ``repro.crypto``:
  it stores opaque trapdoors and posting blobs, and a catalog with
  key material in scope could decrypt exactly what searchable
  encryption keeps from it.
* **the audit-chain core** (``repro.core.auditchain``, PR 10) is
  shared by the client (verifier) and the catalog (prover) and may
  not import ``repro.services`` — a chain primitive reaching into
  server code would let the prover pick what the verifier checks.
* as a belt-and-braces check, client/extension modules may not bind
  the server class names (``GDocsServer``, ``BespinServer``,
  ``CatalogService``, ...) via ``from ... import`` even through a
  re-export.

Run via ``make layering-check`` (part of ``make test``); exits
non-zero listing every violation with its file and line.
"""

from __future__ import annotations

import ast
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: modules client/extension code must never import (server internals)
SERVER_MODULES = (
    "repro.services.gdocs.server",
    "repro.services.gdocs.storage",
    "repro.services.gdocs.pieces",
    "repro.services.replicated",
)

#: server-side class names that must not be bound above the seam
SERVER_NAMES = frozenset({
    "GDocsServer", "BespinServer", "BuzzwordServer",
    "ReplicatedService", "FlakyServer", "DocumentStore",
    "CatalogService", "CatalogStore",
})

#: the one extension-layer module family allowed to build servers
REGISTRY = "repro.services.registry"

#: the socket server — untrusted territory, banned on the trusted side
NET_SERVER = "repro.net.server"

#: the raw connection machinery — clients hold a Transport, not sockets
NET_POOL = "repro.net.pool"

#: what transport/server code (repro.net.*) must never import
NET_BANNED = ("repro.client", "repro.extension", "repro.crypto")

#: the server-side OT merge engine (PR 8) — pure ciphertext-delta
#: algebra.  It already may not import client/extension (it lives
#: under repro.services); key material is banned on top of that: a
#: merge engine that can decrypt is a provider that can read.
OT_MODULE = "repro.services.ot"
OT_BANNED = ("repro.crypto",)

#: the catalog server op (PR 10) — trapdoor-keyed posting store plus
#: the tenant's audit chains.  The general services rule already bans
#: the trusted layer; key material is banned on top: a catalog holding
#: keys could decrypt the very postings searchable encryption hides.
CATALOG_MODULE = "repro.services.catalog"
CATALOG_BANNED = ("repro.crypto",)

#: the audit-chain core (PR 10) — pure hash-link algebra shared by the
#: client (verifier) and the catalog (appender).  It must not import
#: the services layer: a chain primitive reaching into server code
#: would let the prover pick what the verifier checks.
AUDIT_MODULE = "repro.core.auditchain"
AUDIT_BANNED = ("repro.services",)


def _module_name(path: pathlib.Path) -> str:
    relative = path.relative_to(SRC.parent).with_suffix("")
    parts = list(relative.parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _imports(tree: ast.AST):
    """Yield (lineno, imported_module, bound_names) for every import."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name, ()
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import; resolve best-effort later
                continue
            names = tuple(alias.name for alias in node.names)
            yield node.lineno, node.module or "", names


def _covers(imported: str, module: str) -> bool:
    return imported == module or imported.startswith(module + ".")


def check(path: pathlib.Path) -> list[str]:
    """All layering violations in one source file."""
    return check_source(_module_name(path),
                        path.read_text(encoding="utf-8"),
                        str(path.relative_to(REPO)))


def check_source(module: str, source: str, where: str = "<source>"
                 ) -> list[str]:
    """All layering violations in ``source`` as module ``module``
    (split out from :func:`check` so tests can feed synthetic code)."""
    tree = ast.parse(source, filename=where)
    problems: list[str] = []
    in_trusted = (module.startswith("repro.client")
                  or module.startswith("repro.extension"))
    in_services = module.startswith("repro.services")
    in_net = module == "repro.net" or module.startswith("repro.net.")

    for lineno, imported, names in _imports(tree):
        spot = f"{where}:{lineno}"
        if in_trusted:
            if _covers(imported, NET_SERVER):
                problems.append(
                    f"{spot}: {module} imports the socket server "
                    f"({imported}) — trusted code reaches a server "
                    f"only through the Transport seam"
                )
            if (_covers(imported, NET_POOL)
                    and module.startswith("repro.client")):
                problems.append(
                    f"{spot}: {module} imports {NET_POOL} — clients "
                    f"hold a Transport, never raw connections"
                )
            for banned in SERVER_MODULES:
                if _covers(imported, banned):
                    problems.append(
                        f"{spot}: {module} imports server internals "
                        f"{imported} (go through repro.services.backend)"
                    )
            if (_covers(imported, REGISTRY)
                    and module.startswith("repro.client")):
                problems.append(
                    f"{spot}: {module} imports {REGISTRY} — clients "
                    f"take a ServiceBackend, they do not build servers"
                )
            bound = SERVER_NAMES.intersection(names)
            if bound:
                problems.append(
                    f"{spot}: {module} binds server name(s) "
                    f"{', '.join(sorted(bound))} from {imported}"
                )
        if in_services and (_covers(imported, "repro.client")
                            or _covers(imported, "repro.extension")):
            problems.append(
                f"{spot}: service module {module} imports the trusted "
                f"layer ({imported}) — providers are untrusted and "
                f"must not know the mediation stack"
            )
        if module == OT_MODULE:
            for banned in OT_BANNED:
                if _covers(imported, banned):
                    problems.append(
                        f"{spot}: {module} imports {imported} — the OT "
                        f"merge engine transforms ciphertext deltas "
                        f"blind and must never hold key material"
                    )
        if module == CATALOG_MODULE or \
                module.startswith(CATALOG_MODULE + "."):
            for banned in CATALOG_BANNED:
                if _covers(imported, banned):
                    problems.append(
                        f"{spot}: {module} imports {imported} — the "
                        f"catalog stores opaque trapdoors and postings "
                        f"and must never hold key material"
                    )
        if module == AUDIT_MODULE:
            for banned in AUDIT_BANNED:
                if _covers(imported, banned):
                    problems.append(
                        f"{spot}: {module} imports {imported} — the "
                        f"audit-chain core is shared by verifier and "
                        f"prover; pulling in server code would let the "
                        f"prover pick what the verifier checks"
                    )
        if in_net:
            for banned in NET_BANNED:
                if _covers(imported, banned):
                    problems.append(
                        f"{spot}: transport module {module} imports "
                        f"{imported} — repro.net sits below the trust "
                        f"boundary and must see only ciphertext"
                    )
    return problems


def main() -> int:
    """Lint every module under src/repro; print violations, exit 1."""
    problems: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        problems.extend(check(path))
    if problems:
        print("layering-check: FAIL")
        for problem in problems:
            print("  " + problem)
        return 1
    count = len(list(SRC.rglob('*.py')))
    print(f"layering-check: OK ({count} modules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
