#!/usr/bin/env python3
"""``make coverage`` backend: line coverage with a stdlib fallback.

Preferred path: if ``pytest-cov`` (or bare ``coverage``) is installed,
delegate to it over the full test suite.  This container intentionally
ships without either, and the repo's no-new-dependencies rule forbids
installing them — so the fallback measures line coverage of the
``repro.fuzz`` package (the subsystem this harness is responsible for)
with ``sys.settrace``:

1. executable lines are enumerated by compiling each module and
   walking every code object's ``co_lines()`` table — the same source
   of truth ``coverage.py`` uses;
2. a trace function records lines as a representative workload runs
   in-process: trace generation and JSON round-trips, all three
   execution modes, a forced failure driven through the shrinker, and
   corpus serialization;
3. the percentage is checked against the threshold (``--min``, wired
   to ``COVERAGE_MIN`` in the Makefile).

Usage: ``python tools/coverage_tool.py [--min PCT] [--report]``.
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
FUZZ_DIR = SRC / "repro" / "fuzz"


def executable_lines(path: Path) -> set[int]:
    """Line numbers with generated code, per the compiled line table."""
    code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(line for _, _, line in obj.co_lines()
                     if line is not None)
        stack.extend(const for const in obj.co_consts
                     if isinstance(const, type(code)))
    return lines


def delegate_to_pytest_cov() -> int:
    """The real thing, when the environment has it."""
    print("coverage: pytest-cov available; delegating to it")
    return subprocess.call(
        [sys.executable, "-m", "pytest", "tests/",
         "--cov=repro", "--cov-report=term-missing", "-q"],
        cwd=str(REPO),
        env={"PYTHONPATH": str(SRC), **__import__("os").environ},
    )


def run_workload() -> None:
    """Exercise every repro.fuzz code path worth measuring."""
    import tempfile

    from repro.fuzz import FuzzRunner, generate_trace, run_trace
    from repro.fuzz.generators import PROFILES, Trace, corpus_strings
    from repro.fuzz.model import InvariantViolation, Violation
    from repro.fuzz.shrink import shrink_trace
    from repro.fuzz import runner as runner_mod

    # generators: every profile, JSON round-trips, the string corpus
    corpus_strings(1, 20)
    for name in PROFILES:
        for seed in range(3):
            trace = generate_trace(seed, name)
            assert Trace.from_json(trace.to_json()) == trace

    # runner: a mixed batch through all three modes + corpus writing
    with tempfile.TemporaryDirectory() as tmp:
        report = FuzzRunner(seed=0, iters=40, profile="ci",
                            corpus_dir=tmp).run()
        assert report.iterations == 40
        for mode in ("engine", "session", "concurrent"):
            run_trace(generate_trace(5, "ci", mode=mode))

    # shrink: drive the minimizer with a synthetic failure (an op with
    # the text "BUG" trips it), covering the success branches
    real_execute = runner_mod.execute_trace

    def fake_execute(trace):
        if any(op[0] == "i" and "BUG" in op[2] for op in trace.ops
               if op[0] != "s"):
            raise InvariantViolation(
                Violation("synthetic", 0, "planted for coverage"))
        return "fp"

    runner_mod.execute_trace = fake_execute
    try:
        big = generate_trace(11, "ci", mode="engine")
        ops = big.ops + (("i", 0, "xBUGx", 0),)
        shrunk = shrink_trace(big.replaced(ops=ops),
                              Violation("synthetic", 0, ""))
        assert any("BUG" in op[2] for op in shrunk.ops if op[0] == "i")
    finally:
        runner_mod.execute_trace = real_execute


def measure_fallback() -> tuple[int, int, dict[str, tuple[int, int]]]:
    """(covered, total, per-file) for src/repro/fuzz under settrace."""
    targets = {str(p): executable_lines(p)
               for p in sorted(FUZZ_DIR.glob("*.py"))}
    hit: dict[str, set[int]] = {name: set() for name in targets}

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if filename in hit:
            if event == "line":
                hit[filename].add(frame.f_lineno)
            return tracer
        # don't pay per-line tracing anywhere outside the package
        return None

    # import under trace so module-level lines (defs, constants) count,
    # as coverage.py would count them
    for mod in list(sys.modules):
        if mod.startswith("repro"):
            del sys.modules[mod]
    sys.settrace(tracer)
    try:
        run_workload()
    finally:
        sys.settrace(None)

    per_file: dict[str, tuple[int, int]] = {}
    covered = total = 0
    for name, lines in targets.items():
        got = len(lines & hit[name])
        per_file[name] = (got, len(lines))
        covered += got
        total += len(lines)
    return covered, total, per_file


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--min", type=float, default=80.0,
                        help="fail below this line-coverage percentage "
                             "(default 80; the Makefile records the "
                             "canonical COVERAGE_MIN)")
    parser.add_argument("--report", action="store_true",
                        help="print per-file detail")
    args = parser.parse_args(argv)

    if (importlib.util.find_spec("pytest_cov") is not None
            and "--force-fallback" not in (argv or [])):
        return delegate_to_pytest_cov()

    sys.path.insert(0, str(SRC))
    print("coverage: pytest-cov not installed; measuring repro.fuzz "
          "with the stdlib settrace fallback")
    covered, total, per_file = measure_fallback()
    percent = 100.0 * covered / max(1, total)
    if args.report:
        for name, (got, have) in sorted(per_file.items()):
            short = Path(name).name
            print(f"  {short:16s} {got:4d}/{have:4d}  "
                  f"{100.0 * got / max(1, have):5.1f}%")
    print(f"coverage: repro.fuzz {covered}/{total} lines = "
          f"{percent:.1f}% (threshold {args.min:.0f}%)")
    if percent < args.min:
        print("coverage: FAIL — below threshold", file=sys.stderr)
        return 1
    print("coverage: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
