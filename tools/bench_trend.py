#!/usr/bin/env python3
"""bench-trend: one trajectory table across every benchmark sidecar.

Each ``BENCH_*.json`` at the repo root records a ``baseline`` block
(the first-ever run, preserved forever) and a ``current`` block (the
latest run).  This tool flattens both blocks of every sidecar into
dotted cell labels and prints one table of

    sidecar | cell | baseline | current | delta

so a single glance answers "which numbers moved since the benchmark
was first recorded, and in which direction".  The delta is the signed
relative change of ``current`` against ``baseline``; cells present in
only one block show up with the other side blank (a sidecar whose
schema grew a section is a trend too).

Only numeric leaves are compared — strings (latency-source tags,
scheme names) and booleans are skipped.  Sidecars are discovered, not
hard-coded: any future ``BENCH_*.json`` joins the table for free.

Usage: ``python tools/bench_trend.py [--json] [--only GLOB]``
(also ``make bench-trend``).  Exits 0 even when no sidecars exist —
they are build artifacts; the tool reports trends, it does not gate.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent


def flatten(block, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested dict as ``a.b.c -> value``."""
    flat: dict[str, float] = {}
    if not isinstance(block, dict):
        return flat
    for key, value in block.items():
        label = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten(value, label))
        elif isinstance(value, bool):
            continue  # converged flags etc. are not a trajectory
        elif isinstance(value, (int, float)):
            flat[label] = float(value)
    return flat


def sidecar_rows(path: pathlib.Path) -> list[dict]:
    """Trend rows for one sidecar: baseline vs current per cell."""
    try:
        payload = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError) as exc:
        return [{"sidecar": path.name, "cell": "<unreadable>",
                 "baseline": None, "current": None,
                 "error": str(exc)}]
    baseline = flatten(payload.get("baseline"))
    current = flatten(payload.get("current"))
    rows = []
    for cell in sorted(set(baseline) | set(current)):
        rows.append({
            "sidecar": path.name,
            "cell": cell,
            "baseline": baseline.get(cell),
            "current": current.get(cell),
        })
    return rows


def collect(only: str | None = None) -> list[dict]:
    """Trend rows for every (matching) sidecar at the repo root."""
    rows = []
    for path in sorted(REPO.glob("BENCH_*.json")):
        if only and not fnmatch.fnmatch(path.name, only):
            continue
        rows.extend(sidecar_rows(path))
    return rows


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) >= 1000:
        return f"{int(value)}"
    return f"{value:g}"


def _delta(row: dict) -> str:
    base, cur = row.get("baseline"), row.get("current")
    if base is None or cur is None:
        return "-"
    if base == 0:
        return "-" if cur == 0 else "new"
    return f"{(cur - base) / abs(base):+.1%}"


def render(rows: list[dict]) -> str:
    """The human table (machine consumers use --json instead)."""
    if not rows:
        return ("bench-trend: no BENCH_*.json sidecars at the repo "
                "root (run the bench-* targets first)")
    headers = ("sidecar", "cell", "baseline", "current", "delta")
    table = [headers]
    for row in rows:
        table.append((row["sidecar"], row["cell"],
                      _fmt(row["baseline"]), _fmt(row["current"]),
                      _delta(row)))
    widths = [max(len(line[col]) for line in table)
              for col in range(len(headers))]
    out = []
    for i, line in enumerate(table):
        out.append("  ".join(cell.ljust(width)
                             for cell, width in zip(line, widths)).rstrip())
        if i == 0:
            out.append("  ".join("-" * width for width in widths))
    sidecars = len({row["sidecar"] for row in rows})
    out.append(f"({len(rows)} cells across {sidecars} sidecars)")
    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", action="store_true",
                        help="emit the rows as JSON instead of a table")
    parser.add_argument("--only", metavar="GLOB",
                        help="restrict to sidecars matching this glob "
                             "(e.g. 'BENCH_search*')")
    args = parser.parse_args(argv)
    rows = collect(args.only)
    if args.json:
        json.dump(rows, sys.stdout, indent=2)
        print()
    else:
        print(render(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
