#!/usr/bin/env python3
"""Prove the fuzz oracle has teeth: mutate the crypto, expect a catch.

A differential harness that never fails is indistinguishable from one
that checks nothing.  This tool injects a known-load-bearing bug — it
deletes the Wang–Kao–Yeh *length amendment* from the RPC checksum
record (the XOR of the packed document length into the payload
aggregate, ``RpcCodec.suffix``) — into a temporary copy of the source
tree, then runs the same ``repro fuzz`` invocation against the clean
tree and the mutant:

* clean tree  → exit 0 (no violations), or the harness is flaky;
* mutant tree → exit != 0 (roundtrip/integrity violations), or the
  harness is blind to a checksum that stopped binding the length.

The mutation is applied textually so the tool exercises the real
on-disk pipeline end to end; the original tree is never touched.

Usage: ``python tools/mutation_smoke.py [--iters N] [--seed N]``
(also wired in as ``make mutation-smoke``, part of ``make fuzz``).
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

#: the load-bearing line (leading indent included: the ``want_payload``
#: re-derivation in ``load`` must NOT be touched, so the verifier still
#: expects the amendment the mutant no longer writes)
TARGET_FILE = "repro/core/rpc.py"
TARGET = ("        payload = xor_bytes(state.payload_xor, "
          "_pack_length(state.length))")
MUTANT = ("        payload = state.payload_xor"
          "  # MUTANT: length amendment dropped")


def run_fuzz(pythonpath: Path, iters: int, seed: int) -> tuple[int, str]:
    """One ``repro fuzz`` subprocess against the given source tree."""
    env = dict(os.environ, PYTHONPATH=str(pythonpath))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "fuzz",
         "--profile", "engine", "--scheme", "rpc",
         "--iters", str(iters), "--seed", str(seed)],
        env=env, capture_output=True, text=True, cwd=str(REPO),
    )
    return proc.returncode, proc.stdout + proc.stderr


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--iters", type=int, default=25,
                        help="fuzz iterations per run (default 25; every "
                             "engine trace ends in a checksum-verifying "
                             "reload, so a handful suffices)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rpc = SRC / TARGET_FILE
    source = rpc.read_text(encoding="utf-8")
    if source.count(TARGET) != 1:
        print(f"error: expected exactly one mutation target line in "
              f"{TARGET_FILE}; found {source.count(TARGET)} "
              f"(did the RPC codec change?)", file=sys.stderr)
        return 2

    code, output = run_fuzz(SRC, args.iters, args.seed)
    if code != 0:
        print("error: harness failed on the CLEAN tree — fix that "
              "before trusting a mutation result:", file=sys.stderr)
        print(output, file=sys.stderr)
        return 2
    print(f"clean tree:  exit 0 over {args.iters} iterations (good)")

    with tempfile.TemporaryDirectory(prefix="repro-mutant-") as tmp:
        mutant_src = Path(tmp) / "src"
        shutil.copytree(SRC, mutant_src)
        mutant_rpc = mutant_src / TARGET_FILE
        mutant_rpc.write_text(source.replace(TARGET, MUTANT),
                              encoding="utf-8")
        code, output = run_fuzz(mutant_src, args.iters, args.seed)

    if code == 0:
        print("MUTATION SURVIVED: the harness ran the mutant tree "
              "without a single violation — the oracle is blind to a "
              "broken RPC length amendment.", file=sys.stderr)
        return 1
    caught = [line for line in output.splitlines()
              if "roundtrip" in line or "Integrity" in line]
    print(f"mutant tree: exit {code} — harness caught the broken "
          f"checksum ({len(caught)} violation line(s))")
    if caught:
        print(f"  e.g. {caught[0].strip()}")
    print("mutation smoke: PASS (the oracle has teeth)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
