#!/usr/bin/env python3
"""Prove the fuzz oracle has teeth: mutate the stack, expect a catch.

A differential harness that never fails is indistinguishable from one
that checks nothing.  This tool injects known-load-bearing bugs — each
a one-line textual mutation of a temporary copy of the source tree —
and runs the same ``repro fuzz`` invocation against the clean tree and
each mutant:

* clean tree  → exit 0 (no violations), or the harness is flaky;
* mutant tree → exit != 0, or the harness is blind to that bug class.

The mutation table covers one oracle per stack layer:

``rpc-length-amendment``
    Deletes the Wang–Kao–Yeh *length amendment* from the RPC checksum
    record (the XOR of the packed document length into the payload
    aggregate, ``RpcCodec.suffix``).  The engine profile's
    checksum-verifying reload must flag it (``roundtrip``).
``catalog-lookup-drops-posting``
    The catalog server silently withholds the newest posting blob from
    every trapdoor lookup.  The workspace profile's plaintext word
    oracle must flag it (``search-mismatch``).
``workspace-ignores-trusted-link``
    The workspace client stops comparing a fetched audit chain against
    its remembered ``(rev, link)`` anchor — exactly the check that
    makes a *forged* self-consistent chain detectable.  The workspace
    profile's rollback-attacking server must flag it (``audit-miss``).

Mutations are applied textually so the tool exercises the real on-disk
pipeline end to end; the original tree is never touched.

Usage: ``python tools/mutation_smoke.py [--iters N] [--seed N]
[--only NAME]`` (also wired in as ``make mutation-smoke``, part of
``make fuzz``).
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


@dataclass(frozen=True)
class Mutation:
    """One injected bug and the fuzz invocation that must catch it."""

    name: str
    file: str                    #: path under src/
    target: str                  #: exact line to replace (indent included)
    mutant: str                  #: the broken replacement
    fuzz_args: tuple             #: extra ``repro fuzz`` arguments
    iters: int                   #: iterations (clean and mutant runs)
    blind_to: str                #: what a survival would mean


MUTATIONS = (
    # the ``want_payload`` re-derivation in ``load`` must NOT be
    # touched, so the verifier still expects the amendment the mutant
    # no longer writes
    Mutation(
        name="rpc-length-amendment",
        file="repro/core/rpc.py",
        target=("        payload = xor_bytes(state.payload_xor, "
                "_pack_length(state.length))"),
        mutant=("        payload = state.payload_xor"
                "  # MUTANT: length amendment dropped"),
        fuzz_args=("--profile", "engine", "--scheme", "rpc"),
        iters=25,
        blind_to="a broken RPC length amendment",
    ),
    Mutation(
        name="catalog-lookup-drops-posting",
        file="repro/services/catalog.py",
        target="            return list(self._postings.get(trapdoor, ()))",
        mutant=("            return list(self._postings.get("
                "trapdoor, ()))[:-1]  # MUTANT: posting withheld"),
        fuzz_args=("--profile", "workspace"),
        iters=6,
        blind_to="a catalog that withholds search postings",
    ),
    Mutation(
        name="workspace-ignores-trusted-link",
        file="repro/client/workspace.py",
        target="            elif witnessed.link != trusted_link:",
        mutant=("            elif False and witnessed.link != "
                "trusted_link:  # MUTANT: anchor ignored"),
        fuzz_args=("--profile", "workspace"),
        iters=6,
        blind_to="a forged (self-consistent) audit chain",
    ),
)


def run_fuzz(pythonpath: Path, mutation: Mutation, iters: int,
             seed: int) -> tuple[int, str]:
    """One ``repro fuzz`` subprocess against the given source tree."""
    env = dict(os.environ, PYTHONPATH=str(pythonpath))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "fuzz",
         *mutation.fuzz_args,
         "--iters", str(iters), "--seed", str(seed)],
        env=env, capture_output=True, text=True, cwd=str(REPO),
    )
    return proc.returncode, proc.stdout + proc.stderr


def check_mutation(mutation: Mutation, iters: int, seed: int) -> int:
    """Run clean vs mutant for one table entry; 0 iff the bug is caught."""
    path = SRC / mutation.file
    source = path.read_text(encoding="utf-8")
    if source.count(mutation.target) != 1:
        print(f"error: [{mutation.name}] expected exactly one target "
              f"line in {mutation.file}; found "
              f"{source.count(mutation.target)} (did the code change?)",
              file=sys.stderr)
        return 2

    code, output = run_fuzz(SRC, mutation, iters, seed)
    if code != 0:
        print(f"error: [{mutation.name}] harness failed on the CLEAN "
              f"tree — fix that before trusting a mutation result:",
              file=sys.stderr)
        print(output, file=sys.stderr)
        return 2
    print(f"[{mutation.name}] clean tree:  exit 0 over {iters} "
          f"iterations (good)")

    with tempfile.TemporaryDirectory(prefix="repro-mutant-") as tmp:
        mutant_src = Path(tmp) / "src"
        shutil.copytree(SRC, mutant_src)
        mutant_file = mutant_src / mutation.file
        mutant_file.write_text(
            source.replace(mutation.target, mutation.mutant),
            encoding="utf-8")
        code, output = run_fuzz(mutant_src, mutation, iters, seed)

    if code == 0:
        print(f"MUTATION SURVIVED: [{mutation.name}] ran the mutant "
              f"tree without a single violation — the oracle is blind "
              f"to {mutation.blind_to}.", file=sys.stderr)
        return 1
    caught = [line for line in output.splitlines() if "violation" in
              line.lower() or "[" in line]
    print(f"[{mutation.name}] mutant tree: exit {code} — harness "
          f"caught {mutation.blind_to}")
    if caught:
        print(f"  e.g. {caught[0].strip()[:100]}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--iters", type=int, default=0,
                        help="override fuzz iterations for every "
                             "mutation (default: each entry's own "
                             "count; a handful suffices — every trace "
                             "ends in the relevant oracle)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--only", metavar="NAME",
                        choices=[m.name for m in MUTATIONS],
                        help="run a single mutation from the table")
    args = parser.parse_args(argv)

    worst = 0
    for mutation in MUTATIONS:
        if args.only and mutation.name != args.only:
            continue
        iters = args.iters or mutation.iters
        worst = max(worst, check_mutation(mutation, iters, args.seed))
    if worst == 0:
        print("mutation smoke: PASS (the oracle has teeth)")
    return worst


if __name__ == "__main__":
    raise SystemExit(main())
