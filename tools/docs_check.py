#!/usr/bin/env python3
"""docs-check: fail when the docs drift from the source tree.

The documentation cites three kinds of machine-checkable names, always
in backticks:

* **metric names** (``net.faults.injected``, ``client.retries.*``) —
  must exist in the obs registry after importing every ``repro``
  module (a trailing ``.*`` checks the prefix has at least one metric);
* **module / attribute paths** (``repro.net.faults.FaultPlan``) — must
  import / resolve;
* **repo file paths** (``src/repro/net/faults.py``,
  ``tests/chaos/test_fault_matrix.py::test_...``) — must exist on disk
  (a ``::test`` suffix additionally greps the named test into the
  file).

Anything else in backticks (shell lines, field names, prose) is
ignored.

It also validates the **benchmark sidecars** at the repo root: any
``BENCH_*.json`` present must declare a known ``schema`` string and
carry that schema's required keys (for ``repro.bench.load/v1``, every
measured cell must report ``sessions``, ``edits_per_sec``,
``save_p50_ms`` and ``save_p99_ms`` — the numbers EXPERIMENTS.md
quotes).  A missing sidecar is fine (they are build artifacts); a
malformed one is drift.

Run via ``make docs-check`` (part of ``make test``); exits non-zero
listing every stale citation with its file and line.
"""

from __future__ import annotations

import importlib
import json
import pathlib
import pkgutil
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

#: the documents whose citations are contractual
DOCS = sorted(REPO.glob("docs/*.md")) + [
    REPO / "EXPERIMENTS.md", REPO / "README.md",
]

BACKTICKED = re.compile(r"`([^`\n]+)`")
#: dotted lowercase name, optionally ending in ".*" — metric shaped
METRIC = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+(\.\*)?$")
#: python path rooted at the package
MODULE = re.compile(r"^repro(\.[A-Za-z_][A-Za-z0-9_]*)+$")
#: repo-relative file, optionally with a ::test_name suffix
FILEPATH = re.compile(
    r"^(src|tests|docs|benchmarks|examples|tools)/[\w./-]+"
    r"(::[\w\[\]-]+)?$"
)


def _load_registry() -> tuple[set[str], set[str]]:
    """Import the whole package; return (metric names, scope roots)."""
    sys.path.insert(0, str(REPO / "src"))
    repro = importlib.import_module("repro")
    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        if info.name.endswith("__main__"):
            continue  # running the CLI module would parse argv
        importlib.import_module(info.name)
    from repro.obs import default_registry
    names = set(default_registry().snapshot())
    return names, {name.split(".")[0] for name in names}


def _check_metric(token: str, metrics: set[str]) -> str | None:
    if token.endswith(".*"):
        prefix = token[:-1]  # keep the trailing dot
        if any(name.startswith(prefix) for name in metrics):
            return None
        return f"no metric under prefix {token!r} in the obs registry"
    if token in metrics:
        return None
    return f"metric {token!r} not in the obs registry"


def _check_module(token: str) -> str | None:
    parts = token.split(".")
    # longest importable prefix, then attribute traversal for the rest
    for cut in range(len(parts), 0, -1):
        name = ".".join(parts[:cut])
        try:
            obj = importlib.import_module(name)
        except ImportError:
            continue
        for attr in parts[cut:]:
            if not hasattr(obj, attr):
                return (f"{token!r}: module {name!r} has no "
                        f"attribute {attr!r}")
            obj = getattr(obj, attr)
        return None
    return f"{token!r} does not import"


def _check_filepath(token: str) -> str | None:
    path, _, test = token.partition("::")
    target = REPO / path
    if not target.exists():
        return f"path {path!r} does not exist"
    if test:
        test_name = test.split("[")[0]  # strip parametrize ids
        content = target.read_text()
        if f"def {test_name}" not in content and \
                f"class {test_name}" not in content:
            return f"{path!r} defines no test {test_name!r}"
    return None


#: sidecar filename -> (expected schema, top-level required keys)
SIDECARS = {
    "BENCH_edit_throughput.json": (
        "repro.bench.edit_throughput/v1", ("current",)),
    "BENCH_faults.json": ("repro.bench.faults/v1", ("current", "seed")),
    "BENCH_load.json": (
        "repro.bench.load/v1", ("current", "seed", "fault_rate")),
    "BENCH_collab.json": (
        "repro.bench.collab/v1", ("current", "seed", "writer_counts")),
    "BENCH_search.json": ("repro.bench.search/v1", ("current",)),
}

#: every repro.bench.search/v1 block must carry these sections (the
#: three scaling curves plus the indexing-overhead gate cells)
SEARCH_SECTIONS = ("query_usec", "index_update", "audit_verify_ms",
                   "burst_overhead")

#: every measured load cell must report these (the chart axes)
LOAD_CELL_KEYS = ("sessions", "edits_per_sec", "save_p50_ms",
                  "save_p99_ms", "latency_source")

#: every measured collaboration cell must report these (the axes of
#: the conflict-rate and convergence-time charts, plus the oracles)
COLLAB_CELL_KEYS = ("writers", "conflict_rate", "merges", "converged",
                    "convergence_s", "leak_clean")


def _check_load_rows(payload: dict) -> list[str]:
    """repro.bench.load/v1: every cell row carries the chart axes."""
    errors = []
    for block_name in ("baseline", "current"):
        block = payload.get(block_name) or {}
        for service, rows in block.items():
            if not isinstance(rows, dict):
                continue
            for label, row in rows.items():
                if not isinstance(row, dict):
                    continue  # scalar entries like scaling_x_1000
                missing = [k for k in LOAD_CELL_KEYS if k not in row]
                if missing:
                    errors.append(
                        f"{block_name}.{service}.{label} lacks "
                        f"{', '.join(missing)}")
    return errors


def _check_collab_rows(payload: dict) -> list[str]:
    """repro.bench.collab/v1: every cell row carries its chart axes."""
    errors = []
    for block_name in ("baseline", "current"):
        block = payload.get(block_name) or {}
        for variant, rows in block.items():
            if variant == "headline" or not isinstance(rows, dict):
                continue
            for label, row in rows.items():
                if not isinstance(row, dict):
                    continue
                missing = [k for k in COLLAB_CELL_KEYS if k not in row]
                if missing:
                    errors.append(
                        f"{block_name}.{variant}.{label} lacks "
                        f"{', '.join(missing)}")
    return errors


def _check_search_rows(payload: dict) -> list[str]:
    """repro.bench.search/v1: every block carries all four sections,
    each section a non-empty mapping of cells to numbers."""
    errors = []
    for block_name in ("baseline", "current"):
        block = payload.get(block_name)
        if block is None:
            continue  # a first-ever run has no baseline yet
        for section in SEARCH_SECTIONS:
            rows = block.get(section)
            if not isinstance(rows, dict) or not rows:
                errors.append(f"{block_name}.{section} missing or empty")
                continue
            bad = [k for k, v in rows.items()
                   if not isinstance(v, (int, float))]
            if bad:
                errors.append(
                    f"{block_name}.{section} has non-numeric cells: "
                    f"{', '.join(bad)}")
    return errors


def check_sidecars() -> list[str]:
    """Validate whichever BENCH_*.json sidecars exist at the repo root."""
    problems = []
    for name, (schema, required) in SIDECARS.items():
        path = REPO / name
        if not path.exists():
            continue  # build artifact; absence is not drift
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            problems.append(f"{name}: not valid JSON ({exc})")
            continue
        if payload.get("schema") != schema:
            problems.append(
                f"{name}: schema is {payload.get('schema')!r}, "
                f"expected {schema!r}")
            continue
        for key in required:
            if key not in payload:
                problems.append(f"{name}: missing required key {key!r}")
        if schema == "repro.bench.load/v1":
            problems.extend(f"{name}: {e}"
                            for e in _check_load_rows(payload))
        if schema == "repro.bench.collab/v1":
            problems.extend(f"{name}: {e}"
                            for e in _check_collab_rows(payload))
        if schema == "repro.bench.search/v1":
            problems.extend(f"{name}: {e}"
                            for e in _check_search_rows(payload))
    return problems


def main() -> int:
    metrics, scopes = _load_registry()
    problems: list[str] = list(check_sidecars())
    for doc in DOCS:
        if not doc.exists():
            problems.append(f"{doc.relative_to(REPO)}: file missing")
            continue
        for lineno, line in enumerate(doc.read_text().splitlines(), 1):
            for token in BACKTICKED.findall(line):
                token = token.strip()
                where = f"{doc.relative_to(REPO)}:{lineno}"
                if MODULE.match(token):
                    error = _check_module(token)
                elif FILEPATH.match(token) and "/" in token:
                    error = _check_filepath(token)
                elif METRIC.match(token) and \
                        token.split(".")[0] in scopes:
                    # docs sometimes cite modules repro-relatively
                    # (`net.channel`); an importable name is not a
                    # metric citation
                    if _check_module(f"repro.{token}") is None:
                        continue
                    error = _check_metric(token, metrics)
                else:
                    continue
                if error:
                    problems.append(f"{where}: {error}")
    if problems:
        print("docs-check: documentation drifted from the source tree:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"docs-check: {len(DOCS)} documents verified against "
          f"{len(metrics)} registered metrics and the source tree")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
