#!/usr/bin/env python3
"""docs-check: fail when the docs drift from the source tree.

The documentation cites three kinds of machine-checkable names, always
in backticks:

* **metric names** (``net.faults.injected``, ``client.retries.*``) —
  must exist in the obs registry after importing every ``repro``
  module (a trailing ``.*`` checks the prefix has at least one metric);
* **module / attribute paths** (``repro.net.faults.FaultPlan``) — must
  import / resolve;
* **repo file paths** (``src/repro/net/faults.py``,
  ``tests/chaos/test_fault_matrix.py::test_...``) — must exist on disk
  (a ``::test`` suffix additionally greps the named test into the
  file).

Anything else in backticks (shell lines, field names, prose) is
ignored.  Run via ``make docs-check`` (part of ``make test``); exits
non-zero listing every stale citation with its file and line.
"""

from __future__ import annotations

import importlib
import pathlib
import pkgutil
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

#: the documents whose citations are contractual
DOCS = sorted(REPO.glob("docs/*.md")) + [
    REPO / "EXPERIMENTS.md", REPO / "README.md",
]

BACKTICKED = re.compile(r"`([^`\n]+)`")
#: dotted lowercase name, optionally ending in ".*" — metric shaped
METRIC = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+(\.\*)?$")
#: python path rooted at the package
MODULE = re.compile(r"^repro(\.[A-Za-z_][A-Za-z0-9_]*)+$")
#: repo-relative file, optionally with a ::test_name suffix
FILEPATH = re.compile(
    r"^(src|tests|docs|benchmarks|examples|tools)/[\w./-]+"
    r"(::[\w\[\]-]+)?$"
)


def _load_registry() -> tuple[set[str], set[str]]:
    """Import the whole package; return (metric names, scope roots)."""
    sys.path.insert(0, str(REPO / "src"))
    repro = importlib.import_module("repro")
    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        if info.name.endswith("__main__"):
            continue  # running the CLI module would parse argv
        importlib.import_module(info.name)
    from repro.obs import default_registry
    names = set(default_registry().snapshot())
    return names, {name.split(".")[0] for name in names}


def _check_metric(token: str, metrics: set[str]) -> str | None:
    if token.endswith(".*"):
        prefix = token[:-1]  # keep the trailing dot
        if any(name.startswith(prefix) for name in metrics):
            return None
        return f"no metric under prefix {token!r} in the obs registry"
    if token in metrics:
        return None
    return f"metric {token!r} not in the obs registry"


def _check_module(token: str) -> str | None:
    parts = token.split(".")
    # longest importable prefix, then attribute traversal for the rest
    for cut in range(len(parts), 0, -1):
        name = ".".join(parts[:cut])
        try:
            obj = importlib.import_module(name)
        except ImportError:
            continue
        for attr in parts[cut:]:
            if not hasattr(obj, attr):
                return (f"{token!r}: module {name!r} has no "
                        f"attribute {attr!r}")
            obj = getattr(obj, attr)
        return None
    return f"{token!r} does not import"


def _check_filepath(token: str) -> str | None:
    path, _, test = token.partition("::")
    target = REPO / path
    if not target.exists():
        return f"path {path!r} does not exist"
    if test:
        test_name = test.split("[")[0]  # strip parametrize ids
        content = target.read_text()
        if f"def {test_name}" not in content and \
                f"class {test_name}" not in content:
            return f"{path!r} defines no test {test_name!r}"
    return None


def main() -> int:
    metrics, scopes = _load_registry()
    problems: list[str] = []
    for doc in DOCS:
        if not doc.exists():
            problems.append(f"{doc.relative_to(REPO)}: file missing")
            continue
        for lineno, line in enumerate(doc.read_text().splitlines(), 1):
            for token in BACKTICKED.findall(line):
                token = token.strip()
                where = f"{doc.relative_to(REPO)}:{lineno}"
                if MODULE.match(token):
                    error = _check_module(token)
                elif FILEPATH.match(token) and "/" in token:
                    error = _check_filepath(token)
                elif METRIC.match(token) and \
                        token.split(".")[0] in scopes:
                    # docs sometimes cite modules repro-relatively
                    # (`net.channel`); an importable name is not a
                    # metric citation
                    if _check_module(f"repro.{token}") is None:
                        continue
                    error = _check_metric(token, metrics)
                else:
                    continue
                if error:
                    problems.append(f"{where}: {error}")
    if problems:
        print("docs-check: documentation drifted from the source tree:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"docs-check: {len(DOCS)} documents verified against "
          f"{len(metrics)} registered metrics and the source tree")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
