"""repro — reproduction of *Private Editing Using Untrusted Cloud
Services* (Huang & Evans, 2011).

The library lets a client edit documents through an untrusted cloud
editing service while the service only ever stores ciphertext, using
incremental encryption (rECB / RPC modes) over an IndexedSkipList of
variable-length multi-character blocks.

Quick start::

    from repro import PrivateEditingSession

    session = PrivateEditingSession("doc", password="hunter2",
                                    scheme="rpc")
    session.open()
    session.type_text(0, "my confidential notes")
    session.save()
    assert "confidential" not in session.server_view()

Layer map (bottom-up):

* :mod:`repro.crypto` — AES from scratch, batched ECB, random sources;
* :mod:`repro.encoding` — Base32, form encoding, the record wire format;
* :mod:`repro.datastructures` — IndexedSkipList / IndexedAVL;
* :mod:`repro.core` — deltas, keys, the rECB and RPC schemes,
  :class:`EncryptedDocument` (Enc/Dec/IncE);
* :mod:`repro.net`, :mod:`repro.services`, :mod:`repro.client` — the
  simulated cloud (Google Documents, Bespin, Buzzword);
* :mod:`repro.extension` — the mediating "browser extension";
* :mod:`repro.security` — adversaries, attacks, covert channels;
* :mod:`repro.baselines`, :mod:`repro.workloads`, :mod:`repro.bench` —
  evaluation support.
"""

from repro.core import (
    Delta,
    EncryptedDocument,
    KeyMaterial,
    RecbDocument,
    RpcDocument,
    create_document,
    load_document,
)
from repro.errors import ReproError
from repro.extension import (
    Countermeasures,
    GDocsExtension,
    PasswordVault,
    PrivateEditingSession,
)

__version__ = "1.0.0"

__all__ = [
    "Delta",
    "KeyMaterial",
    "EncryptedDocument",
    "RecbDocument",
    "RpcDocument",
    "create_document",
    "load_document",
    "PrivateEditingSession",
    "GDocsExtension",
    "PasswordVault",
    "Countermeasures",
    "ReproError",
    "__version__",
]
