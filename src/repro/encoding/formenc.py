"""Percent / ``application/x-www-form-urlencoded`` codec.

The Google Documents save protocol carries everything in form-encoded
POST bodies (``docContents=...&delta=...``); the mediator has to decode
exactly what the client encoded and re-encode what it rewrites, so the
codec is implemented here rather than assumed (the JS prototype used
``encodeURIComponent``/``decodeURIComponent``/``unescape``).
"""

from __future__ import annotations

from repro.errors import ProtocolError

_UNRESERVED = set(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "abcdefghijklmnopqrstuvwxyz"
    "0123456789-_.~*"
)
_HEX = "0123456789ABCDEF"


def quote(text: str, plus_spaces: bool = True) -> str:
    """Percent-encode ``text`` for use in a form body.

    Spaces become ``+`` when ``plus_spaces`` (form convention); every
    other byte outside the unreserved set becomes ``%XX`` over its UTF-8
    encoding.
    """
    out: list[str] = []
    for ch in text:
        if ch in _UNRESERVED:
            out.append(ch)
        elif ch == " " and plus_spaces:
            out.append("+")
        else:
            for byte in ch.encode("utf-8"):
                out.append("%" + _HEX[byte >> 4] + _HEX[byte & 0xF])
    return "".join(out)


def unquote(text: str, plus_spaces: bool = True) -> str:
    """Invert :func:`quote`."""
    out = bytearray()
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "%":
            if i + 3 > n:
                raise ProtocolError(f"truncated percent escape in {text[i:]!r}")
            try:
                out.append(int(text[i + 1 : i + 3], 16))
            except ValueError:
                raise ProtocolError(
                    f"invalid percent escape {text[i:i + 3]!r}"
                ) from None
            i += 3
        elif ch == "+" and plus_spaces:
            out.append(0x20)
            i += 1
        else:
            out.extend(ch.encode("utf-8"))
            i += 1
    try:
        return out.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"form field is not valid UTF-8: {exc}") from None


def encode_form(fields: dict[str, str]) -> str:
    """Serialize ``fields`` as a form body, preserving insertion order."""
    return "&".join(f"{quote(k)}={quote(v)}" for k, v in fields.items())


def parse_form(body: str) -> dict[str, str]:
    """Parse a form body into a dict (last occurrence of a key wins)."""
    fields: dict[str, str] = {}
    if not body:
        return fields
    for pair in body.split("&"):
        key, sep, value = pair.partition("=")
        if not sep:
            raise ProtocolError(f"malformed form pair {pair!r}")
        fields[unquote(key)] = unquote(value)
    return fields
