"""Steganographic ciphertext encoding (the SVI-A extension).

"The server could recognize the use of encryption and refuse to store
any content that appears to be encrypted.  To cope with this situation,
our tool could be extended using existing results in stenography to
make it difficult for the server [to] identify encrypted documents."
The paper leaves this as future work; this module implements it.

Scheme
------
Ciphertext rides in a stream of **pronounceable five-letter pseudo-words**
(1024 of them: consonant-vowel syllable pairs, "bakel", "gorin", ...),
each carrying 10 bits.  The result reads like lorem-ipsum prose —
word-length distribution, vowel ratio, and space frequency all look like
text, none like Base32 — and defeats the entropy/alphabet heuristics a
server-side detector plausibly uses (see
:func:`repro.security.analysis.encryption_score`).

Crucially the encoding is **incremental-update-safe**: every word is
exactly 5 letters + 1 space, so one wire record (17 bytes → 14 words)
always occupies :data:`STEGO_RECORD_CHARS` characters, and ciphertext
deltas translate to stego deltas by pure arithmetic
(:func:`stego_rewrite_cdelta`).  The variable-length document header is
carried as a length-prefixed word run at the front (it is never touched
by deltas).

Cost: 84 stego characters per 28-character record — a further 3x
blow-up on top of Fig. 7's, which is the quantified version of the
paper's "may be impractical for realistic applications".
"""

from __future__ import annotations

from repro.core.delta import Delete, Delta, DeltaOp, Insert, Retain
from repro.encoding.wire import RECORD_BYTES, RECORD_CHARS, split_header
from repro.errors import CiphertextFormatError

__all__ = [
    "WORDS",
    "WORDS_PER_RECORD",
    "STEGO_RECORD_CHARS",
    "stego_wrap",
    "stego_unwrap",
    "stego_header_length",
    "stego_rewrite_cdelta",
    "looks_stego",
]

_CONSONANTS = "bdfgklmnprstvz"  # 14
_VOWELS = "aeiou"               # 5


def _build_words() -> list[str]:
    """1024 distinct CVCVC pseudo-words, deterministically ordered."""
    words: list[str] = []
    for c1 in _CONSONANTS:
        for v1 in _VOWELS:
            for c2 in _CONSONANTS:
                for v2 in _VOWELS:
                    for c3 in _CONSONANTS:
                        words.append(c1 + v1 + c2 + v2 + c3)
                        if len(words) == 1024:
                            return words
    raise AssertionError("unreachable")


WORDS = _build_words()
_WORD_INDEX = {word: i for i, word in enumerate(WORDS)}

WORD_CHARS = 6  # five letters + one following space

#: a 17-byte record is 136 bits -> 14 ten-bit words (4 pad bits)
WORDS_PER_RECORD = (RECORD_BYTES * 8 + 9) // 10
#: stego characters one record occupies
STEGO_RECORD_CHARS = WORDS_PER_RECORD * WORD_CHARS

_LENGTH_WORDS = 2  # 20-bit byte-length prefix for the header run


def _bytes_to_words(data: bytes) -> list[str]:
    value = int.from_bytes(data, "big")
    nwords = (len(data) * 8 + 9) // 10
    value <<= nwords * 10 - len(data) * 8
    return [
        WORDS[(value >> (10 * (nwords - 1 - i))) & 0x3FF]
        for i in range(nwords)
    ]


def _words_to_bytes(words: list[str], nbytes: int) -> bytes:
    value = 0
    for word in words:
        try:
            value = (value << 10) | _WORD_INDEX[word]
        except KeyError:
            raise CiphertextFormatError(
                f"unknown stego word {word!r}"
            ) from None
    pad = len(words) * 10 - nbytes * 8
    if pad < 0:
        raise CiphertextFormatError("stego word run too short")
    if value & ((1 << pad) - 1):
        raise CiphertextFormatError("non-canonical stego padding bits")
    return (value >> pad).to_bytes(nbytes, "big")


def stego_header_length_from_chars(header_chars: int) -> int:
    """Stego characters occupied by a ``header_chars``-byte header run."""
    header_words = (header_chars * 8 + 9) // 10
    return (_LENGTH_WORDS + header_words) * WORD_CHARS


def stego_header_length(wire_text: str) -> int:
    """Stego characters occupied by the document-header run."""
    _, rest = split_header(wire_text)
    return stego_header_length_from_chars(len(wire_text) - len(rest))


def stego_wrap(wire_text: str) -> str:
    """Encode a wire document as innocuous pseudo-prose."""
    _, area = split_header(wire_text)
    header_text = wire_text[: len(wire_text) - len(area)]
    header_raw = header_text.encode("ascii")
    if len(header_raw) >= 1 << 16:
        raise CiphertextFormatError("header too large for stego prefix")
    out: list[str] = []
    # 2-word (16-bit) byte-length prefix for the header run
    out.extend(_bytes_to_words(len(header_raw).to_bytes(2, "big")))
    out.extend(_bytes_to_words(header_raw))
    from repro.encoding import base32
    for i in range(0, len(area), RECORD_CHARS):
        record_raw = base32.decode(area[i : i + RECORD_CHARS])
        out.extend(_bytes_to_words(record_raw))
    return "".join(word + " " for word in out)


def stego_unwrap(text: str) -> str:
    """Invert :func:`stego_wrap` back to the wire document."""
    if len(text) % WORD_CHARS:
        raise CiphertextFormatError(
            f"stego text length {len(text)} is not word-aligned"
        )
    words = [
        text[i : i + 5] for i in range(0, len(text), WORD_CHARS)
    ]
    for i in range(0, len(text), WORD_CHARS):
        if text[i + 5] != " ":
            raise CiphertextFormatError("stego words must be space-separated")
    if len(words) < _LENGTH_WORDS:
        raise CiphertextFormatError("stego text too short")
    header_bytes = int.from_bytes(
        _words_to_bytes(words[:_LENGTH_WORDS], 2), "big"
    )
    header_words = (header_bytes * 8 + 9) // 10
    cursor = _LENGTH_WORDS
    header_raw = _words_to_bytes(
        words[cursor : cursor + header_words], header_bytes
    )
    cursor += header_words
    remaining = words[cursor:]
    if len(remaining) % WORDS_PER_RECORD:
        raise CiphertextFormatError(
            "stego record area is not whole records"
        )
    from repro.encoding import base32
    records: list[str] = []
    for i in range(0, len(remaining), WORDS_PER_RECORD):
        raw = _words_to_bytes(
            remaining[i : i + WORDS_PER_RECORD], RECORD_BYTES
        )
        records.append(base32.encode(raw))
    return header_raw.decode("ascii") + "".join(records)


def looks_stego(text: str) -> bool:
    """Cheap structural check used by the extension's read path."""
    if len(text) < WORD_CHARS or len(text) % WORD_CHARS:
        return False
    probe = text[:WORD_CHARS * 4]
    return all(
        probe[i : i + 5] in _WORD_INDEX and probe[i + 5 : i + 6] == " "
        for i in range(0, len(probe) - WORD_CHARS + 1, WORD_CHARS)
    )


def stego_rewrite_cdelta(cdelta: Delta, header_chars: int) -> Delta:
    """Translate a wire-coordinate cdelta into stego coordinates.

    Works because the document layer emits cdeltas whose operations are
    record-aligned beyond the (never-edited) ``header_chars``-byte
    header: retain/delete counts scale by
    ``STEGO_RECORD_CHARS / RECORD_CHARS`` and insert payloads are
    re-encoded word-wise.
    """
    stego_header = stego_header_length_from_chars(header_chars)

    from repro.encoding import base32

    ops: list[DeltaOp] = []
    consumed = 0  # wire chars consumed so far
    for op in cdelta.ops:
        if isinstance(op, Retain):
            count = op.count
            stego_count = 0
            if consumed < header_chars:
                in_header = min(count, header_chars - consumed)
                if in_header != header_chars - consumed and in_header != count:
                    raise CiphertextFormatError(
                        "cdelta splits the document header"
                    )
                if in_header:
                    stego_count += stego_header
                    count -= in_header
                    consumed += in_header
            if count % RECORD_CHARS:
                raise CiphertextFormatError(
                    "cdelta retain is not record-aligned"
                )
            stego_count += count // RECORD_CHARS * STEGO_RECORD_CHARS
            consumed += count
            ops.append(Retain(stego_count))
        elif isinstance(op, Delete):
            if consumed < header_chars or op.count % RECORD_CHARS:
                raise CiphertextFormatError(
                    "cdelta delete is not record-aligned"
                )
            consumed += op.count
            ops.append(
                Delete(op.count // RECORD_CHARS * STEGO_RECORD_CHARS)
            )
        else:
            if len(op.text) % RECORD_CHARS:
                raise CiphertextFormatError(
                    "cdelta insert is not whole records"
                )
            words: list[str] = []
            for i in range(0, len(op.text), RECORD_CHARS):
                raw = base32.decode(op.text[i : i + RECORD_CHARS])
                words.extend(_bytes_to_words(raw))
            ops.append(Insert("".join(word + " " for word in words)))
    return Delta(ops)
