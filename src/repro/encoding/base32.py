"""RFC 4648 Base32 codec, implemented directly.

The prototype shipped ciphertext to Google Documents as
``Base32.encode(...)`` text (Fig. 2): the server stores *text*, so
binary AES blocks must ride inside a text alphabet that survives the
editor's storage layer untouched.  Base32's alphabet (A-Z, 2-7) is safe
in form bodies and is case-stable.

``encode``/``decode`` are padding-optional because the wire format
(:mod:`repro.encoding.wire`) packs fixed-length records and padding
characters would waste width.

Every wire record crosses this codec twice, so the hot paths are
C-speed: :func:`encode` delegates to :func:`base64.b32encode` and
:func:`decode` maps the text to base-32 digits with ``str.translate``
and converts with one ``int(s, 32)``.  The original per-byte scalar
routines are kept as ``_encode_scalar``/``_decode_scalar`` — they are
the executable spec the fast paths are cross-checked against in tests,
and the decode fallback that reproduces exact per-character error
messages for invalid input.
"""

from __future__ import annotations

import base64

from repro.errors import CiphertextFormatError

ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZ234567"
_DECODE_MAP = {ch: i for i, ch in enumerate(ALPHABET)}

#: Valid unpadded encoding lengths for each ``len(data) % 5``.
_TAIL_CHARS = {0: 0, 1: 2, 2: 4, 3: 5, 4: 7}
_TAIL_BYTES = {chars: nbytes for nbytes, chars in _TAIL_CHARS.items() if chars}
_TAIL_BYTES[8] = 5

#: ``int(s, 32)`` digit alphabet, aligned index-for-index with ALPHABET
_INT_DIGITS = "0123456789abcdefghijklmnopqrstuv"
_TO_INT_DIGITS = str.maketrans(ALPHABET, _INT_DIGITS)
#: translate-delete table: valid characters vanish, leaving offenders
_DROP_VALID = {ord(ch): None for ch in ALPHABET}


def encoded_length(nbytes: int) -> int:
    """Length in characters of the unpadded encoding of ``nbytes`` bytes."""
    return (nbytes // 5) * 8 + _TAIL_CHARS[nbytes % 5]


def encode(data: bytes, pad: bool = False) -> str:
    """Base32-encode ``data``; append ``=`` padding only if ``pad``."""
    text = base64.b32encode(data).decode("ascii")
    return text if pad else text.rstrip("=")


def decode(text: str) -> bytes:
    """Decode Base32 ``text`` (padded or not) back to bytes."""
    text = text.rstrip("=")
    if not text:
        return b""
    tail = len(text) % 8
    if tail and tail not in _TAIL_BYTES:
        return _decode_scalar(text)  # exact tail-length error
    if text.translate(_DROP_VALID):
        return _decode_scalar(text)  # exact invalid-character error
    nbytes = (len(text) // 8) * 5 + (_TAIL_BYTES[tail] if tail else 0)
    value = int(text.translate(_TO_INT_DIGITS), 32)
    # Non-canonical trailing bits indicate corruption or splicing at a
    # non-record boundary; reject rather than silently truncate.
    tail_bits = 5 * len(text) - 8 * nbytes
    if value & ((1 << tail_bits) - 1):
        raise CiphertextFormatError("non-canonical base32 tail bits")
    return (value >> tail_bits).to_bytes(nbytes, "big")


def _encode_scalar(data: bytes, pad: bool = False) -> str:
    """Reference per-chunk encoder (the fast path's executable spec)."""
    out: list[str] = []
    for start in range(0, len(data), 5):
        chunk = data[start : start + 5]
        value = int.from_bytes(chunk, "big") << (8 * (5 - len(chunk)))
        chars = _TAIL_CHARS[len(chunk) % 5] or 8
        for pos in range(chars):
            out.append(ALPHABET[(value >> (35 - 5 * pos)) & 0x1F])
        if pad and chars != 8:
            out.append("=" * (8 - chars))
    return "".join(out)


def _decode_scalar(text: str) -> bytes:
    """Reference per-chunk decoder; also the error-reporting fallback."""
    text = text.rstrip("=")
    out = bytearray()
    for start in range(0, len(text), 8):
        chunk = text[start : start + 8]
        if len(chunk) not in _TAIL_BYTES:
            raise CiphertextFormatError(
                f"invalid base32 tail length {len(chunk)}"
            )
        value = 0
        for ch in chunk:
            try:
                value = (value << 5) | _DECODE_MAP[ch]
            except KeyError:
                raise CiphertextFormatError(
                    f"invalid base32 character {ch!r}"
                ) from None
        value <<= 5 * (8 - len(chunk))
        nbytes = _TAIL_BYTES[len(chunk)]
        # Non-canonical trailing bits indicate corruption or splicing at a
        # non-record boundary; reject rather than silently truncate.
        tail_bits = 40 - 8 * nbytes
        if value & ((1 << tail_bits) - 1):
            raise CiphertextFormatError("non-canonical base32 tail bits")
        out.extend((value >> tail_bits).to_bytes(nbytes, "big"))
    return bytes(out)
