"""Text encodings used on the wire: Base32, form encoding, and the
fixed-width ciphertext record format."""

from repro.encoding.base32 import decode as base32_decode
from repro.encoding.base32 import encode as base32_encode
from repro.encoding.formenc import encode_form, parse_form, quote, unquote
from repro.encoding.stego import (
    STEGO_RECORD_CHARS,
    looks_stego,
    stego_rewrite_cdelta,
    stego_unwrap,
    stego_wrap,
)
from repro.encoding.wire import (
    RECORD_BYTES,
    RECORD_CHARS,
    DocumentHeader,
    Record,
    decode_record,
    decode_records,
    encode_record,
    encode_records,
    looks_encrypted,
    parse_document,
    split_header,
)

__all__ = [
    "base32_encode",
    "base32_decode",
    "quote",
    "unquote",
    "encode_form",
    "parse_form",
    "Record",
    "DocumentHeader",
    "RECORD_BYTES",
    "RECORD_CHARS",
    "encode_record",
    "decode_record",
    "encode_records",
    "decode_records",
    "parse_document",
    "split_header",
    "looks_encrypted",
    "stego_wrap",
    "stego_unwrap",
    "stego_rewrite_cdelta",
    "looks_stego",
    "STEGO_RECORD_CHARS",
]
