"""Ciphertext wire format: fixed-width Base32 records.

The untrusted server stores the ciphertext document as *text* (an
on-line editor stores what looks like a document).  This module defines
that text layout, chosen so that ciphertext deltas reduce to exact
character arithmetic:

* **Record** — one encrypted unit: a header byte carrying the number of
  plaintext characters packed in the block (0 for pure bookkeeping
  blocks such as rECB's ``F(r0)`` or RPC's checksum block) followed by
  the 16-byte AES block.  17 bytes encode to exactly
  :data:`RECORD_CHARS` unpadded Base32 characters, so record *i* always
  occupies ``[i * RECORD_CHARS, (i+1) * RECORD_CHARS)`` in the record
  area and inserting/deleting whole records never re-aligns neighbours.
* **DocumentHeader** — a short plaintext-metadata prefix naming the
  scheme, block-capacity parameter ``b``, nonce width, and the KDF salt.
  Written once per full save; incremental deltas never touch it.

Everything the server stores is accounted here, so the Fig. 7 blow-up
measurements count real stored characters (header byte + AES block +
Base32 expansion), not an idealized 16x.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encoding import base32
from repro.errors import CiphertextFormatError

#: bytes per record before encoding: 1 header byte + one AES block
RECORD_BYTES = 17
#: characters one record occupies on the wire
RECORD_CHARS = base32.encoded_length(RECORD_BYTES)  # == 28

_MAGIC = "PE1"
_HEADER_END = "."


@dataclass(frozen=True)
class Record:
    """One encrypted block as stored by the server."""

    char_count: int  #: plaintext characters packed inside (0 = bookkeeping)
    block: bytes     #: the 16-byte AES output

    def __post_init__(self) -> None:
        if not 0 <= self.char_count <= 255:
            raise CiphertextFormatError(
                f"record char_count {self.char_count} out of range"
            )
        if len(self.block) != 16:
            raise CiphertextFormatError(
                f"record block must be 16 bytes, got {len(self.block)}"
            )


def encode_record(record: Record) -> str:
    """Encode one record to its fixed-width wire text."""
    return base32.encode(bytes([record.char_count]) + record.block)


def decode_record(text: str) -> Record:
    """Decode one :data:`RECORD_CHARS`-character wire chunk."""
    if len(text) != RECORD_CHARS:
        raise CiphertextFormatError(
            f"record must be {RECORD_CHARS} chars, got {len(text)}"
        )
    raw = base32.decode(text)
    return Record(char_count=raw[0], block=raw[1:])


#: NumPy view of the Base32 alphabet for the batched paths
_ALPHABET_BYTES = np.frombuffer(base32.ALPHABET.encode("ascii"),
                                dtype=np.uint8)
_ALPHABET_INDEX = np.full(256, 255, dtype=np.uint8)
_ALPHABET_INDEX[_ALPHABET_BYTES] = np.arange(32, dtype=np.uint8)
_POW5 = np.array([16, 8, 4, 2, 1], dtype=np.uint8)

#: per-record padding: 17 bytes = 136 bits, padded to 140 = 28 * 5
_PAD_BITS = RECORD_CHARS * 5 - RECORD_BYTES * 8


def encode_records(records: list[Record]) -> str:
    """Encode a sequence of records to contiguous wire text.

    Batched: documents run to tens of thousands of records, so the
    Base32 expansion is done as one NumPy bit-unpack over all of them
    (records are fixed-width, making every record's encoding
    independent and alignment-free).
    """
    if len(records) < 8:
        return "".join(encode_record(r) for r in records)
    raw = np.frombuffer(
        b"".join(bytes([r.char_count]) + r.block for r in records),
        dtype=np.uint8,
    ).reshape(len(records), RECORD_BYTES)
    bits = np.unpackbits(raw, axis=1)
    bits = np.concatenate(
        [bits, np.zeros((len(records), _PAD_BITS), dtype=np.uint8)], axis=1
    )
    groups = bits.reshape(len(records), RECORD_CHARS, 5) @ _POW5
    return _ALPHABET_BYTES[groups].tobytes().decode("ascii")


def decode_records(text: str) -> list[Record]:
    """Decode contiguous wire text back into records (batched)."""
    if len(text) % RECORD_CHARS:
        raise CiphertextFormatError(
            f"record area length {len(text)} is not a multiple of "
            f"{RECORD_CHARS}"
        )
    count = len(text) // RECORD_CHARS
    if count < 8:
        return [
            decode_record(text[i : i + RECORD_CHARS])
            for i in range(0, len(text), RECORD_CHARS)
        ]
    try:
        chars = np.frombuffer(text.encode("ascii"), dtype=np.uint8)
    except UnicodeEncodeError:
        raise CiphertextFormatError(
            "invalid base32 character in record area"
        ) from None
    indices = _ALPHABET_INDEX[chars]
    if (indices == 255).any():
        raise CiphertextFormatError("invalid base32 character in record area")
    bits = np.unpackbits(indices.reshape(count * RECORD_CHARS, 1), axis=1)
    bits = bits[:, 3:].reshape(count, RECORD_CHARS * 5)
    if bits[:, RECORD_BYTES * 8 :].any():
        raise CiphertextFormatError("non-canonical base32 tail bits")
    raw = np.packbits(bits[:, : RECORD_BYTES * 8], axis=1)
    return [
        Record(char_count=int(row[0]), block=row[1:].tobytes())
        for row in raw
    ]


@dataclass(frozen=True)
class DocumentHeader:
    """Plaintext metadata prefix of a ciphertext document."""

    scheme: str       #: scheme name, e.g. ``"recb"`` or ``"rpc"``
    block_chars: int  #: block capacity parameter ``b`` (characters)
    nonce_bits: int   #: nonce width used by the scheme
    salt: bytes       #: per-document KDF salt

    def encode(self) -> str:
        """Serialize, terminated by :data:`_HEADER_END`."""
        return "-".join([
            _MAGIC,
            self.scheme.upper(),
            str(self.block_chars),
            str(self.nonce_bits),
            base32.encode(self.salt),
        ]) + _HEADER_END

    @property
    def wire_length(self) -> int:
        """Characters this header occupies on the wire."""
        return len(self.encode())


def parse_document(text: str) -> tuple[DocumentHeader, list[Record]]:
    """Split a stored ciphertext document into header and records."""
    header, rest = split_header(text)
    return header, decode_records(rest)


def split_header(text: str) -> tuple[DocumentHeader, str]:
    """Parse the header prefix; return it plus the raw record area."""
    end = text.find(_HEADER_END)
    if end < 0:
        raise CiphertextFormatError("missing document header terminator")
    parts = text[:end].split("-")
    if len(parts) != 5 or parts[0] != _MAGIC:
        raise CiphertextFormatError(f"bad document header {text[:end]!r}")
    try:
        header = DocumentHeader(
            scheme=parts[1].lower(),
            block_chars=int(parts[2]),
            nonce_bits=int(parts[3]),
            salt=base32.decode(parts[4]),
        )
    except ValueError as exc:
        raise CiphertextFormatError(f"bad document header: {exc}") from None
    return header, text[end + 1 :]


def looks_encrypted(text: str) -> bool:
    """Heuristic used by tools and tests: is this a PE1 wire document?"""
    return text.startswith(_MAGIC + "-")
