"""Command-line interface: ``python -m repro <command>``.

A small operational surface over the library, for working with wire
documents as files:

* ``encrypt``  — plaintext file → ciphertext wire document
* ``decrypt``  — wire (or stego) document → plaintext
* ``edit``     — apply an insert/delete/replace *incrementally* to a
  wire document, printing the ciphertext delta that a server would
  receive (the IncE operation, observable)
* ``inspect``  — parse a wire document's public metadata without any
  password; verify it when a password is given
* ``demo``     — a one-command tour of the simulated private-editing
  stack
* ``chaos``    — the demo on a hostile network: a seeded fault plan
  drops/duplicates/corrupts traffic while the resilient client retries
  and resyncs; prints what was injected and whether the document
  converged
* ``serve``    — host the registry's simulated services behind a real
  asyncio TCP socket (``repro.net.server``): multi-tenant,
  document-sharded, speaking length-prefixed HTTP-form frames
* ``loadgen``  — drive N concurrent private-editing sessions against a
  served (or self-hosted) socket server — the load generator behind
  ``make bench-load``, one cell at a time
* ``stats``    — render a JSON metrics sidecar (as written by
  ``--metrics-json`` or the benchmark harness) as a readable listing
* ``fuzz``     — the differential fuzzer (``repro.fuzz``): seeded edit
  traces through the full stack, every step checked against a
  plaintext oracle; failures shrink to minimal replay files

Every command accepts ``--metrics`` (print the populated metrics
registry to stderr when done) and ``--metrics-json PATH`` (write the
registry as a JSON sidecar).  Passwords are taken from ``--password``
or the ``REPRO_PASSWORD`` environment variable.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core import create_document, load_document
from repro.core.delta import Delta
from repro.encoding.stego import looks_stego, stego_unwrap, stego_wrap
from repro.encoding.wire import RECORD_CHARS, parse_document
from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _write(path: str | None, content: str) -> None:
    if path is None or path == "-":
        sys.stdout.write(content)
        if not content.endswith("\n"):
            sys.stdout.write("\n")
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content)


def _password(args: argparse.Namespace) -> str:
    password = args.password or os.environ.get("REPRO_PASSWORD")
    if not password:
        raise SystemExit(
            "error: a password is required (--password or REPRO_PASSWORD)"
        )
    return password


def _load(path: str, password: str):
    content = _read(path)
    if looks_stego(content):
        content = stego_unwrap(content)
    return load_document(content, password=password)


# -- commands ----------------------------------------------------------------


def cmd_encrypt(args: argparse.Namespace) -> int:
    """``repro encrypt``: plaintext file -> ciphertext wire document."""
    text = _read(args.infile)
    doc = create_document(
        text,
        password=_password(args),
        scheme=args.scheme,
        block_chars=args.block_chars,
    )
    wire = doc.wire()
    if args.stego:
        wire = stego_wrap(wire)
    _write(args.output, wire)
    print(
        f"encrypted {doc.char_length} chars -> {len(wire)} stored chars "
        f"({doc.scheme}, b={doc.block_chars}, "
        f"blow-up {len(wire) / max(1, doc.char_length):.1f}x)",
        file=sys.stderr,
    )
    return 0


def cmd_decrypt(args: argparse.Namespace) -> int:
    """``repro decrypt``: wire (or stego) document -> plaintext."""
    doc = _load(args.infile, _password(args))
    _write(args.output, doc.text)
    return 0


def cmd_edit(args: argparse.Namespace) -> int:
    """``repro edit``: apply one edit incrementally, printing the cdelta size."""
    doc = _load(args.infile, _password(args))
    delta = Delta.replacement(
        args.at, args.delete or 0, args.insert or ""
    )
    cdelta = doc.apply_delta(delta)
    wire = doc.wire()
    if args.stego:
        wire = stego_wrap(wire)
    _write(args.infile if args.in_place else args.output, wire)
    touched = sum(
        len(op.text) if hasattr(op, "text") else op.count
        for op in cdelta.ops
        if type(op).__name__ in ("Insert", "Delete")
    )
    print(
        f"applied edit at {args.at}: ciphertext delta rewrites "
        f"~{touched // RECORD_CHARS} records "
        f"({len(cdelta.serialize())} delta chars, document is "
        f"{doc.char_length} chars)",
        file=sys.stderr,
    )
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    """``repro inspect``: show a wire document's public metadata."""
    content = _read(args.infile)
    stego = looks_stego(content)
    if stego:
        content = stego_unwrap(content)
    header, records = parse_document(content)
    data_records = [r for r in records if r.char_count > 0]
    chars = sum(r.char_count for r in records)
    print(f"scheme:        {header.scheme}")
    print(f"block chars:   {header.block_chars}")
    print(f"nonce bits:    {header.nonce_bits}")
    print(f"stego wrapped: {'yes' if stego else 'no'}")
    print(f"records:       {len(records)} "
          f"({len(data_records)} data, "
          f"{len(records) - len(data_records)} bookkeeping)")
    print(f"plaintext:     {chars} chars (from public block counters)")
    print(f"stored size:   {len(content)} chars "
          f"(blow-up {len(content) / max(1, chars):.1f}x)")
    password = args.password or os.environ.get("REPRO_PASSWORD")
    if password:
        doc = load_document(content, password=password)
        verdict = "verified (integrity)" if doc.supports_integrity else \
            "decrypted (no integrity in this scheme)"
        print(f"with password: {verdict}; version "
              f"{getattr(doc, 'version', 'n/a')}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """``repro stats``: render a stored JSON metrics sidecar."""
    from repro.obs.export import load_sidecar, render_json_text

    try:
        sidecar = load_sidecar(args.infile)
    except ValueError as exc:
        print(f"error: invalid metrics sidecar: {exc}", file=sys.stderr)
        return 1
    print(render_json_text(
        sidecar, title=f"metrics ({args.infile}, registry "
                       f"{sidecar['registry']!r})"
    ))
    return 0


def _emit_metrics(args: argparse.Namespace) -> None:
    """Honor ``--metrics`` / ``--metrics-json`` after a command ran."""
    if not (getattr(args, "metrics", False)
            or getattr(args, "metrics_json", None)):
        return
    # Materialize every instrumented layer so the registry shows the
    # full metric namespace (zero-valued where this command was idle).
    import repro.net.channel  # noqa: F401
    import repro.services.gdocs.server  # noqa: F401
    from repro.obs.export import render_text, write_sidecar

    if getattr(args, "metrics", False):
        print(render_text(title="-- metrics --"), file=sys.stderr)
    path = getattr(args, "metrics_json", None)
    if path:
        write_sidecar(path)


def cmd_demo(args: argparse.Namespace) -> int:
    """``repro demo``: a one-command tour of the private-editing stack."""
    from repro.extension import PrivateEditingSession

    session = PrivateEditingSession("demo", "demo-password",
                                    scheme="rpc")
    session.open()
    session.type_text(0, "This never reaches the provider in the clear.")
    session.save()
    session.type_text(0, "Demo: ")
    session.save()
    print("user sees: ", session.text)
    stored = session.server_view()
    print("server has:", stored[:64] + "...")
    print(f"({len(stored)} stored chars; 2 saves: 1 full + 1 delta)")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos``: the demo under a seeded hostile network,
    against any registered service (``--service``)."""
    from repro.extension import PrivateEditingSession
    from repro.net.faults import FaultPlan
    from repro.net.policy import RetryPolicy
    from repro.obs import default_registry
    from repro.services import registry

    plan = FaultPlan.uniform(args.rate, seed=args.seed)
    session = PrivateEditingSession(
        "chaos", "chaos-password", scheme=args.scheme,
        faults=plan, retry_policy=RetryPolicy(seed=args.seed),
        verify_acks=True, service=args.service,
    )
    session.open()
    session.type_text(0, "Edited over a network that loses, reorders, "
                         "and corrupts.")
    outcomes = [session.save()]
    session.type_text(0, "Chaos demo: ")
    outcomes.append(session.save())
    plan.quiesce()  # recovery phase: the weather clears
    outcomes.append(session.save())
    if not registry.backend_for(args.service).capabilities.revisioned:
        # un-revisioned whole-file stores can be overwritten by a
        # reorder fault's late flush during the save above; one more
        # save lands last (see repro.fuzz.runner for the full story)
        outcomes.append(session.save())

    print(f"fault plan:  seed={args.seed} rate={args.rate} "
          f"service={args.service} ({len(plan.injections)} injections)")
    for index, kind in plan.injections:
        print(f"  exchange {index:3d}: {kind}")
    failed = [o for o in outcomes if not o.ok]
    retries = default_registry().snapshot().get(
        "client.retries.attempts", 0)
    print(f"saves:       {len(outcomes)} "
          f"({len(failed)} unrecoverable, {retries:.0f} retries, "
          f"{sum(o.resynced for o in outcomes)} resyncs)")
    stored = session.server_view()
    recovered = registry.decrypt_view(
        args.service, stored, "chaos-password", args.scheme
    )
    converged = recovered == session.text
    print(f"user sees:   {session.text}")
    print(f"server has:  {stored[:56]}...")
    print(f"converged:   {'yes' if converged else 'NO'} "
          f"(stored ciphertext decrypts to the user's text)")
    return 0 if converged else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: host the simulated services on a TCP socket
    until interrupted (any registry backend, multi-tenant, sharded)."""
    import asyncio

    from repro.net.server import ReproServer

    server = ReproServer(
        host=args.host, port=args.port, shards=args.shards,
        service_time=args.service_time,
        merge_concurrent=args.merge_concurrent,
    )

    async def _serve() -> None:
        host, port = await server.start()
        print(f"repro server on {host}:{port} "
              f"({args.shards} shards/tenant, "
              f"service_time={args.service_time * 1000:.0f}ms); "
              f"Ctrl-C to stop", file=sys.stderr)
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nserver stopped", file=sys.stderr)
    finally:
        server.shutdown()
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """``repro loadgen``: one load cell — N concurrent sessions against
    a socket server (self-hosted unless ``--host/--port`` name one)."""
    import json as _json

    from repro.bench.load import run_load

    address = None
    if args.port:
        address = (args.host, args.port)
    cell = run_load(
        sessions=args.sessions, rounds=args.rounds, service=args.service,
        transport=args.transport, address=address, workers=args.workers,
        fault_rate=args.rate, service_time=args.service_time,
    )
    _json.dump(cell.row(), sys.stdout, indent=2)
    print()
    return 0 if cell.converged_sample else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    """``repro fuzz``: run the differential fuzzer; exit 1 on any
    invariant violation (failures are shrunk and written as replay
    files when ``--corpus-dir`` is given)."""
    from repro.fuzz import FuzzRunner
    from repro.fuzz.generators import Trace
    from repro.fuzz.runner import run_trace

    if args.replay:
        import json as _json

        data = _json.loads(_read(args.replay))
        # accept both a bare trace and a corpus file wrapping one
        trace = Trace.from_dict(data.get("trace", data))
        violation = run_trace(trace)
        if violation is None:
            print(f"replay {args.replay}: no violation "
                  f"(seed {trace.seed}, mode {trace.mode})")
            return 0
        print(f"replay {args.replay}: [{violation.kind}] "
              f"step {violation.step}: {violation.detail}",
              file=sys.stderr)
        return 1

    runner = FuzzRunner(
        seed=args.seed,
        iters=args.iters,
        profile=args.profile,
        mode=args.mode,
        scheme=args.scheme,
        service=args.service,
        corpus_dir=args.corpus_dir,
        shrink=not args.no_shrink,
    )

    def progress(done: int, total: int) -> None:
        print(f"  ... {done}/{total}", file=sys.stderr)

    report = runner.run(progress=progress if args.verbose else None)
    print(f"fuzz: {report.iterations} iterations "
          f"(profile {report.profile}, seed {report.seed}) -> "
          f"{len(report.failures)} violation(s)")
    print(f"run digest: {report.digest}")
    for failure in report.failures:
        v = failure["violation"]
        where = failure.get("corpus_file", "(no corpus dir)")
        print(f"  seed {failure['seed']}: [{v['kind']}] {v['detail']}",
              file=sys.stderr)
        print(f"    shrunk replay: {where}", file=sys.stderr)
        print(f"    rerun: repro fuzz --seed {failure['seed']} "
              f"--iters 1 --profile {report.profile}", file=sys.stderr)
    return 0 if report.ok else 1


# -- wiring ------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI definition."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Private editing on untrusted cloud services "
                    "(Huang & Evans, 2011) — reproduction CLI.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_password(p):
        p.add_argument("--password", help="document password "
                       "(or set REPRO_PASSWORD)")

    def add_metrics(p):
        p.add_argument("--metrics", action="store_true",
                       help="print the metrics registry to stderr "
                            "when the command finishes")
        p.add_argument("--metrics-json", metavar="PATH",
                       help="write the metrics registry to PATH as a "
                            "JSON sidecar (see `repro stats`)")

    p = sub.add_parser("encrypt", help="encrypt a plaintext file")
    add_password(p)
    add_metrics(p)
    p.add_argument("--scheme", choices=["recb", "rpc"], default="rpc")
    p.add_argument("--block-chars", type=int, default=8)
    p.add_argument("--stego", action="store_true",
                   help="disguise the ciphertext as pseudo-prose")
    p.add_argument("-o", "--output", default="-")
    p.add_argument("infile", nargs="?", default="-")
    p.set_defaults(func=cmd_encrypt)

    p = sub.add_parser("decrypt", help="decrypt a wire document")
    add_password(p)
    add_metrics(p)
    p.add_argument("-o", "--output", default="-")
    p.add_argument("infile", nargs="?", default="-")
    p.set_defaults(func=cmd_decrypt)

    p = sub.add_parser("edit", help="apply one edit incrementally")
    add_password(p)
    add_metrics(p)
    p.add_argument("--at", type=int, required=True,
                   help="character position of the edit")
    p.add_argument("--insert", help="text to insert")
    p.add_argument("--delete", type=int,
                   help="number of characters to delete")
    p.add_argument("--stego", action="store_true")
    p.add_argument("--in-place", action="store_true",
                   help="write the result back to INFILE")
    p.add_argument("-o", "--output", default="-")
    p.add_argument("infile")
    p.set_defaults(func=cmd_edit)

    p = sub.add_parser("inspect", help="show a wire document's metadata")
    add_password(p)
    add_metrics(p)
    p.add_argument("infile", nargs="?", default="-")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("demo", help="run the private-editing demo")
    add_metrics(p)
    p.set_defaults(func=cmd_demo)

    p = sub.add_parser("chaos", help="run the demo on a faulty network")
    add_metrics(p)
    p.add_argument("--seed", type=int, default=7,
                   help="fault/retry RNG seed (default 7); a failing "
                        "run replays exactly from its seed")
    p.add_argument("--service",
                   choices=["gdocs", "bespin", "buzzword", "replicated"],
                   default="gdocs",
                   help="cloud service to run the demo against")
    p.add_argument("--rate", type=float, default=0.25,
                   help="per-exchange fault probability per kind")
    p.add_argument("--scheme", choices=["recb", "rpc"], default="rpc")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("fuzz", help="run the differential fuzzer")
    add_metrics(p)
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; case i uses trace seed SEED+i, so "
                        "any failure replays alone by its seed")
    p.add_argument("--iters", type=int, default=2000,
                   help="number of seeded traces to run (default 2000)")
    p.add_argument("--profile", default="ci",
                   choices=["ci", "quick", "engine", "burst", "deep",
                            "collab", "workspace"],
                   help="trace-shape profile (default ci)")
    p.add_argument("--mode",
                   choices=["engine", "session", "concurrent",
                            "workspace"],
                   help="force one execution mode (default: mixed)")
    p.add_argument("--service",
                   choices=["gdocs", "bespin", "buzzword", "replicated"],
                   help="pin networked traces to one cloud service "
                        "(default: session traces draw one)")
    p.add_argument("--scheme", choices=["recb", "rpc"],
                   help="force one scheme (default: mixed)")
    p.add_argument("--corpus-dir", metavar="DIR",
                   help="write shrunk failing traces as replay JSON "
                        "files under DIR")
    p.add_argument("--replay", metavar="FILE",
                   help="re-run one saved trace JSON instead of fuzzing")
    p.add_argument("--no-shrink", action="store_true",
                   help="report raw failing traces without minimizing")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print progress every 500 cases")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser("serve", help="host the simulated services on "
                                     "a TCP socket")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8911,
                   help="TCP port (default 8911; 0 picks a free one)")
    p.add_argument("--shards", type=int, default=4,
                   help="document shards per (service, tenant) — "
                        "per-doc serialized, cross-doc concurrent")
    p.add_argument("--service-time", type=float, default=0.0,
                   help="simulated per-request server handling time in "
                        "seconds (non-blocking; default 0)")
    p.add_argument("--merge-concurrent", action="store_true",
                   help="OT-merge stale saves over the intervening "
                        "history instead of answering conflict "
                        "(backends with merges_stale_saves only)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("loadgen", help="drive N concurrent sessions "
                                       "against a socket server")
    p.add_argument("--sessions", type=int, default=100)
    p.add_argument("--rounds", type=int, default=2,
                   help="edit+save rounds per session")
    p.add_argument("--service",
                   choices=["gdocs", "bespin", "buzzword", "replicated"],
                   default="gdocs")
    p.add_argument("--transport", choices=["socket", "inprocess"],
                   default="socket")
    p.add_argument("--host", default="127.0.0.1",
                   help="server to target (with --port); self-hosts "
                        "when no --port is given")
    p.add_argument("--port", type=int, default=0,
                   help="server port (0 = self-host a fresh server)")
    p.add_argument("--workers", type=int, default=64,
                   help="driver threads (socket mode)")
    p.add_argument("--rate", type=float, default=0.05,
                   help="per-exchange fault probability per kind")
    p.add_argument("--service-time", type=float, default=0.020,
                   help="self-hosted server's simulated handling time")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser("stats", help="render a JSON metrics sidecar")
    p.add_argument("infile", help="sidecar path (from --metrics-json "
                                  "or the benchmark harness)")
    p.set_defaults(func=cmd_stats)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        code = args.func(args)
        _emit_metrics(args)
        return code
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like any
        # well-behaved CLI.  Point stdout at devnull so the interpreter's
        # exit-time flush does not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    raise SystemExit(main())
