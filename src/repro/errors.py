"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Subtrees mirror the
package layout: crypto failures, delta/transform failures, protocol and
service failures, and data-structure misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Cryptography
# ---------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeySizeError(CryptoError):
    """An AES key of unsupported length was supplied."""


class BlockSizeError(CryptoError):
    """Input is not a whole number of cipher blocks, or a block has the
    wrong width."""


class CiphertextFormatError(CryptoError):
    """A ciphertext document or record does not parse (bad wire framing,
    wrong length, corrupt Base32, unknown scheme tag...)."""


class IntegrityError(CryptoError):
    """Integrity verification failed: the ciphertext was tampered with,
    replayed, truncated, or spliced.

    Raised only by schemes that provide integrity (RPC mode).  The message
    describes which check failed (start marker, nonce chain, checksum
    block, or length amendment) to aid the attack-analysis harness; a real
    deployment would surface a single opaque failure.
    """


class DecryptionError(CryptoError):
    """Decryption could not produce a plaintext (bad key/password or
    malformed ciphertext)."""


# ---------------------------------------------------------------------------
# Deltas and transformation
# ---------------------------------------------------------------------------

class DeltaError(ReproError):
    """Base class for delta-related failures."""


class DeltaSyntaxError(DeltaError):
    """A delta string does not conform to the ``=n`` / ``+str`` / ``-n``
    grammar."""


class DeltaApplicationError(DeltaError):
    """A syntactically valid delta cannot be applied to this document
    (cursor runs past the end, delete count exceeds remaining text...)."""


class TransformError(DeltaError):
    """The extension could not translate a plaintext delta into a
    ciphertext delta (mirror out of sync with the client's edits)."""


# ---------------------------------------------------------------------------
# Network / services / extension
# ---------------------------------------------------------------------------

class ProtocolError(ReproError):
    """A message violates the (reverse-engineered) application protocol."""


class BlockedRequestError(ProtocolError):
    """The mediator dropped a request that did not match the narrow
    allowed interface (the fail-closed branch of Fig. 2)."""


class NetworkError(ProtocolError):
    """The simulated network failed to complete an exchange (the
    unreliable-cloud model of :mod:`repro.net.faults`)."""


class NetworkTimeoutError(NetworkError):
    """No response arrived within the timeout: the request or its
    response was lost in flight.  The caller cannot know whether the
    server processed the request — which is exactly why save requests
    carry idempotency keys."""


class RetryBudgetExceededError(NetworkError):
    """The retry policy's attempt or deadline budget ran out before an
    exchange succeeded."""


class QuotaExceededError(ProtocolError):
    """The server refused content above its maximum file size
    (Google Documents enforced 500 kB in 2011)."""


class SessionError(ProtocolError):
    """An operation was attempted outside a valid edit session."""


class ConflictError(ProtocolError):
    """Concurrent editors touched the same region and the server reported
    a conflict (the partially-functional collaboration mode of SVII-A)."""


class PasswordError(ReproError):
    """Wrong or missing per-document password."""


# ---------------------------------------------------------------------------
# Data structures
# ---------------------------------------------------------------------------

class DataStructureError(ReproError):
    """Misuse of an index structure (invariant would be violated)."""
