"""Multiple-character block packing (SV-C).

Plaintext is grouped into blocks of up to ``b`` characters (the
user-adjustable block-capacity parameter).  A data block's payload rides
in a 64-bit field of the AES block, so a block holds at most
:data:`PAYLOAD_BYTES` bytes of UTF-8; ``b`` counts *characters*, so a
block of non-ASCII text may hold fewer than ``b`` characters.

Padding is ``0x00`` bytes, which cannot appear inside UTF-8 text except
as the NUL character — NUL is therefore excluded from documents (an
on-line editor cannot represent it anyway).
"""

from __future__ import annotations

from repro.errors import BlockSizeError

#: payload field width: the paper fixes 64 bits ("Due to the fixed block
#: size of AES, we choose a maximum of 8 characters (64 bits) per block").
PAYLOAD_BYTES = 8

#: the largest meaningful block-capacity parameter for an 8-byte payload
MAX_BLOCK_CHARS = PAYLOAD_BYTES


def validate_block_chars(block_chars: int) -> int:
    """Check a block-capacity parameter ``b``; return it."""
    if not 1 <= block_chars <= MAX_BLOCK_CHARS:
        raise BlockSizeError(
            f"block capacity must be in [1, {MAX_BLOCK_CHARS}] characters, "
            f"got {block_chars}"
        )
    return block_chars


def validate_text(text: str) -> str:
    """Reject text a block document cannot represent (NUL)."""
    if "\x00" in text:
        raise BlockSizeError("documents may not contain NUL characters")
    return text


def pack_chars(chunk: str) -> bytes:
    """Pack one block's characters into the padded 8-byte payload."""
    raw = chunk.encode("utf-8")
    if len(raw) > PAYLOAD_BYTES:
        raise BlockSizeError(
            f"chunk {chunk!r} needs {len(raw)} bytes, payload holds "
            f"{PAYLOAD_BYTES}"
        )
    if b"\x00" in raw:
        raise BlockSizeError("chunk contains NUL")
    return raw.ljust(PAYLOAD_BYTES, b"\x00")


def unpack_chars(payload: bytes) -> str:
    """Invert :func:`pack_chars`."""
    if len(payload) != PAYLOAD_BYTES:
        raise BlockSizeError(
            f"payload must be {PAYLOAD_BYTES} bytes, got {len(payload)}"
        )
    return payload.rstrip(b"\x00").decode("utf-8")


def chunk_text(text: str, block_chars: int) -> list[str]:
    """Greedily split ``text`` into block-sized chunks.

    Each chunk holds at most ``block_chars`` characters *and* at most
    :data:`PAYLOAD_BYTES` UTF-8 bytes.  Greedy packing fills every chunk
    to capacity, so a freshly encrypted document has no fragmentation;
    fragmentation appears later as edits split blocks (that gap between
    ideal and measured blow-up is exactly what Fig. 7 reports).
    """
    validate_block_chars(block_chars)
    validate_text(text)
    chunks: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        take = min(block_chars, n - i)
        while take > 1 and len(text[i : i + take].encode("utf-8")) > PAYLOAD_BYTES:
            take -= 1
        chunk = text[i : i + take]
        if len(chunk.encode("utf-8")) > PAYLOAD_BYTES:
            # A single character wider than the payload (impossible for
            # real UTF-8: max 4 bytes) — guard anyway.
            raise BlockSizeError(f"character {chunk!r} exceeds payload")
        chunks.append(chunk)
        i += take
    return chunks
