"""The incremental-update *delta* language (SIV-A).

Google Documents described each incremental save as a *delta*: a
tab-separated sequence of operations over a one-dimensional document
string, interpreted left to right by an imaginary cursor that starts at
position 0:

``=num``
    move the cursor forward ``num`` characters;
``+str``
    insert ``str`` at the cursor and advance past it;
``-num``
    delete ``num`` characters at the cursor.

Examples from the paper: ``=2\\t-5`` turns ``abcdefg`` into ``ab``;
``=2\\t-3\\t+uv\\t=2\\t+w`` turns ``abcdefg`` into ``abuvfgw``.

This module implements the language completely: parsing, serialization,
application, canonicalization (the covert-channel countermeasure of
SVI-B), and the coordinate transforms the encryption layer needs.  The
same :class:`Delta` type carries plaintext deltas and ciphertext deltas
(*cdeltas*) — a cdelta is simply a delta over the wire string.

Serialization detail: inserted text may itself contain tabs or ``%``, so
``+`` payloads are percent-escaped for exactly those two characters.
The real protocol form-encoded the entire delta, which hid this issue;
escaping locally keeps :meth:`Delta.parse` ∘ :meth:`Delta.serialize`
the identity for all text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from repro.errors import DeltaApplicationError, DeltaSyntaxError

__all__ = [
    "Retain", "Insert", "Delete", "DeltaOp", "Delta",
    "SourceInsert", "SourceDelete", "SourceEdit",
]


@dataclass(frozen=True)
class Retain:
    """``=num``: advance the cursor ``count`` characters."""

    count: int


@dataclass(frozen=True)
class Insert:
    """``+str``: insert ``text`` at the cursor."""

    text: str


@dataclass(frozen=True)
class Delete:
    """``-num``: delete ``count`` characters at the cursor."""

    count: int


DeltaOp = Union[Retain, Insert, Delete]


# -- source-coordinate edit forms (used by the encryption layer) ---------

@dataclass(frozen=True)
class SourceInsert:
    """Insertion anchored at a position of the *original* document."""

    pos: int
    text: str


@dataclass(frozen=True)
class SourceDelete:
    """Deletion of ``[pos, pos+count)`` of the *original* document."""

    pos: int
    count: int


SourceEdit = Union[SourceInsert, SourceDelete]


def _escape(text: str) -> str:
    return text.replace("%", "%25").replace("\t", "%09")


def _unescape(text: str) -> str:
    if "%" not in text:  # the overwhelmingly common case: no escapes
        return text
    out: list[str] = []
    i = 0
    while i < len(text):
        if text[i] == "%":
            code = text[i + 1 : i + 3]
            if code == "09":
                out.append("\t")
            elif code == "25":
                out.append("%")
            else:
                raise DeltaSyntaxError(f"bad escape %{code} in insert payload")
            i += 3
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


class Delta:
    """An immutable sequence of delta operations."""

    __slots__ = ("_ops",)

    def __init__(self, ops: Iterable[DeltaOp] = ()):
        ops = tuple(ops)
        for op in ops:
            if isinstance(op, (Retain, Delete)):
                if op.count <= 0:
                    raise DeltaSyntaxError(
                        f"{type(op).__name__} count must be positive, "
                        f"got {op.count}"
                    )
            elif isinstance(op, Insert):
                if not op.text:
                    raise DeltaSyntaxError("empty insert op")
            else:
                raise DeltaSyntaxError(f"unknown op {op!r}")
        self._ops = ops

    # -- accessors -------------------------------------------------------

    @property
    def ops(self) -> tuple[DeltaOp, ...]:
        return self._ops

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Delta) and self._ops == other._ops

    def __hash__(self) -> int:
        return hash(self._ops)

    def __repr__(self) -> str:
        return f"Delta({self.serialize()!r})"

    def __bool__(self) -> bool:
        """True when the delta contains any operation (even pure retains)."""
        return bool(self._ops)

    @property
    def is_identity(self) -> bool:
        """Does this delta leave every document unchanged?"""
        return all(isinstance(op, Retain) for op in self._ops)

    @property
    def chars_inserted(self) -> int:
        return sum(len(op.text) for op in self._ops if isinstance(op, Insert))

    @property
    def chars_deleted(self) -> int:
        return sum(op.count for op in self._ops if isinstance(op, Delete))

    @property
    def length_change(self) -> int:
        """Net document-length change caused by applying this delta."""
        return self.chars_inserted - self.chars_deleted

    # -- wire form ------------------------------------------------------

    def serialize(self) -> str:
        """Render as the tab-separated wire string."""
        parts: list[str] = []
        for op in self._ops:
            if isinstance(op, Retain):
                parts.append(f"={op.count}")
            elif isinstance(op, Insert):
                parts.append("+" + _escape(op.text))
            else:
                parts.append(f"-{op.count}")
        return "\t".join(parts)

    @classmethod
    def parse(cls, text: str) -> "Delta":
        """Parse a wire delta string."""
        if text == "":
            return cls(())
        ops: list[DeltaOp] = []
        for token in text.split("\t"):
            if not token:
                raise DeltaSyntaxError("empty delta token")
            kind, body = token[0], token[1:]
            if kind == "=":
                ops.append(Retain(_parse_count(body, token)))
            elif kind == "-":
                ops.append(Delete(_parse_count(body, token)))
            elif kind == "+":
                if not body:
                    raise DeltaSyntaxError("empty insert token")
                ops.append(Insert(_unescape(body)))
            else:
                raise DeltaSyntaxError(f"unknown delta op {token!r}")
        return cls(ops)

    # -- semantics --------------------------------------------------------

    def apply(self, document) -> str:
        """Apply this delta to ``document`` and return the result.

        ``document`` is normally a plain string; the delta is replayed
        into a fresh string in O(document) time.  It may instead be any
        piece-table-like object exposing ``apply_delta(delta)`` (e.g.
        :class:`repro.services.gdocs.pieces.PieceTable` — duck-typed so
        the core layer needs no service import): the target is edited
        in place in O(ops + pieces) and returned.
        """
        if not isinstance(document, str):
            applier = getattr(document, "apply_delta", None)
            if applier is None:
                raise TypeError(
                    f"Delta.apply target must be a str or expose "
                    f"apply_delta(); got {type(document).__name__}"
                )
            applier(self)
            return document
        pieces: list[str] = []
        cursor = 0
        for op in self._ops:
            if isinstance(op, Retain):
                end = cursor + op.count
                if end > len(document):
                    raise DeltaApplicationError(
                        f"retain past end: cursor {cursor} + {op.count} > "
                        f"{len(document)}"
                    )
                pieces.append(document[cursor:end])
                cursor = end
            elif isinstance(op, Insert):
                pieces.append(op.text)
            else:
                end = cursor + op.count
                if end > len(document):
                    raise DeltaApplicationError(
                        f"delete past end: cursor {cursor} + {op.count} > "
                        f"{len(document)}"
                    )
                cursor = end
        pieces.append(document[cursor:])
        return "".join(pieces)

    def canonical(self) -> "Delta":
        """Return the canonical equivalent delta.

        Canonical form merges adjacent same-type operations, orders a
        delete before an insert at the same cursor position, and drops
        trailing retains.  Any two deltas with the same *effect* on every
        document canonicalize identically, which is exactly why SVI-B
        proposes canonicalization as a countermeasure against
        delta-shape covert channels.
        """
        retains: int = 0
        deletes: int = 0
        inserts: list[str] = []
        out: list[DeltaOp] = []

        def flush() -> None:
            nonlocal retains, deletes, inserts
            if retains:
                out.append(Retain(retains))
                retains = 0
            if deletes:
                out.append(Delete(deletes))
                deletes = 0
            if inserts:
                out.append(Insert("".join(inserts)))
                inserts = []

        for op in self._ops:
            if isinstance(op, Retain):
                if deletes or inserts:
                    flush()
                retains += op.count
            elif isinstance(op, Delete):
                # A delete commutes backward past an insert at the same
                # cursor: "+x -n" and "-n +x" both consume the same
                # original characters (the cursor after +x sits at the
                # same original-text position), so accumulating into one
                # delete-then-insert group preserves semantics.
                deletes += op.count
            else:
                inserts.append(op.text)
        if deletes or inserts:  # a trailing pure retain is dropped
            flush()
        return Delta(out)

    # -- coordinate transforms -----------------------------------------

    def source_edits(self) -> list[SourceEdit]:
        """Rewrite the delta as edits anchored in *original* coordinates.

        The cursor semantics are evolving-document positions; the
        encryption layer wants to know which original characters each
        operation touches.  Returns inserts/deletes with positions in
        the pre-delta document, ordered left to right (several inserts
        may share a position; their relative order is preserved).
        """
        edits: list[SourceEdit] = []
        src = 0  # cursor in original coordinates
        for op in self._ops:
            if isinstance(op, Retain):
                src += op.count
            elif isinstance(op, Insert):
                edits.append(SourceInsert(src, op.text))
            else:
                edits.append(SourceDelete(src, op.count))
                src += op.count
        return edits

    def source_span(self) -> tuple[int, int] | None:
        """Smallest ``[lo, hi)`` original-coordinate range containing
        every edit, or ``None`` for an identity delta.

        A pure insert at position p yields ``(p, p)``.
        """
        lo: int | None = None
        hi = 0
        for edit in self.source_edits():
            if lo is None:
                lo = edit.pos
            end = edit.pos + (edit.count if isinstance(edit, SourceDelete) else 0)
            hi = max(hi, end)
        if lo is None:
            return None
        return lo, hi

    # -- construction helpers ----------------------------------------------

    @classmethod
    def insertion(cls, pos: int, text: str) -> "Delta":
        """Delta inserting ``text`` at ``pos``."""
        ops: list[DeltaOp] = []
        if pos:
            ops.append(Retain(pos))
        ops.append(Insert(text))
        return cls(ops)

    @classmethod
    def deletion(cls, pos: int, count: int) -> "Delta":
        """Delta deleting ``count`` characters at ``pos``."""
        ops: list[DeltaOp] = []
        if pos:
            ops.append(Retain(pos))
        ops.append(Delete(count))
        return cls(ops)

    @classmethod
    def replacement(cls, pos: int, count: int, text: str) -> "Delta":
        """Delta replacing ``count`` characters at ``pos`` with ``text``."""
        ops: list[DeltaOp] = []
        if pos:
            ops.append(Retain(pos))
        if count:
            ops.append(Delete(count))
        if text:
            ops.append(Insert(text))
        return cls(ops)


def _parse_count(body: str, token: str) -> int:
    # isdigit() alone admits Unicode digits (e.g. '²') that int() rejects
    if not (body.isascii() and body.isdigit()):
        raise DeltaSyntaxError(f"bad count in delta op {token!r}")
    value = int(body)
    if value <= 0:
        raise DeltaSyntaxError(f"non-positive count in delta op {token!r}")
    return value


def iter_compose(deltas: Iterable[Delta], document: str) -> Iterator[str]:
    """Apply ``deltas`` in sequence, yielding each intermediate document."""
    for delta in deltas:
        document = delta.apply(document)
        yield document
