"""Incremental MACs and the substitution attack (SV-A, made concrete).

The paper surveys incremental *authentication* before settling on
authenticated encryption: "the hash-then-sign [2] and XOR [3] schemes
are all subject to substitution attacks.  On the other hand, IncXMACC
[15] and the hash tree [3] schemes achieve true tamperproofing but at
the cost of O(n) size of signature, [or] O(log n) time complexity."
This module implements both sides of that sentence so the claim is
executable:

* :class:`XorIncrementalMac` — the XOR scheme: the tag is the XOR of a
  PRF applied to every ``(position, block)`` pair, giving **O(1)**
  replace-updates... and exactly the substitution weakness: a server
  that watched an update of position *i* from block *a* to block *b*
  learns ``F(i,a) XOR F(i,b)`` from the two tags, and can thereafter
  swap *b* back to *a* and "fix" any future tag
  (:func:`substitution_forgery`).
* :class:`MerkleIncrementalMac` — the hash-tree scheme: a Merkle tree
  over the blocks with a keyed MAC on the root.  Updates cost
  **O(log n)**, and the same attack fails because tag differences are
  not position-local XORs.

Both are *integrity-only* tools over block sequences — study objects
for why the main library pairs integrity with encryption (RPC mode)
instead.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.blockcipher import AesCipher
from repro.errors import IntegrityError

__all__ = [
    "XorIncrementalMac",
    "MerkleIncrementalMac",
    "ObservedUpdatePair",
    "substitution_forgery",
]

_BLOCK_BYTES = 8


def _check_block(block: bytes) -> bytes:
    if len(block) != _BLOCK_BYTES:
        raise IntegrityError(
            f"MAC blocks are {_BLOCK_BYTES} bytes, got {len(block)}"
        )
    return block


class XorIncrementalMac:
    """The XOR incremental MAC (replace-updates in O(1)).

    ``tag(M) = XOR_i F_k(i || m_i)`` with ``F_k`` = AES.  Replacing
    block *i* updates the tag with two PRF calls.  Deliberately
    reproduces the scheme's substitution weakness — do not use for
    anything but study.
    """

    def __init__(self, key: bytes):
        self._cipher = AesCipher(key)

    def _term(self, index: int, block: bytes) -> bytes:
        material = index.to_bytes(8, "big") + _check_block(block)
        return self._cipher.encrypt_block(material)

    def tag(self, blocks: list[bytes]) -> bytes:
        """MAC the whole block sequence (XOR of per-position PRF terms)."""
        out = bytes(16)
        for index, block in enumerate(blocks):
            term = self._term(index, block)
            out = bytes(a ^ b for a, b in zip(out, term))
        return out

    def update(self, tag: bytes, index: int, old: bytes,
               new: bytes) -> bytes:
        """O(1) replace-update: XOR out the old term, XOR in the new."""
        delta = bytes(
            a ^ b for a, b in zip(self._term(index, old),
                                  self._term(index, new))
        )
        return bytes(a ^ b for a, b in zip(tag, delta))

    def verify(self, blocks: list[bytes], tag: bytes) -> None:
        """Recompute and compare; raises IntegrityError on mismatch."""
        if self.tag(blocks) != tag:
            raise IntegrityError("XOR MAC verification failed")


class ObservedUpdatePair:
    """What a curious server learns from one replace-update: the two
    tags bracketing it plus the (position, ciphertext-block) values —
    all of which cross the wire."""

    def __init__(self, index: int, old_block: bytes, new_block: bytes,
                 old_tag: bytes, new_tag: bytes):
        self.index = index
        self.old_block = old_block
        self.new_block = new_block
        #: F(i, old) XOR F(i, new) — recovered without knowing the key!
        self.term_delta = bytes(
            a ^ b for a, b in zip(old_tag, new_tag)
        )


def substitution_forgery(
    blocks: list[bytes],
    tag: bytes,
    observed: ObservedUpdatePair,
) -> tuple[list[bytes], bytes]:
    """The substitution attack against :class:`XorIncrementalMac`.

    Given a current ``(blocks, tag)`` pair in which position
    ``observed.index`` holds ``observed.new_block``, substitute the
    *old* block back and emit the forged tag — using only values the
    server observed, never the key.
    """
    index = observed.index
    if blocks[index] != observed.new_block:
        raise IntegrityError(
            "forgery requires the observed new block at the position"
        )
    forged_blocks = list(blocks)
    forged_blocks[index] = observed.old_block
    forged_tag = bytes(a ^ b for a, b in zip(tag, observed.term_delta))
    return forged_blocks, forged_tag


class MerkleIncrementalMac:
    """Hash-tree incremental MAC: O(log n) updates, substitution-proof.

    A binary Merkle tree over the blocks (position-bound leaf hashes),
    with the root authenticated by HMAC-SHA256.  Kept simple: the tree
    supports ``replace`` on a fixed-length block sequence, which is the
    exact setting of the substitution-attack comparison.
    """

    def __init__(self, key: bytes, blocks: list[bytes]):
        self._key = key
        self._n = len(blocks)
        self._levels: list[list[bytes]] = []
        leaves = [
            self._leaf(i, block) for i, block in enumerate(blocks)
        ]
        self._levels.append(leaves)
        while len(self._levels[-1]) > 1:
            prev = self._levels[-1]
            self._levels.append([
                self._node(prev[i], prev[i + 1] if i + 1 < len(prev)
                           else prev[i])
                for i in range(0, len(prev), 2)
            ])

    def _leaf(self, index: int, block: bytes) -> bytes:
        return hashlib.sha256(
            b"leaf" + index.to_bytes(8, "big") + _check_block(block)
        ).digest()

    def _node(self, left: bytes, right: bytes) -> bytes:
        return hashlib.sha256(b"node" + left + right).digest()

    @property
    def root(self) -> bytes:
        if not self._levels[0]:
            return hashlib.sha256(b"empty").digest()
        return self._levels[-1][0]

    def tag(self) -> bytes:
        """The MAC: HMAC over the Merkle root (plus the length)."""
        return hmac.new(
            self._key,
            self.root + self._n.to_bytes(8, "big"),
            hashlib.sha256,
        ).digest()

    def replace(self, index: int, new_block: bytes) -> bytes:
        """O(log n): rehash the leaf-to-root path; return the new tag."""
        if not 0 <= index < self._n:
            raise IndexError(f"block index {index} out of range")
        self._levels[0][index] = self._leaf(index, new_block)
        pos = index
        for level in range(len(self._levels) - 1):
            parent = pos // 2
            row = self._levels[level]
            left = row[2 * parent]
            right = (
                row[2 * parent + 1]
                if 2 * parent + 1 < len(row) else row[2 * parent]
            )
            self._levels[level + 1][parent] = self._node(left, right)
            pos = parent
        return self.tag()

    @classmethod
    def verify(cls, key: bytes, blocks: list[bytes], tag: bytes) -> None:
        if not hmac.compare_digest(cls(key, blocks).tag(), tag):
            raise IntegrityError("hash-tree MAC verification failed")
