"""Operational transformation for the delta language.

The real 2011 Google Documents server *merged* concurrent edits rather
than rejecting them — the ``contentFromServerHash`` machinery the paper
reverse-engineered is the client side of that merge.  This module
implements the server side: classic operational transformation over the
``=n / +str / -n`` language.

:func:`transform` rewrites delta ``a`` so it applies *after* a
concurrent delta ``b`` (both originally based on the same document),
preserving ``a``'s intent.  It satisfies the convergence property TP1::

    b.then(transform(a, b, "right")) == a.then(transform(b, a, "left"))

i.e. both interleavings produce the same document (property-tested in
``tests/property/test_prop_ot.py``).  ``priority`` breaks the tie when
both deltas insert at the same spot: the "left" delta's insertion ends
up first.

Used by ``GDocsServer(merge_concurrent=True)`` to reproduce merging
collaboration — which works transparently for plaintext clients,
partially for rECB ciphertext (the server can merge record-aligned
cdeltas it cannot read!), and is structurally incompatible with RPC's
document-wide checksum (each client's checksum patch knows nothing of
the other's edits) — quantifying SVII-A's "partially functional"
collaboration story from the other side.
"""

from __future__ import annotations

from repro.core.delta import Delete, Delta, DeltaOp, Insert, Retain

__all__ = ["transform", "compose"]


class _OpStream:
    """Consumable view of a delta's ops, splitting retains/deletes."""

    def __init__(self, delta: Delta):
        self._ops = list(delta.ops)
        self._index = 0
        self._offset = 0  # consumed prefix of the current retain/delete

    def peek(self) -> DeltaOp | None:
        if self._index >= len(self._ops):
            return None
        op = self._ops[self._index]
        if isinstance(op, Insert):
            return op
        remaining = op.count - self._offset
        return type(op)(remaining)

    def take_insert(self) -> Insert:
        op = self._ops[self._index]
        assert isinstance(op, Insert)
        self._index += 1
        return op

    def consume(self, count: int) -> None:
        """Consume ``count`` units of the current retain/delete."""
        op = self._ops[self._index]
        assert isinstance(op, (Retain, Delete))
        self._offset += count
        if self._offset == op.count:
            self._index += 1
            self._offset = 0
        elif self._offset > op.count:
            raise AssertionError("over-consumed an op")

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._ops)


def _emit(out: list[DeltaOp], op_type: type, amount) -> None:
    """Append, merging with a preceding op of the same type."""
    if op_type is Insert:
        if out and isinstance(out[-1], Insert):
            out[-1] = Insert(out[-1].text + amount)
        elif amount:
            out.append(Insert(amount))
        return
    if amount <= 0:
        return
    if out and isinstance(out[-1], op_type):
        out[-1] = op_type(out[-1].count + amount)
    else:
        out.append(op_type(amount))


def transform(a: Delta, b: Delta, priority: str = "left") -> Delta:
    """Rewrite ``a`` to apply after concurrent ``b``.

    ``priority`` is ``"left"`` when ``a``'s insertions should land
    before ``b``'s at equal positions, ``"right"`` otherwise.
    """
    if priority not in ("left", "right"):
        raise ValueError(f"priority must be left/right, got {priority!r}")
    sa = _OpStream(a)
    sb = _OpStream(b)
    out: list[DeltaOp] = []

    while True:
        op_a = sa.peek()
        op_b = sb.peek()
        if op_a is None and op_b is None:
            break

        if isinstance(op_a, Insert) and isinstance(op_b, Insert):
            if priority == "left":
                _emit(out, Insert, sa.take_insert().text)
            else:
                _emit(out, Retain, len(sb.take_insert().text))
            continue
        if isinstance(op_a, Insert):
            _emit(out, Insert, sa.take_insert().text)
            continue
        if isinstance(op_b, Insert):
            # text b inserted: a must step over it
            _emit(out, Retain, len(sb.take_insert().text))
            continue

        if op_a is None:
            # a implicitly retains the rest of the document
            if isinstance(op_b, Retain):
                _emit(out, Retain, op_b.count)
            sb.consume(op_b.count)
            continue
        if op_b is None:
            # b implicitly retains: a's op passes through
            if isinstance(op_a, Retain):
                _emit(out, Retain, op_a.count)
            else:
                _emit(out, Delete, op_a.count)
            sa.consume(op_a.count)
            continue

        count = min(op_a.count, op_b.count)
        if isinstance(op_a, Retain) and isinstance(op_b, Retain):
            _emit(out, Retain, count)
        elif isinstance(op_a, Retain) and isinstance(op_b, Delete):
            pass  # those characters no longer exist
        elif isinstance(op_a, Delete) and isinstance(op_b, Retain):
            _emit(out, Delete, count)
        else:  # both deleted the same characters
            pass
        sa.consume(count)
        sb.consume(count)

    # drop a trailing pure retain (canonical form)
    while out and isinstance(out[-1], Retain):
        out.pop()
    return Delta(out)


def compose(first: Delta, second: Delta) -> Delta:
    """One delta equivalent to applying ``first`` then ``second``.

    Used by the merging server to fold a chain of concurrent updates
    into a single transform target.
    """
    sf = _OpStream(first)
    ss = _OpStream(second)
    out: list[DeltaOp] = []

    while True:
        op_f = sf.peek()
        op_s = ss.peek()
        if op_f is None and op_s is None:
            break

        # second's deletes/retains consume FIRST'S OUTPUT; second's
        # inserts are independent of it.
        if isinstance(op_s, Insert):
            _emit(out, Insert, ss.take_insert().text)
            continue
        if op_f is None:
            if op_s is None:
                break
            # first implicitly retains source; second consumes it
            if isinstance(op_s, Retain):
                _emit(out, Retain, op_s.count)
            else:
                _emit(out, Delete, op_s.count)
            ss.consume(op_s.count)
            continue
        if isinstance(op_f, Delete):
            # deleted source chars never reach second
            _emit(out, Delete, op_f.count)
            sf.consume(op_f.count)
            continue
        if op_s is None:
            # second implicitly retains the rest of first's output
            if isinstance(op_f, Retain):
                _emit(out, Retain, op_f.count)
            else:
                _emit(out, Insert, op_f.text)
                sf.take_insert()
                continue
            sf.consume(op_f.count)
            continue

        if isinstance(op_f, Insert):
            produced = len(op_f.text)
            count = min(produced, op_s.count)
            if isinstance(op_s, Retain):
                _emit(out, Insert, op_f.text[:count])
            # else: second deleted text first inserted -> emit nothing
            remainder = op_f.text[count:]
            sf.take_insert()
            if remainder:
                # push back the un-consumed tail of the insert
                sf._ops.insert(sf._index, Insert(remainder))
            ss.consume(count)
            continue

        # first retains: passes source through to second
        count = min(op_f.count, op_s.count)
        if isinstance(op_s, Retain):
            _emit(out, Retain, count)
        else:
            _emit(out, Delete, count)
        sf.consume(count)
        ss.consume(count)

    while out and isinstance(out[-1], Retain):
        out.pop()
    return Delta(out)
