"""Append-only hash-chained audit trail over save acknowledgements.

RPC's checksum binds one revision's ciphertext to itself; nothing in
the single-document stack binds revision *N* to revision *N-1*, which
is exactly the gap a rollback-replaying provider exploits (the paper's
freshness discussion, SVI; see also the incremental-authenticated-
update line of work in PAPERS.md).  This module upgrades integrity
from per-revision to *cross-revision*: every acknowledged save commits

    link_N = H(link_{N-1} | rev_N | ciphertext_hash_N)

so the whole history collapses into one head link.  A client that
remembers ``(rev, link)`` for the last save it witnessed can later
detect

* **rollback** — the stored ciphertext no longer matches the audited
  head hash (or the head revision trails the trusted one);
* **history forks** — a forged chain that is internally consistent but
  disagrees with the trusted link at the remembered revision.

The module is deliberately pure — hashing and list algebra only.  It
must never import ``repro.services``: the *server* half of the audit
trail (where links are minted and served) lives in
``repro.services.catalog``, and a core integrity primitive that knew
about providers would invert the trust boundary.
``tools/layering_check.py`` enforces the direction.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = [
    "GENESIS_LINK",
    "AuditEntry",
    "AuditChain",
    "link_hash",
    "verify_entries",
    "encode_entries",
    "decode_entries",
]

#: the link "before" the first audited save (a fixed, unkeyed anchor:
#: the chain's security comes from the client remembering the head,
#: not from a secret genesis)
GENESIS_LINK = "0" * 64


def link_hash(prev_link: str, rev: int, ciphertext_hash: str) -> str:
    """``H(prev_link | rev | ciphertext_hash)`` — one chain step."""
    payload = f"{prev_link}|{rev}|{ciphertext_hash}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


@dataclass(frozen=True)
class AuditEntry:
    """One audited save: the revision it produced, the hash of the
    ciphertext the server stored, and the chain link over both."""

    rev: int
    ciphertext_hash: str
    link: str


class AuditChain:
    """The append-only chain, as the minting side maintains it."""

    def __init__(self) -> None:
        self._entries: list[AuditEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> tuple[AuditEntry, ...]:
        return tuple(self._entries)

    @property
    def head(self) -> AuditEntry | None:
        """The newest entry (None while the chain is empty)."""
        return self._entries[-1] if self._entries else None

    def append(self, rev: int, ciphertext_hash: str) -> AuditEntry:
        """Mint the link for an acknowledged save and append it.

        Revisions must advance strictly — an append that rewinds or
        repeats is a caller bug (replays are the caller's job to
        filter; the chain itself never rewrites).
        """
        head = self.head
        if head is not None and rev <= head.rev:
            raise ValueError(
                f"audit chain is append-only: rev {rev} after {head.rev}"
            )
        prev = head.link if head is not None else GENESIS_LINK
        entry = AuditEntry(rev, ciphertext_hash, link_hash(
            prev, rev, ciphertext_hash))
        self._entries.append(entry)
        return entry


def verify_entries(entries: list[AuditEntry] | tuple[AuditEntry, ...]
                   ) -> list[str]:
    """Self-consistency problems in ``entries`` ([] when clean).

    Checks every link recomputes from its predecessor (genesis-rooted)
    and that revisions advance strictly.  Self-consistency alone does
    NOT rule out a wholesale forgery — an adversary can recompute a
    perfectly consistent chain over rolled-back content — which is why
    the client also compares the chain against its remembered
    ``(rev, link)`` trust anchor.
    """
    problems: list[str] = []
    prev_link = GENESIS_LINK
    prev_rev = -1
    for i, entry in enumerate(entries):
        if entry.rev <= prev_rev:
            problems.append(
                f"entry {i}: rev {entry.rev} does not advance past "
                f"{prev_rev}")
        want = link_hash(prev_link, entry.rev, entry.ciphertext_hash)
        if entry.link != want:
            problems.append(
                f"entry {i}: link does not recompute from its "
                f"predecessor (rev {entry.rev})")
        prev_link = entry.link
        prev_rev = entry.rev
    return problems


def encode_entries(entries) -> str:
    """Wire form of a chain: ``rev:hash:link`` triples joined by ``;``
    (all three components are decimal/hex — no escaping needed)."""
    return ";".join(
        f"{e.rev}:{e.ciphertext_hash}:{e.link}" for e in entries
    )


def decode_entries(text: str) -> list[AuditEntry]:
    """Parse :func:`encode_entries` output (raises ValueError on a
    malformed triple — a garbled chain is a verification failure, not
    a crash, so callers surface it as an alert)."""
    entries: list[AuditEntry] = []
    if not text:
        return entries
    for part in text.split(";"):
        rev_text, chash, link = part.split(":")
        entries.append(AuditEntry(int(rev_text), chash, link))
    return entries
