"""Core library: the paper's incremental-encryption contribution.

Public surface: the delta language (:class:`Delta`), key derivation
(:class:`KeyMaterial`), and encrypted documents
(:func:`create_document`, :func:`load_document`,
:class:`RecbDocument`, :class:`RpcDocument`).
"""

from repro.core.blocks import MAX_BLOCK_CHARS, PAYLOAD_BYTES, chunk_text
from repro.core.delta import (
    Delete,
    Delta,
    DeltaOp,
    Insert,
    Retain,
    SourceDelete,
    SourceEdit,
    SourceInsert,
)
from repro.core.document import (
    BlockMeta,
    EncryptedDocument,
    RecbDocument,
    RpcDocument,
    create_document,
    load_document,
)
from repro.core.incmac import (
    MerkleIncrementalMac,
    XorIncrementalMac,
    substitution_forgery,
)
from repro.core.keys import KeyMaterial
from repro.core.ot import compose, transform
from repro.core.recb import RecbCodec, RecbState
from repro.core.rpc import RpcCodec, RpcState
from repro.core.scheme import known_schemes, register_scheme, scheme_factory

__all__ = [
    "Delta",
    "DeltaOp",
    "Retain",
    "Insert",
    "Delete",
    "SourceEdit",
    "SourceInsert",
    "SourceDelete",
    "KeyMaterial",
    "BlockMeta",
    "EncryptedDocument",
    "RecbDocument",
    "RpcDocument",
    "create_document",
    "load_document",
    "RecbCodec",
    "RecbState",
    "RpcCodec",
    "RpcState",
    "chunk_text",
    "MAX_BLOCK_CHARS",
    "PAYLOAD_BYTES",
    "known_schemes",
    "register_scheme",
    "scheme_factory",
    "XorIncrementalMac",
    "MerkleIncrementalMac",
    "substitution_forgery",
    "transform",
    "compose",
]
