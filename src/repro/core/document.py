"""EncryptedDocument: the incremental-encryption engine (SV).

An :class:`EncryptedDocument` is the client-side mirror the extension
keeps of the ciphertext stored by the untrusted server.  It combines

* a scheme codec (:mod:`repro.core.recb` or :mod:`repro.core.rpc`) for
  per-block cryptography,
* a block index (:class:`repro.datastructures.IndexedSkipList` by
  default) mapping character positions to variable-length blocks, and
* the wire format (:mod:`repro.encoding.wire`) the server actually
  stores,

and exposes the scheme 4-tuple: ``create`` (Enc), ``load``/``text``
(Dec, verifying integrity when the scheme provides it), and
``apply_delta`` (IncE), which edits the ciphertext *in place* and
returns the **cdelta** — a delta over the server's stored wire string
that reproduces the same edit server-side.

How IncE stays sub-linear
-------------------------
A plaintext delta is first re-anchored into original-document
coordinates, then grouped into *clusters* of nearby edits.  Each cluster
maps to a contiguous run of blocks; only that run is re-encrypted (for
RPC, reusing the boundary nonces so neighbours stay chained), the index
run is read with one ``get_range`` walk and replaced with one ``splice``
along a single ``O(log n)`` search path — ``O(log n + cluster)`` total,
never a per-rank get/delete/insert loop — and the cdelta patches
exactly those records.  Bookkeeping records are patched as needed — for
RPC the checksum record is rewritten once per update (its running XOR
aggregates make that O(1)), which is the paper's "slightly more, but
constant, extra resources".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core import blocks
from repro.core.delta import (
    Delta,
    DeltaOp,
    Delete,
    Insert,
    Retain,
    SourceDelete,
    SourceEdit,
    SourceInsert,
)
from repro.core.keys import KeyMaterial
from repro.core.recb import RecbCodec, RecbState
from repro.core.rpc import RpcCodec, RpcState
from repro.core.scheme import register_scheme, scheme_factory
from repro.crypto.random import RandomSource, SystemRandomSource
from repro.datastructures import BlockIndex, IndexedSkipList
from repro.encoding.wire import (
    RECORD_CHARS,
    DocumentHeader,
    Record,
    encode_records,
    parse_document,
)
from repro.errors import (
    CiphertextFormatError,
    DeltaApplicationError,
    PasswordError,
)
from repro.obs import counter, default_registry, histogram

_DELTAS = counter("doc.deltas")
_CLUSTERS = counter("doc.clusters")
_CLUSTERS_PER_DELTA = histogram("doc.clusters_per_delta")
#: blocks freshly encrypted by IncE — bounded by O(cluster) per delta
_BLOCKS_REENCRYPTED = counter("doc.blocks_reencrypted")
#: old blocks spliced out of the index and re-packed into new chunks
_BLOCKS_REPACKED = counter("doc.blocks_repacked")
_CDELTA_RECORDS = counter("doc.cdelta_records")
_CDELTA_BYTES = counter("doc.cdelta_bytes")
_FULL_REWRITES = counter("doc.full_rewrites")
_REKEYS = counter("doc.rekeys")
_APPLY_TIMER = default_registry().timer("doc.apply_delta_seconds")

__all__ = [
    "BlockMeta",
    "EncryptedDocument",
    "RecbDocument",
    "RpcDocument",
    "create_document",
    "load_document",
]


@dataclass
class BlockMeta:
    """Client-side view of one encrypted data block.

    ``record`` is None only transiently inside ``_apply_clusters``:
    freshly prepared blocks are spliced into the index before the
    (single, deferred) cipher call of the update, then patched with
    their records — nothing reads ``record`` in between.
    """

    text: str                       #: the plaintext characters in this block
    record: Record | None = None    #: the wire record currently storing them
    lead: bytes | None = None       #: RPC lead nonce (None for rECB)
    payload: bytes | None = None    #: RPC padded payload (None for rECB)


@dataclass
class _Cluster:
    """A run of nearby edits, in original-document coordinates."""

    lo: int
    hi: int
    edits: list[SourceEdit] = field(default_factory=list)


def _cluster_edits(edits: Sequence[SourceEdit], gap: int) -> list[_Cluster]:
    """Group source-coordinate edits whose spans are within ``gap``."""
    clusters: list[_Cluster] = []
    for edit in edits:
        lo = edit.pos
        hi = edit.pos + (edit.count if isinstance(edit, SourceDelete) else 0)
        if clusters and lo - clusters[-1].hi <= gap:
            last = clusters[-1]
            last.hi = max(last.hi, hi)
            last.edits.append(edit)
        else:
            clusters.append(_Cluster(lo, hi, [edit]))
    return clusters


def _apply_edits_local(text: str, edits: Sequence[SourceEdit],
                       span_start: int) -> str:
    """Apply source-coordinate ``edits`` to the local span ``text``
    (which begins at document position ``span_start``)."""
    out = text
    shift = 0
    for edit in edits:
        pos = edit.pos - span_start + shift
        if isinstance(edit, SourceInsert):
            out = out[:pos] + edit.text + out[pos:]
            shift += len(edit.text)
        else:
            out = out[:pos] + out[pos + edit.count :]
            shift -= edit.count
    return out


class EncryptedDocument(ABC):
    """Base class for ciphertext-document mirrors.

    Use the classmethods :meth:`create` / :meth:`load` (or the module
    factories :func:`create_document` / :func:`load_document`) rather
    than the constructor.
    """

    #: scheme codec class, set by subclasses
    _codec_class: type
    #: must an RPC-style chain splice always contain >= 1 block?
    _require_nonempty_span: bool
    #: rebuild the whole ciphertext when the text becomes (or is) empty?
    _full_rewrite_on_empty: bool
    #: encrypt all of an update's spans (and its checksum) in one
    #: deferred cipher call.  ECB + deterministic nonce draws make the
    #: output byte-identical to per-span calls; False forces the
    #: per-span reference path (the fuzz differential flips this)
    _coalesce_ciphers: bool = True

    def __init__(
        self,
        key_material: KeyMaterial,
        block_chars: int = blocks.MAX_BLOCK_CHARS,
        rng: RandomSource | None = None,
        index_factory: Callable[[], BlockIndex] | None = None,
    ):
        self._keys = key_material
        self._block_chars = blocks.validate_block_chars(block_chars)
        self._rng = rng if rng is not None else SystemRandomSource()
        self._index_factory = index_factory or IndexedSkipList
        self._codec = self._codec_class(key_material.key, self._rng)
        self._header = DocumentHeader(
            scheme=self._codec.name,
            block_chars=self._block_chars,
            nonce_bits=self._codec.nonce_bits,
            salt=key_material.salt,
        )
        self._index: BlockIndex = self._index_factory()
        self._state: object = None
        self._prefix: list[Record] = []
        self._suffix: list[Record] = []

    # -- construction -----------------------------------------------------

    @classmethod
    def create(
        cls,
        text: str,
        password: str | None = None,
        key_material: KeyMaterial | None = None,
        block_chars: int = blocks.MAX_BLOCK_CHARS,
        rng: RandomSource | None = None,
        index_factory: Callable[[], BlockIndex] | None = None,
    ) -> "EncryptedDocument":
        """Enc: encrypt ``text`` into a fresh document."""
        keys = _resolve_keys(password, key_material, rng)
        doc = cls(keys, block_chars, rng, index_factory)
        doc._build_fresh(text)
        return doc

    @classmethod
    def load(
        cls,
        wire_text: str,
        password: str | None = None,
        key_material: KeyMaterial | None = None,
        rng: RandomSource | None = None,
        index_factory: Callable[[], BlockIndex] | None = None,
    ) -> "EncryptedDocument":
        """Dec: parse, verify, and decrypt a stored wire document."""
        header, records = parse_document(wire_text)
        if header.scheme != cls._codec_class.name:
            raise CiphertextFormatError(
                f"document uses scheme {header.scheme!r}, "
                f"expected {cls._codec_class.name!r}"
            )
        if key_material is None:
            if password is None:
                raise PasswordError("a password or key material is required")
            key_material = KeyMaterial.from_password(password, salt=header.salt)
        doc = cls(key_material, header.block_chars, rng, index_factory)
        doc._load_records(records)
        return doc

    def _build_fresh(self, text: str, version: int = 0) -> None:
        """(Re)initialize all ciphertext state from plaintext."""
        chunks = blocks.chunk_text(text, self._block_chars)
        self._state = self._codec.fresh_state()
        if hasattr(self._state, "version"):
            self._state.version = version
        self._index = self._index_factory()
        metas = self._bulk_encrypt(chunks)
        self._index.extend((meta, len(meta.text)) for meta in metas)
        first_lead = metas[0].lead if metas else None
        self._prefix = self._codec.prefix(self._state, first_lead)
        self._suffix = self._codec.suffix(self._state)

    # -- subclass hooks --------------------------------------------------

    @abstractmethod
    def _bulk_encrypt(self, chunks: list[str]) -> list[BlockMeta]:
        """Encrypt every chunk of a brand-new document."""

    @abstractmethod
    def _load_records(self, records: list[Record]) -> None:
        """Parse and verify stored records, populating index and state."""

    @abstractmethod
    def _prepare_span(
        self,
        old_metas: list[BlockMeta],
        chunks: list[str],
        next_lead: bytes | None,
    ) -> tuple[bytes, list[BlockMeta]]:
        """Stage the replacement of a contiguous block run.

        Draws nonces, updates scheme state, and returns ``(plain,
        metas)``: the span's concatenated pre-cipher block images and
        its new metas *without records* — the caller runs the cipher
        (batched across every span of the update) and patches each
        meta's record from the output.
        """

    # -- inspection --------------------------------------------------------

    @property
    def scheme(self) -> str:
        return self._codec.name

    @property
    def supports_integrity(self) -> bool:
        return self._codec.supports_integrity

    @property
    def block_chars(self) -> int:
        return self._block_chars

    @property
    def key_material(self) -> KeyMaterial:
        return self._keys

    @property
    def char_length(self) -> int:
        """Plaintext length in characters."""
        return self._index.total_chars

    @property
    def block_count(self) -> int:
        """Number of data blocks."""
        return len(self._index)

    @property
    def text(self) -> str:
        """Dec: the current plaintext."""
        return "".join(meta.text for meta in self._index.values())

    def wire(self) -> str:
        """The full stored form: header + bookkeeping + data records."""
        records = (
            self._prefix
            + [meta.record for meta in self._index.values()]
            + self._suffix
        )
        return self._header.encode() + encode_records(records)

    def wire_length(self) -> int:
        """Length of :meth:`wire` without materializing it."""
        n_records = (
            len(self._prefix) + len(self._index) + len(self._suffix)
        )
        return self._header.wire_length + n_records * RECORD_CHARS

    def blowup(self) -> float:
        """Stored characters per plaintext character (Fig. 7 metric)."""
        if self.char_length == 0:
            return float("inf")
        return self.wire_length() / self.char_length

    def block_fill_histogram(self) -> dict[int, int]:
        """Histogram of block fill (chars per block) — fragmentation view."""
        hist: dict[int, int] = {}
        for _, width in self._index.items():
            hist[width] = hist.get(width, 0) + 1
        return hist

    # -- IncE ---------------------------------------------------------------

    def apply_delta(self, delta: Delta) -> Delta:
        """IncE: apply a plaintext delta; return the ciphertext delta.

        The returned cdelta, applied by the *server* to its stored wire
        string, produces exactly this mirror's new :meth:`wire`.
        """
        with _APPLY_TIMER.time():
            cdelta = self._apply_delta_inner(delta)
        _DELTAS.inc()
        inserted = sum(
            len(op.text) for op in cdelta.ops if isinstance(op, Insert)
        )
        _CDELTA_RECORDS.inc(inserted // RECORD_CHARS)
        _CDELTA_BYTES.inc(inserted)
        return cdelta

    def _apply_delta_inner(self, delta: Delta) -> Delta:
        consumed = sum(
            op.count for op in delta.ops if isinstance(op, (Retain, Delete))
        )
        if consumed > self.char_length:
            raise DeltaApplicationError(
                f"delta consumes {consumed} chars, document has "
                f"{self.char_length}"
            )
        for op in delta.ops:
            if isinstance(op, Insert):
                blocks.validate_text(op.text)

        edits = delta.source_edits()
        if not edits:
            return Delta(())

        new_length = self.char_length + delta.length_change
        if self._full_rewrite_on_empty and (
            self.char_length == 0 or new_length == 0
        ):
            return self._rewrite(delta.apply(self.text))

        return self._apply_clusters(edits)

    def insert(self, pos: int, text: str) -> Delta:
        """IncE sugar: insert ``text`` at ``pos``; returns the cdelta."""
        return self.apply_delta(Delta.insertion(pos, text))

    def delete(self, pos: int, count: int) -> Delta:
        """IncE sugar: delete ``count`` chars at ``pos``; returns the cdelta."""
        return self.apply_delta(Delta.deletion(pos, count))

    def replace(self, pos: int, count: int, text: str) -> Delta:
        """IncE sugar: replace a range; returns the cdelta."""
        return self.apply_delta(Delta.replacement(pos, count, text))

    def rekey(
        self,
        password: str | None = None,
        key_material: KeyMaterial | None = None,
        rng: RandomSource | None = None,
    ) -> Delta:
        """Re-encrypt the whole document under new key material.

        Used when a per-document password must change (a collaborator is
        revoked, a password leaked).  Necessarily a full re-encryption —
        every block is bound to the old key — so the returned cdelta
        replaces the entire stored document, header included (the salt
        changes).  Documents opened with the old password afterwards
        fail.
        """
        _REKEYS.inc()
        new_keys = _resolve_keys(password, key_material,
                                 rng if rng is not None else self._rng)
        old_length = self.wire_length()
        text = self.text
        next_version = getattr(self._state, "version", -1) + 1
        self._keys = new_keys
        self._codec = self._codec_class(new_keys.key, self._rng)
        self._header = DocumentHeader(
            scheme=self._codec.name,
            block_chars=self._block_chars,
            nonce_bits=self._codec.nonce_bits,
            salt=new_keys.salt,
        )
        self._build_fresh(text, version=next_version)
        ops: list[DeltaOp] = []
        if old_length:
            ops.append(Delete(old_length))
        ops.append(Insert(self.wire()))
        return Delta(ops)

    # -- internals -----------------------------------------------------------

    def _data_area_start(self) -> int:
        return self._header.wire_length + len(self._prefix) * RECORD_CHARS

    def _rewrite(self, new_text: str) -> Delta:
        """Full-rewrite fallback (empty-document transitions)."""
        _FULL_REWRITES.inc()
        old_area = self.wire_length() - self._header.wire_length
        next_version = getattr(self._state, "version", -1) + 1
        self._build_fresh(new_text, version=next_version)
        records = (
            self._prefix
            + [meta.record for meta in self._index.values()]
            + self._suffix
        )
        ops: list[DeltaOp] = [Retain(self._header.wire_length)]
        if old_area:
            ops.append(Delete(old_area))
        ops.append(Insert(encode_records(records)))
        return Delta(ops)

    def _apply_clusters(self, edits: list[SourceEdit]) -> Delta:
        """Re-encrypt every edited cluster with ONE deferred cipher call.

        Two phases.  Phase 1 walks the clusters exactly as before —
        locate the span, rewrite its text, draw nonces, update scheme
        state, splice the index — but only *stages* each span's
        pre-cipher block images (``_prepare_span``).  Phase 2 encrypts
        the concatenation of every staged image (plus the checksum
        image, for schemes that keep one) in a single ``encrypt_many``,
        so a coalesced multi-span burst crosses the batched-AES
        threshold that per-span calls never reached, then patches the
        records back into the already-spliced metas and builds the
        cdelta.  ECB independence plus the buffered DRBG's
        draw-order-only dependence make the output bytes identical to
        the per-span path (``_coalesce_ciphers = False``, kept as the
        reference for the fuzz differential).
        """
        gap = max(16, 2 * self._block_chars)
        clusters = _cluster_edits(edits, gap)
        _CLUSTERS.inc(len(clusters))
        _CLUSTERS_PER_DELTA.observe(len(clusters))

        base = self._data_area_start()
        old_data_count = len(self._index)
        rank_shift = 0  # current rank - old rank, left of the frontier
        char_shift = 0  # current char pos - old char pos, ditto

        #: per cluster: (old-rank span, metas awaiting records)
        staged: list[tuple[int, int, list[BlockMeta]]] = []
        plain_parts: list[bytes] = []

        for cluster in clusters:
            ra, rb, old_metas = self._locate_span(cluster, char_shift)
            span_text = "".join(meta.text for meta in old_metas)
            span_start = (
                self._index.char_start(ra) - char_shift
                if len(self._index)
                else 0
            )
            new_text = _apply_edits_local(span_text, cluster.edits, span_start)
            chunks = blocks.chunk_text(new_text, self._block_chars)

            if not chunks and self._require_nonempty_span:
                ra, rb, old_metas, new_text = self._absorb_neighbor(
                    ra, rb, old_metas
                )
                span_text = "".join(meta.text for meta in old_metas)
                chunks = blocks.chunk_text(new_text, self._block_chars)

            next_lead = (
                self._index.get(rb)[0].lead if rb < len(self._index) else None
            )
            plain, new_metas = self._prepare_span(old_metas, chunks, next_lead)
            _BLOCKS_REENCRYPTED.inc(len(new_metas))
            _BLOCKS_REPACKED.inc(rb - ra)

            self._index.splice(
                ra, rb, ((meta, len(meta.text)) for meta in new_metas)
            )

            plain_parts.append(plain)
            staged.append((ra - rank_shift, rb - rank_shift, new_metas))
            rank_shift += len(new_metas) - (rb - ra)
            char_shift += len(new_text) - len(span_text)

        suffix_plain = b""
        if self._suffix:
            if hasattr(self._state, "version"):
                self._state.version += 1
            suffix_plain = self._codec.suffix_plain(self._state)

        if self._coalesce_ciphers:
            blob = self._codec.encrypt_blob(
                b"".join(plain_parts) + suffix_plain
            )
        else:
            blob = b"".join(
                self._codec.encrypt_blob(part) for part in plain_parts if part
            )
            if suffix_plain:
                blob += self._codec.encrypt_blob(suffix_plain)

        off = 0
        ops: list[DeltaOp] = []
        cursor = 0      # old-wire characters already consumed
        for ra_old, rb_old, new_metas in staged:
            for meta in new_metas:
                meta.record = Record(
                    char_count=len(meta.text),
                    block=blob[off : off + 16],
                )
                off += 16
            pos_old = base + ra_old * RECORD_CHARS
            if pos_old > cursor:
                ops.append(Retain(pos_old - cursor))
            if rb_old > ra_old:
                ops.append(Delete((rb_old - ra_old) * RECORD_CHARS))
            if new_metas:
                ops.append(
                    Insert(encode_records([m.record for m in new_metas]))
                )
            cursor = base + rb_old * RECORD_CHARS

        if self._suffix:
            new_suffix = [Record(char_count=0, block=blob[off : off + 16])]
            off += 16
            pos_old = base + old_data_count * RECORD_CHARS
            if pos_old > cursor:
                ops.append(Retain(pos_old - cursor))
            ops.append(Delete(len(self._suffix) * RECORD_CHARS))
            ops.append(Insert(encode_records(new_suffix)))
            self._suffix = new_suffix

        return Delta(ops)

    def _locate_span(
        self, cluster: _Cluster, char_shift: int
    ) -> tuple[int, int, list[BlockMeta]]:
        """Map a cluster's char span to the current block-rank range,
        returning the run's metas from one ``get_range`` walk instead of
        a per-rank ``get`` loop."""
        size = len(self._index)
        if size == 0:
            return 0, 0, []
        if cluster.lo == cluster.hi:  # pure insertion
            pos = cluster.lo + char_shift
            if pos >= self._index.total_chars:
                ra = size - 1
            else:
                ra, _ = self._index.find_char(pos)
            rb = ra + 1
        else:
            ra, _ = self._index.find_char(cluster.lo + char_shift)
            rb_block, _ = self._index.find_char(cluster.hi - 1 + char_shift)
            rb = rb_block + 1
        metas = [value for value, _ in self._index.get_range(ra, rb)]
        return ra, rb, metas

    def _absorb_neighbor(
        self, ra: int, rb: int, old_metas: list[BlockMeta]
    ) -> tuple[int, int, list[BlockMeta], str]:
        """Extend an emptied span over one untouched neighbour so a chain
        splice always carries at least one block."""
        if rb < len(self._index):
            neighbor = self._index.get(rb)[0]
            return ra, rb + 1, old_metas + [neighbor], neighbor.text
        if ra > 0:
            neighbor = self._index.get(ra - 1)[0]
            return ra - 1, rb, [neighbor] + old_metas, neighbor.text
        raise AssertionError(
            "document would become empty; handled by the rewrite path"
        )


class RecbDocument(EncryptedDocument):
    """Confidentiality-only document: rECB mode (SV-B)."""

    _codec_class = RecbCodec
    _require_nonempty_span = False
    _full_rewrite_on_empty = False

    _codec: RecbCodec
    _state: RecbState

    def _bulk_encrypt(self, chunks: list[str]) -> list[BlockMeta]:
        records = self._codec.encrypt_chunks(self._state, chunks)
        return [
            BlockMeta(text=chunk, record=record)
            for chunk, record in zip(chunks, records)
        ]

    def _load_records(self, records: list[Record]) -> None:
        if not records:
            raise CiphertextFormatError("rECB document missing its r0 record")
        self._state = self._codec.parse_prefix(records[0])
        self._prefix = [records[0]]
        self._suffix = []
        texts = self._codec.decrypt_records(self._state, records[1:])
        self._index = self._index_factory()
        self._index.extend(
            (BlockMeta(text=chunk, record=record), len(chunk))
            for chunk, record in zip(texts, records[1:])
        )

    def _prepare_span(
        self,
        old_metas: list[BlockMeta],
        chunks: list[str],
        next_lead: bytes | None,
    ) -> tuple[bytes, list[BlockMeta]]:
        plain = self._codec.prepare_chunks(self._state, chunks)
        return plain, [BlockMeta(text=chunk) for chunk in chunks]

    def decrypt_char(self, index: int) -> str:
        """Random access: decrypt the single block holding character
        ``index`` (the 2-record access pattern described in SV-B)."""
        rank, offset = self._index.find_char(index)
        meta = self._index.get(rank)[0]
        chunk = self._codec.decrypt_record(self._state, meta.record)
        return chunk[offset]

    def decrypt_range(self, start: int, end: int) -> str:
        """Random access to ``[start, end)``: decrypt only the blocks
        that cover the range.

        This is rECB's structural advantage over RPC — a reader can pull
        one paragraph of a huge document by touching O(range/b) records
        (plus the r0 record), never the whole chain.
        """
        if not 0 <= start <= end <= self.char_length:
            raise IndexError(
                f"range [{start}, {end}) outside document of "
                f"{self.char_length} chars"
            )
        if start == end:
            return ""
        first, offset = self._index.find_char(start)
        last, _ = self._index.find_char(end - 1)
        pieces = [
            self._codec.decrypt_record(self._state, meta.record)
            for meta, _ in self._index.get_range(first, last + 1)
        ]
        text = "".join(pieces)
        return text[offset : offset + (end - start)]


class RpcDocument(EncryptedDocument):
    """Confidentiality-and-integrity document: RPC mode (SV-B)."""

    _codec_class = RpcCodec
    _require_nonempty_span = True
    _full_rewrite_on_empty = True

    _codec: RpcCodec
    _state: RpcState

    def _bulk_encrypt(self, chunks: list[str]) -> list[BlockMeta]:
        if not chunks:
            return []
        first_lead = self._rng.token(len(self._state.r0))
        triples = self._codec.encrypt_span(
            self._state, chunks, first_lead, self._state.r0
        )
        metas: list[BlockMeta] = []
        for chunk, (record, lead, payload) in zip(chunks, triples):
            self._state.add_block(lead, payload, len(chunk))
            metas.append(
                BlockMeta(text=chunk, record=record, lead=lead, payload=payload)
            )
        return metas

    def _load_records(self, records: list[Record]) -> None:
        state, data = self._codec.load(records)
        self._state = state
        self._prefix = [records[0]]
        self._suffix = [records[-1]]
        self._index = self._index_factory()
        self._index.extend(
            (BlockMeta(text=chunk, record=record, lead=lead,
                       payload=payload), len(chunk))
            for record, (chunk, lead, payload) in zip(records[1:-1], data)
        )

    def _prepare_span(
        self,
        old_metas: list[BlockMeta],
        chunks: list[str],
        next_lead: bytes | None,
    ) -> tuple[bytes, list[BlockMeta]]:
        assert old_metas, "RPC span replacement always covers >= 1 old block"
        assert chunks, "RPC span replacement always produces >= 1 block"
        lead_first = old_metas[0].lead
        assert lead_first is not None
        tail_last = next_lead if next_lead is not None else self._state.r0
        for meta in old_metas:
            assert meta.lead is not None and meta.payload is not None
            self._state.remove_block(meta.lead, meta.payload, len(meta.text))
        plain, leads, payloads = self._codec.prepare_span(
            chunks, lead_first, tail_last
        )
        metas: list[BlockMeta] = []
        for chunk, lead, payload in zip(chunks, leads, payloads):
            self._state.add_block(lead, payload, len(chunk))
            metas.append(BlockMeta(text=chunk, lead=lead, payload=payload))
        return plain, metas

    @property
    def version(self) -> int:
        """Monotonic update counter bound into the checksum record."""
        return self._state.version

    def verify(self) -> None:
        """Re-verify the mirror's own wire form end to end.

        Mostly a testing/diagnostic aid: tampering normally surfaces on
        :meth:`load` of the *server's* copy.
        """
        records = (
            self._prefix
            + [meta.record for meta in self._index.values()]
            + self._suffix
        )
        self._codec.load(records)


def _resolve_keys(
    password: str | None,
    key_material: KeyMaterial | None,
    rng: RandomSource | None,
) -> KeyMaterial:
    if key_material is not None:
        return key_material
    if password is None:
        raise PasswordError("a password or key material is required")
    return KeyMaterial.from_password(password, rng=rng)


def create_document(
    text: str,
    password: str | None = None,
    key_material: KeyMaterial | None = None,
    scheme: str = "recb",
    block_chars: int = blocks.MAX_BLOCK_CHARS,
    rng: RandomSource | None = None,
    index_factory: Callable[[], BlockIndex] | None = None,
) -> EncryptedDocument:
    """Encrypt ``text`` under the named scheme (factory for Enc)."""
    cls = scheme_factory(scheme)
    return cls.create(
        text,
        password=password,
        key_material=key_material,
        block_chars=block_chars,
        rng=rng,
        index_factory=index_factory,
    )


def load_document(
    wire_text: str,
    password: str | None = None,
    key_material: KeyMaterial | None = None,
    rng: RandomSource | None = None,
    index_factory: Callable[[], BlockIndex] | None = None,
) -> EncryptedDocument:
    """Load a stored wire document, dispatching on its header's scheme."""
    header, _ = parse_document(wire_text)
    cls = scheme_factory(header.scheme)
    return cls.load(
        wire_text,
        password=password,
        key_material=key_material,
        rng=rng,
        index_factory=index_factory,
    )


register_scheme("recb", RecbDocument)
register_scheme("rpc", RpcDocument)
