"""Per-document keys derived from user passwords (SII, SIV-C).

The prototype had users control security "using per-document passwords";
the document key is derived from the password with PBKDF2-HMAC-SHA256
over a per-document random salt.  The salt travels in the plaintext
document header (:class:`repro.encoding.wire.DocumentHeader`) — it is
not secret — so anyone who knows the password can open a shared
document, which is exactly the paper's sharing story (share the Google
document, share the password over another channel).

Password quality and establishment are explicitly out of the paper's
scope; iteration count is configurable and deliberately modest by
default so the test suite stays fast.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto.random import RandomSource, SystemRandomSource
from repro.errors import PasswordError

#: default PBKDF2 iteration count (kept modest; a deployment would raise it)
DEFAULT_ITERATIONS = 5000

SALT_BYTES = 10  # encodes to 16 base32 chars in the document header
KEY_BYTES = 16   # AES-128, matching the paper's 2^128 key-search claim


@dataclass(frozen=True)
class KeyMaterial:
    """A document key together with the salt that produced it."""

    key: bytes
    salt: bytes
    iterations: int = DEFAULT_ITERATIONS

    @classmethod
    def from_password(
        cls,
        password: str,
        salt: bytes | None = None,
        iterations: int = DEFAULT_ITERATIONS,
        rng: RandomSource | None = None,
    ) -> "KeyMaterial":
        """Derive key material, generating a fresh salt if none given."""
        if not password:
            raise PasswordError("password must be non-empty")
        if salt is None:
            salt = (rng or SystemRandomSource()).token(SALT_BYTES)
        key = hashlib.pbkdf2_hmac(
            "sha256", password.encode("utf-8"), salt, iterations, KEY_BYTES
        )
        return cls(key=key, salt=salt, iterations=iterations)

    def check(self, other_key: bytes) -> bool:
        """Constant-time key comparison."""
        return hmac.compare_digest(self.key, other_key)
