"""RPC mode: incremental unforgeable encryption (confidentiality + integrity).

Following SV-B, RPC mode chains neighbouring blocks with random nonces
before applying the block cipher::

    F_sk(r0 || alpha || r1), F_sk(r1 || d1 || r2), ..., F_sk(rn || dn || r0),
    F_sk(xor_{i=0..n} ri || xor_i di || xor_{i=1..n} ri)

``alpha`` marks the start, the last data block chains *back* to ``r0``
(making the chain circular, so prefix-truncation breaks it), and the
final checksum block binds the XOR of all nonces and payloads.  We also
apply the Wang–Kao–Yeh amendment [35]: the document length is folded
into the checksum payload, defeating forgeries that preserve XOR
aggregates by duplicating pairs of blocks.

Block layout (one AES block per record)::

    data:     [ lead nonce : 4 ][ pad8(chunk) : 8 ][ tail nonce : 4 ]
    start:    [ r0 : 4 ][ alpha : 8 ][ lead of first data block : 4 ]
    checksum: [ r0 xor XOR(leads) : 4 ][ XOR(payloads) xor len : 8 ]
              [ XOR(leads) : 4 ]

Nonces are 32-bit: one AES block must carry two nonces plus the 8-byte
payload field (2k + 8 = 16).  The paper quotes 64-bit nonces but that
packing cannot close for AES-128; see DESIGN.md.

Incremental updates re-encrypt a contiguous span of blocks, *reusing
the lead nonce at the left boundary and the tail nonce at the right
boundary* so neighbours stay chained without being touched, and update
the XOR aggregates incrementally (XOR is its own inverse, so removing a
block's contribution is one more XOR) — the "slightly more, but
constant, extra resources" of the paper is exactly: one checksum-record
rewrite per update.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import blocks
from repro.core.nonces import RPC_NONCE_BYTES, draw_nonces, xor_bytes
from repro.core.scheme import BlockCodec
from repro.encoding.wire import Record
from repro.errors import CiphertextFormatError, DecryptionError, IntegrityError

__all__ = ["RpcCodec", "RpcState", "ALPHA"]

#: the start-of-document marker (the paper's arbitrary symbol alpha)
ALPHA = b"\xceRPCDOC\xb1"

_ZERO_NONCE = bytes(RPC_NONCE_BYTES)
_ZERO_PAYLOAD = bytes(blocks.PAYLOAD_BYTES)


def _pack_length(length: int) -> bytes:
    return length.to_bytes(blocks.PAYLOAD_BYTES, "big")


def _pack_version(version: int) -> bytes:
    return (version & 0xFFFFFFFF).to_bytes(RPC_NONCE_BYTES, "big")


@dataclass
class RpcState:
    """Per-document RPC state: ``r0`` plus running XOR aggregates.

    The aggregates make checksum maintenance O(1) per update: adding or
    removing a block XORs its lead nonce and padded payload into/out of
    the running values.

    ``version`` is a monotonic update counter folded into the checksum
    record (a freshness extension beyond the paper: with client-side
    memory of the last version, a rolled-back document is detectable —
    see :mod:`repro.extension.freshness`).  It is XORed into the
    checksum's trailing field, so version 0 encodes exactly as the
    unversioned scheme would.
    """

    r0: bytes
    lead_xor: bytes = field(default=_ZERO_NONCE)
    payload_xor: bytes = field(default=_ZERO_PAYLOAD)
    length: int = 0
    version: int = 0

    def add_block(self, lead: bytes, payload: bytes, chars: int) -> None:
        """Fold a data block's contribution into the aggregates."""
        self.lead_xor = xor_bytes(self.lead_xor, lead)
        self.payload_xor = xor_bytes(self.payload_xor, payload)
        self.length += chars

    def remove_block(self, lead: bytes, payload: bytes, chars: int) -> None:
        """Remove a data block's contribution (XOR is self-inverse)."""
        self.lead_xor = xor_bytes(self.lead_xor, lead)
        self.payload_xor = xor_bytes(self.payload_xor, payload)
        self.length -= chars


class RpcCodec(BlockCodec):
    """Block codec for RPC mode with the length amendment."""

    name = "rpc"
    supports_integrity = True
    prefix_records = 1
    suffix_records = 1
    nonce_bits = RPC_NONCE_BYTES * 8

    # -- document bookkeeping ------------------------------------------

    def fresh_state(self) -> RpcState:
        """Draw ``r0`` and zeroed aggregates for a new document."""
        return RpcState(r0=self._rng.token(RPC_NONCE_BYTES))

    def prefix(self, state: RpcState, first_lead: bytes | None) -> list[Record]:
        """The start record ``F(r0 || alpha || first_lead)``.

        For an empty document the chain loops straight back: the start
        record's tail is ``r0`` itself.
        """
        tail = first_lead if first_lead is not None else state.r0
        block = self._cipher.encrypt_block(state.r0 + ALPHA + tail)
        return [Record(char_count=0, block=block)]

    def suffix_plain(self, state: RpcState) -> bytes:
        """The checksum record's pre-cipher block image (one AES block).

        Split out from :meth:`suffix` so a coalesced update can fold
        the checksum rewrite into the same batched cipher call as the
        data blocks — the length amendment is then paid once per
        burst, not once per keystroke.
        """
        payload = xor_bytes(state.payload_xor, _pack_length(state.length))
        trailer = xor_bytes(state.lead_xor, _pack_version(state.version))
        return xor_bytes(state.r0, state.lead_xor) + payload + trailer

    def suffix(self, state: RpcState) -> list[Record]:
        """The checksum record binding aggregates, length, and version."""
        block = self._cipher.encrypt_block(self.suffix_plain(state))
        return [Record(char_count=0, block=block)]

    # -- data records --------------------------------------------------

    def prepare_span(
        self,
        chunks: list[str],
        lead_first: bytes,
        tail_last: bytes,
    ) -> tuple[bytes, list[bytes], list[bytes]]:
        """Draw chain nonces and lay out a span's pre-cipher blocks.

        The first record's lead nonce is forced to ``lead_first`` and
        the last record's tail to ``tail_last`` so the run splices into
        an existing chain without touching its neighbours; interior
        nonces are fresh.  Returns ``(plain, leads, payloads)``; the
        caller encrypts ``plain`` (ECB, so several spans' images may
        share one batched cipher call without changing the bytes),
        slices it into records, and folds leads/payloads into the
        aggregates.
        """
        if not chunks:
            raise CiphertextFormatError("RPC span must contain >= 1 block")
        leads = [lead_first] + draw_nonces(
            self._rng, len(chunks) - 1, RPC_NONCE_BYTES
        )
        tails = leads[1:] + [tail_last]
        plain = bytearray()
        payloads: list[bytes] = []
        for lead, chunk, tail in zip(leads, chunks, tails):
            payload = blocks.pack_chars(chunk)
            payloads.append(payload)
            plain += lead + payload + tail
        return bytes(plain), leads, payloads

    def encrypt_span(
        self,
        state: RpcState,
        chunks: list[str],
        lead_first: bytes,
        tail_last: bytes,
    ) -> list[tuple[Record, bytes, bytes]]:
        """Encrypt a contiguous run of chunks into chained records.

        :meth:`prepare_span` plus the cipher call; returns ``(record,
        lead, payload)`` triples for the caller to fold into the
        aggregates.
        """
        plain, leads, payloads = self.prepare_span(
            chunks, lead_first, tail_last
        )
        encrypted = self._cipher.encrypt_many(plain)
        return [
            (
                Record(char_count=len(chunk), block=encrypted[16 * i : 16 * (i + 1)]),
                leads[i],
                payloads[i],
            )
            for i, chunk in enumerate(chunks)
        ]

    def decrypt_record(self, record: Record) -> tuple[bytes, str, bytes, bytes]:
        """Decrypt one data record into ``(lead, chunk, tail, payload)``.

        Performs only local checks; chain verification needs the whole
        document (see :meth:`load`).
        """
        plain = self._cipher.decrypt_block(record.block)
        lead = plain[:RPC_NONCE_BYTES]
        payload = plain[RPC_NONCE_BYTES : RPC_NONCE_BYTES + blocks.PAYLOAD_BYTES]
        tail = plain[RPC_NONCE_BYTES + blocks.PAYLOAD_BYTES :]
        try:
            chunk = blocks.unpack_chars(payload)
        except UnicodeDecodeError:
            raise IntegrityError(
                "data block decodes to invalid UTF-8"
            ) from None
        if len(chunk) != record.char_count:
            raise IntegrityError(
                f"record header claims {record.char_count} chars, payload "
                f"holds {len(chunk)}"
            )
        return lead, chunk, tail, payload

    # -- full-document verify-and-decrypt ---------------------------------

    def load(
        self, records: list[Record]
    ) -> tuple[RpcState, list[tuple[str, bytes, bytes]]]:
        """Verify a whole ciphertext document and decrypt it.

        ``records`` is the full record list: start record, data records,
        checksum record.  Returns the reconstructed state and, per data
        block, ``(chunk, lead, payload)``.

        Raises :class:`IntegrityError` naming the first failed check —
        start marker, chain link, circular closure, checksum aggregates,
        or the length amendment.
        """
        if len(records) < 2:
            raise CiphertextFormatError(
                "RPC document needs at least start + checksum records"
            )
        start_plain = self._cipher.decrypt_block(records[0].block)
        if start_plain[RPC_NONCE_BYTES : RPC_NONCE_BYTES + len(ALPHA)] != ALPHA:
            raise DecryptionError(
                "start marker mismatch (wrong password or tampered start "
                "record)"
            )
        r0 = start_plain[:RPC_NONCE_BYTES]
        expected_lead = start_plain[RPC_NONCE_BYTES + len(ALPHA) :]

        data_records = records[1:-1]
        state = RpcState(r0=r0)
        out: list[tuple[str, bytes, bytes]] = []
        if data_records:
            blob = self._cipher.decrypt_many(
                b"".join(r.block for r in data_records)
            )
            for i, record in enumerate(data_records):
                plain = blob[16 * i : 16 * (i + 1)]
                lead = plain[:RPC_NONCE_BYTES]
                payload = plain[RPC_NONCE_BYTES : RPC_NONCE_BYTES + blocks.PAYLOAD_BYTES]
                tail = plain[RPC_NONCE_BYTES + blocks.PAYLOAD_BYTES :]
                if lead != expected_lead:
                    raise IntegrityError(
                        f"nonce chain broken at data block {i}"
                    )
                try:
                    chunk = blocks.unpack_chars(payload)
                except UnicodeDecodeError:
                    raise IntegrityError(
                        f"data block {i} decodes to invalid UTF-8"
                    ) from None
                if len(chunk) != record.char_count:
                    raise IntegrityError(
                        f"record {i} header claims {record.char_count} "
                        f"chars, payload holds {len(chunk)}"
                    )
                state.add_block(lead, payload, len(chunk))
                out.append((chunk, lead, payload))
                expected_lead = tail
        if expected_lead != r0:
            raise IntegrityError(
                "chain does not close back to r0 (truncation or splice)"
            )

        check_plain = self._cipher.decrypt_block(records[-1].block)
        want_first = xor_bytes(state.r0, state.lead_xor)
        want_payload = xor_bytes(state.payload_xor, _pack_length(state.length))
        if check_plain[:RPC_NONCE_BYTES] != want_first:
            raise IntegrityError("checksum record: nonce aggregate mismatch")
        # The trailing field carries lead_xor XOR version; lead_xor is
        # already bound by the first field, so recover the version here.
        state.version = int.from_bytes(
            xor_bytes(
                check_plain[RPC_NONCE_BYTES + blocks.PAYLOAD_BYTES :],
                state.lead_xor,
            ),
            "big",
        )
        got_payload = check_plain[
            RPC_NONCE_BYTES : RPC_NONCE_BYTES + blocks.PAYLOAD_BYTES
        ]
        if got_payload != want_payload:
            # Distinguish a pure length-amendment failure for the attack
            # harness: same payload XOR but different claimed length.
            claimed = int.from_bytes(
                xor_bytes(got_payload, state.payload_xor), "big"
            )
            if claimed != state.length:
                raise IntegrityError(
                    f"length amendment mismatch: checksum binds {claimed} "
                    f"chars, document has {state.length}"
                )
            raise IntegrityError("checksum record: payload aggregate mismatch")
        return state, out
