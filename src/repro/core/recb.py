"""rECB: randomized ECB incremental encryption (confidentiality only).

Following SV-B, the ciphertext of a document ``d1 … dn`` is::

    F_sk(r0), F_sk(r0 xor r1 || r1 xor d1), ..., F_sk(r0 xor rn || rn xor dn)

where every ``ri`` is a fresh 64-bit nonce and ``F_sk`` is AES.  Each
data block is independent given ``r0``:

* random access — decrypting character block ``k`` needs only the first
  record (for ``r0``) and record ``k``;
* ideal incremental updates — insert/delete/replace touches exactly the
  affected records, nothing is re-chained.

The price is integrity: nothing ties blocks together, so an active
server can replicate, reorder or drop records undetected (demonstrated
in :mod:`repro.security.attacks`; RPC mode is the answer).

Block layout (big-endian), one AES block per data record::

    [ r0 xor ri : 8 bytes ][ ri xor pad8(chunk) : 8 bytes ]

and the bookkeeping record 0 is ``F_sk(r0 || 0^64)``; the zero half
doubles as a cheap wrong-password check, since rECB decryption has no
integrity to fail on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import blocks
from repro.core.nonces import RECB_NONCE_BYTES, draw_nonces, xor_bytes
from repro.core.scheme import BlockCodec
from repro.encoding.wire import Record
from repro.errors import CiphertextFormatError, DecryptionError

__all__ = ["RecbCodec", "RecbState"]


@dataclass
class RecbState:
    """Per-document rECB state: just the document nonce ``r0``."""

    r0: bytes


class RecbCodec(BlockCodec):
    """Block codec for rECB mode."""

    name = "recb"
    supports_integrity = False
    prefix_records = 1
    suffix_records = 0
    nonce_bits = RECB_NONCE_BYTES * 8

    # -- document bookkeeping ----------------------------------------

    def fresh_state(self) -> RecbState:
        """Draw a fresh document nonce ``r0``."""
        return RecbState(r0=self._rng.token(RECB_NONCE_BYTES))

    def prefix(self, state: RecbState, first_lead: bytes | None = None) -> list[Record]:
        """The bookkeeping record ``F(r0 || 0^64)``."""
        block = self._cipher.encrypt_block(state.r0 + bytes(8))
        return [Record(char_count=0, block=block)]

    def suffix(self, state: RecbState) -> list[Record]:
        """rECB has no suffix records."""
        return []

    def parse_prefix(self, record: Record) -> RecbState:
        """Recover ``r0``; detects a wrong key via the zero half."""
        plain = self._cipher.decrypt_block(record.block)
        if plain[8:] != bytes(8):
            raise DecryptionError(
                "r0 record failed its zero-pad check (wrong password or "
                "corrupted ciphertext)"
            )
        return RecbState(r0=plain[:8])

    # -- data records ---------------------------------------------------

    def prepare_chunks(self, state: RecbState, chunks: list[str]) -> bytes:
        """Draw nonces and lay out the plaintext blocks for ``chunks``.

        Returns the concatenated pre-cipher block images; the caller
        encrypts them (possibly together with other spans' images in
        one batched cipher call — ECB makes the split point
        irrelevant to the output bytes) and slices the result back
        into records.
        """
        if not chunks:
            return b""
        nonces = draw_nonces(self._rng, len(chunks), RECB_NONCE_BYTES)
        plain = bytearray()
        for nonce, chunk in zip(nonces, chunks):
            plain += xor_bytes(state.r0, nonce)
            plain += xor_bytes(nonce, blocks.pack_chars(chunk))
        return bytes(plain)

    def encrypt_chunks(self, state: RecbState, chunks: list[str]) -> list[Record]:
        """Encrypt ``chunks`` into data records (batched AES)."""
        if not chunks:
            return []
        encrypted = self._cipher.encrypt_many(
            self.prepare_chunks(state, chunks)
        )
        return [
            Record(
                char_count=len(chunk),
                block=encrypted[16 * i : 16 * (i + 1)],
            )
            for i, chunk in enumerate(chunks)
        ]

    def decrypt_record(self, state: RecbState, record: Record) -> str:
        """Decrypt one data record (the random-access path)."""
        plain = self._cipher.decrypt_block(record.block)
        return self._payload_to_chunk(state, plain, record.char_count)

    def decrypt_records(self, state: RecbState, records: list[Record]) -> list[str]:
        """Decrypt all data records (batched AES)."""
        if not records:
            return []
        blob = self._cipher.decrypt_many(b"".join(r.block for r in records))
        return [
            self._payload_to_chunk(
                state, blob[16 * i : 16 * (i + 1)], record.char_count
            )
            for i, record in enumerate(records)
        ]

    def _payload_to_chunk(self, state: RecbState, plain: bytes,
                          char_count: int) -> str:
        nonce = xor_bytes(plain[:8], state.r0)
        payload = xor_bytes(plain[8:], nonce)
        try:
            chunk = blocks.unpack_chars(payload)
        except UnicodeDecodeError:
            raise DecryptionError(
                "data block decodes to invalid UTF-8 (wrong password or "
                "corrupted ciphertext)"
            ) from None
        if len(chunk) != char_count:
            raise CiphertextFormatError(
                f"record header claims {char_count} chars, payload holds "
                f"{len(chunk)}"
            )
        return chunk
