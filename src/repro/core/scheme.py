"""Incremental-encryption scheme interface and registry (SV-A).

An incremental encryption scheme is the 4-tuple ``(K, Enc, Dec, IncE)``.
In this library the pieces map as follows:

* **K** — :class:`repro.core.keys.KeyMaterial` (password + salt → key);
* **Enc** — ``EncryptedDocument.create`` (encrypt a whole document);
* **Dec** — ``EncryptedDocument.load`` / ``.text`` (decrypt, verifying
  integrity when the scheme provides it);
* **IncE** — ``EncryptedDocument.apply_delta`` (apply an edit operation
  to the ciphertext in sub-linear time, returning the ciphertext delta).

The per-block cryptography lives in *codecs* (:mod:`repro.core.recb`,
:mod:`repro.core.rpc`); this module defines their common shape and the
name → implementation registry used by document headers and factories.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.crypto.blockcipher import AesCipher
from repro.crypto.random import RandomSource, SystemRandomSource
from repro.encoding.wire import Record
from repro.errors import CiphertextFormatError


class BlockCodec(ABC):
    """Block-level cryptography for one scheme.

    A codec knows how to frame chunks of plaintext into wire
    :class:`Record` objects and back; it is stateless across documents —
    per-document state (``r0``, running checksums) is created by
    :meth:`fresh_state` and owned by the document object.
    """

    #: registry key, also written into document headers
    name: str
    #: does Dec detect tampering?
    supports_integrity: bool
    #: how many bookkeeping records precede the data records
    prefix_records: int
    #: how many bookkeeping records follow the data records
    suffix_records: int
    #: nonce width in bits (recorded in the document header)
    nonce_bits: int

    def __init__(self, key: bytes, rng: RandomSource | None = None):
        self._cipher = AesCipher(key)
        self._rng = rng if rng is not None else SystemRandomSource()

    def encrypt_blob(self, plain: bytes) -> bytes:
        """One cipher pass over prepared block images (whole blocks).

        The coalesced-update path concatenates every touched span's
        ``prepare_*`` output (plus the checksum image, for schemes that
        keep one) and encrypts it here in a single call, which is what
        lets a multi-span burst reach the batched AES path.
        """
        return self._cipher.encrypt_many(plain)

    @abstractmethod
    def fresh_state(self) -> object:
        """Create per-document scheme state for a new document."""

    @abstractmethod
    def prefix(self, state: object, first_lead: bytes | None) -> list[Record]:
        """Bookkeeping records that precede the data records."""

    @abstractmethod
    def suffix(self, state: object) -> list[Record]:
        """Bookkeeping records that follow the data records."""


_REGISTRY: dict[str, Callable[..., object]] = {}


def register_scheme(name: str, factory: Callable[..., object]) -> None:
    """Register a document factory under a scheme name."""
    _REGISTRY[name] = factory


def scheme_factory(name: str) -> Callable[..., object]:
    """Look up the document class registered for ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CiphertextFormatError(
            f"unknown scheme {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def known_schemes() -> list[str]:
    """Names of all registered schemes."""
    return sorted(_REGISTRY)
