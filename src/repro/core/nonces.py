"""Nonce drawing and XOR helpers shared by the schemes."""

from __future__ import annotations

from repro.crypto.random import RandomSource

#: rECB nonce width — the paper sets n to 64 bits (SVI-A).
RECB_NONCE_BYTES = 8

#: RPC chaining-nonce width.  One AES block must hold two nonces plus the
#: 8-byte payload field, so 2k + 8 = 16 gives k = 4 bytes.  (The paper
#: quotes 64-bit nonces but that arithmetic cannot close for a 128-bit
#: block with any payload; see DESIGN.md.)
RPC_NONCE_BYTES = 4


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"xor length mismatch: {len(a)} vs {len(b)}")
    return (
        int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
    ).to_bytes(len(a), "big")


def draw_nonce(rng: RandomSource, nbytes: int) -> bytes:
    """Draw one fresh nonce."""
    return rng.token(nbytes)


def draw_nonces(rng: RandomSource, count: int, nbytes: int) -> list[bytes]:
    """Draw ``count`` fresh nonces in one bulk request."""
    blob = rng.token(count * nbytes)
    return [blob[i * nbytes : (i + 1) * nbytes] for i in range(count)]
