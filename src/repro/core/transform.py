"""The ``enc_scheme`` object of Fig. 2.

The extension's request mediator holds one :class:`EncryptionEngine` per
open document.  It exposes exactly the three public interfaces the
paper names — ``encrypt``, ``decrypt``, and ``transform_delta`` — and
"maintains a copy of the state of the ciphertext document which is
needed to transform the delta" (the :class:`EncryptedDocument` mirror).

All three methods speak *strings*: full saves carry the wire document,
incremental saves carry serialized deltas, matching what actually rides
in the form fields the mediator rewrites.
"""

from __future__ import annotations

from typing import Callable

from repro.core.delta import Delta
from repro.core.document import (
    EncryptedDocument,
    create_document,
    load_document,
)
from repro.core.keys import KeyMaterial
from repro.crypto.random import RandomSource
from repro.datastructures import BlockIndex
from repro.errors import TransformError

__all__ = ["EncryptionEngine"]


class EncryptionEngine:
    """Per-document encryption state machine for the mediator."""

    def __init__(
        self,
        password: str,
        scheme: str = "recb",
        block_chars: int = 8,
        rng: RandomSource | None = None,
        index_factory: Callable[[], BlockIndex] | None = None,
    ):
        self._password = password
        self._scheme = scheme
        self._block_chars = block_chars
        self._rng = rng
        self._index_factory = index_factory
        self._keys: KeyMaterial | None = None
        self._mirror: EncryptedDocument | None = None

    @property
    def mirror(self) -> EncryptedDocument | None:
        """The ciphertext-document mirror (None before first use)."""
        return self._mirror

    @property
    def scheme(self) -> str:
        return self._scheme

    def encrypt(self, plaintext: str) -> str:
        """Encrypt a full document (the ``docContents`` path).

        Replaces the mirror; the key (and salt) is derived once per
        engine so re-saves of the same document stay openable with the
        same password.
        """
        if self._keys is None:
            self._keys = KeyMaterial.from_password(
                self._password, rng=self._rng
            )
        self._mirror = create_document(
            plaintext,
            key_material=self._keys,
            scheme=self._scheme,
            block_chars=self._block_chars,
            rng=self._rng,
            index_factory=self._index_factory,
        )
        return self._mirror.wire()

    def decrypt(self, wire_text: str) -> str:
        """Decrypt a stored document (document-open path); adopts it as
        the mirror so subsequent deltas can be transformed."""
        self._mirror = load_document(
            wire_text,
            password=self._password,
            rng=self._rng,
            index_factory=self._index_factory,
        )
        self._keys = self._mirror.key_material
        self._scheme = self._mirror.scheme
        self._block_chars = self._mirror.block_chars
        return self._mirror.text

    def transform_delta(self, delta_text: str) -> str:
        """Translate a plaintext delta into the ciphertext delta."""
        if self._mirror is None:
            raise TransformError(
                "no ciphertext mirror: a full save or load must precede "
                "incremental updates"
            )
        delta = Delta.parse(delta_text)
        return self._mirror.apply_delta(delta).serialize()
