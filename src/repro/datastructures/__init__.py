"""Index structures for variable-length encrypted blocks.

:class:`IndexedSkipList` is the paper's data structure (SV-C);
:class:`IndexedAVL` is the deterministic balanced-tree variant the paper
sketches; :class:`ReferenceIndex` is the O(n) oracle used by tests and
ablation baselines.  All three implement the same interface — the
``BlockIndex`` protocol — so the encrypted-document layer is generic
over them.
"""

from typing import Any, Iterable, Iterator, Protocol, runtime_checkable

from repro.datastructures.indexed_avl import IndexedAVL
from repro.datastructures.indexed_skiplist import IndexedSkipList
from repro.datastructures.reference import ReferenceIndex


@runtime_checkable
class BlockIndex(Protocol):
    """Sequence of ``(value, width)`` blocks searchable by char index."""

    def __len__(self) -> int:  # pragma: no cover
        """Number of blocks."""
        ...

    @property
    def total_chars(self) -> int:  # pragma: no cover
        """Total characters across all blocks."""
        ...

    def find_char(self, index: int) -> tuple[int, int]:  # pragma: no cover
        """Locate the block containing character ``index`` as
        ``(rank, offset)``."""
        ...

    def get(self, rank: int) -> tuple[Any, int]:  # pragma: no cover
        """Return ``(value, width)`` of the block with ordinal ``rank``."""
        ...

    def get_range(self, ra: int, rb: int) -> list[tuple[Any, int]]:  # pragma: no cover
        """Return ``(value, width)`` for ranks ``[ra, rb)`` via one
        descent plus an in-order walk."""
        ...

    def char_start(self, rank: int) -> int:  # pragma: no cover
        """First character position covered by block ``rank``."""
        ...

    def insert(self, rank: int, value: Any, width: int) -> None:  # pragma: no cover
        """Insert a block so that it acquires ordinal ``rank``."""
        ...

    def extend(self, items: Iterable[tuple[Any, int]]) -> None:  # pragma: no cover
        """Append blocks at the end (bulk build)."""
        ...

    def delete(self, rank: int) -> tuple[Any, int]:  # pragma: no cover
        """Remove block ``rank``; return its ``(value, width)``."""
        ...

    def splice(
        self, ra: int, rb: int, items: Iterable[tuple[Any, int]]
    ) -> list[tuple[Any, int]]:  # pragma: no cover
        """Replace the contiguous rank run ``[ra, rb)`` with ``items``
        in one search-path walk; return the removed pairs."""
        ...

    def replace(self, rank: int, value: Any, width: int) -> None:  # pragma: no cover
        """Swap block ``rank``'s payload and width in place."""
        ...

    def items(self) -> Iterator[tuple[Any, int]]:  # pragma: no cover
        """Yield ``(value, width)`` for every block in order."""
        ...

    def values(self) -> Iterator[Any]:  # pragma: no cover
        """Yield every block value in order."""
        ...

    def checkrep(self) -> None:  # pragma: no cover
        """Validate structural invariants (property-test hook)."""
        ...


__all__ = ["BlockIndex", "IndexedSkipList", "IndexedAVL", "ReferenceIndex"]
