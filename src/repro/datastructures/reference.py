"""Reference block index: a plain list with O(n) operations.

Used as the oracle in property tests (both real structures must agree
with it under arbitrary operation interleavings) and as the "naive"
lower bound in the structure ablation benchmark.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import DataStructureError

__all__ = ["ReferenceIndex"]


class ReferenceIndex:
    """Same interface as :class:`IndexedSkipList`, trivially correct."""

    def __init__(self) -> None:
        self._items: list[tuple[Any, int]] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def total_chars(self) -> int:
        return sum(width for _, width in self._items)

    def find_char(self, index: int) -> tuple[int, int]:
        """Locate the block containing character ``index``."""
        if index < 0:
            raise IndexError(f"char index {index} out of range")
        acc = 0
        for rank, (_, width) in enumerate(self._items):
            if acc + width > index:
                return rank, index - acc
            acc += width
        raise IndexError(f"char index {index} out of range [0, {acc})")

    def get(self, rank: int) -> tuple[Any, int]:
        """Return ``(value, width)`` of the block with ordinal ``rank``."""
        if not 0 <= rank < len(self._items):
            raise IndexError(f"rank {rank} out of range")
        return self._items[rank]

    def char_start(self, rank: int) -> int:
        """First character position covered by block ``rank``."""
        if not 0 <= rank <= len(self._items):
            raise IndexError(f"rank {rank} out of range")
        return sum(width for _, width in self._items[:rank])

    def get_range(self, ra: int, rb: int) -> list[tuple[Any, int]]:
        """Return ``(value, width)`` for every block in ranks ``[ra, rb)``."""
        if not 0 <= ra <= rb <= len(self._items):
            raise IndexError(f"range [{ra}, {rb}) out of range")
        return self._items[ra:rb]

    def insert(self, rank: int, value: Any, width: int) -> None:
        """Insert a block so that it acquires ordinal ``rank``."""
        if width < 0:
            raise DataStructureError(f"width must be >= 0, got {width}")
        if not 0 <= rank <= len(self._items):
            raise IndexError(f"rank {rank} out of range")
        self._items.insert(rank, (value, width))

    def splice(self, ra: int, rb: int, items) -> list[tuple[Any, int]]:
        """Replace ranks ``[ra, rb)`` with ``items``; return the removed
        ``(value, width)`` pairs."""
        if not 0 <= ra <= rb <= len(self._items):
            raise IndexError(f"range [{ra}, {rb}) out of range")
        items = list(items)
        for _, width in items:
            if width < 0:
                raise DataStructureError(f"width must be >= 0, got {width}")
        removed = self._items[ra:rb]
        self._items[ra:rb] = items
        return removed

    def delete(self, rank: int) -> tuple[Any, int]:
        """Remove block ``rank``; return its ``(value, width)``."""
        if not 0 <= rank < len(self._items):
            raise IndexError(f"rank {rank} out of range")
        return self._items.pop(rank)

    def extend(self, items) -> None:
        """Append blocks at the end."""
        for value, width in items:
            self.insert(len(self._items), value, width)

    def replace(self, rank: int, value: Any, width: int) -> None:
        """Swap block ``rank``'s payload and width in place."""
        if width < 0:
            raise DataStructureError(f"width must be >= 0, got {width}")
        if not 0 <= rank < len(self._items):
            raise IndexError(f"rank {rank} out of range")
        self._items[rank] = (value, width)

    def items(self) -> Iterator[tuple[Any, int]]:
        """Yield ``(value, width)`` for every block in order."""
        return iter(list(self._items))

    def values(self) -> Iterator[Any]:
        """Yield every block value in order."""
        return iter([value for value, _ in self._items])

    def __iter__(self) -> Iterator[Any]:
        return self.values()

    def checkrep(self) -> None:
        """Nothing can go structurally wrong with a list."""
