"""IndexedSkipList: the paper's block-index data structure (SV-C).

A classic SkipList [Pugh 90] orders elements by *key*; the paper's
variant attaches a ``skip_count`` to every forward pointer so the list
can be searched by **character index** instead (Algorithm 1).  That is
what makes variable-length multi-character blocks workable: inserting or
deleting a block shifts every later character position, but only the
``O(log n)`` pointers on the search path need their counts adjusted —
no block is re-aligned or re-encrypted.

This implementation generalizes the paper's description slightly: each
pointer carries *two* counts, elements skipped and characters skipped.
The element count gives each block's ordinal (its record index on the
wire, which ciphertext deltas are expressed in) at no extra asymptotic
cost; the character count is the paper's ``skip_count``.

Span convention: for a node ``x`` and level ``i``,
``x.span_elems[i]`` / ``x.span_chars[i]`` count the elements/characters
strictly after ``x`` up to and *including* ``x.forward[i]``; pointers to
the end of the list count everything remaining.  All operations are
expected ``O(log n)``; ``checkrep`` validates every span and is run by
the property tests after each mutation.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Iterator

from repro.errors import DataStructureError
from repro.obs import counter, gauge

__all__ = ["IndexedSkipList"]

_MAX_LEVEL = 32

#: horizontal search-path steps (shared with IndexedAVL) — the paper's
#: O(log n) claim for Algorithm 1, made countable
_NODE_VISITS = counter("index.node_visits")
_SEARCHES = counter("index.searches")
#: range operations (one descent amortized over a whole rank run)
_SPLICES = counter("index.splices")
#: level-0 steps taken inside get_range/splice — O(k), deliberately
#: separate from the O(log n) node_visits of the descents
_RANGE_VISITS = counter("index.range_visits")
_LIST_LEVEL = gauge("index.skiplist.level")


class _Node:
    __slots__ = ("value", "width", "forward", "span_elems", "span_chars")

    def __init__(self, value: Any, width: int, level: int):
        self.value = value
        self.width = width
        self.forward: list[_Node | None] = [None] * level
        self.span_elems: list[int] = [0] * level
        self.span_chars: list[int] = [0] * level

    @property
    def level(self) -> int:
        return len(self.forward)


class IndexedSkipList:
    """Sequence of ``(value, width)`` blocks indexable by char position.

    Parameters
    ----------
    p:
        Pole-growth probability (paper's SkipList parameter; 0.5 default).
    rng:
        Source for pole heights.  Pass a seeded ``random.Random`` for
        reproducible structure (benchmarks do).
    """

    def __init__(self, p: float = 0.5, rng: random.Random | None = None):
        if not 0.0 < p < 1.0:
            raise DataStructureError(f"p must be in (0, 1), got {p}")
        self._p = p
        self._rng = rng if rng is not None else random.Random()
        self._head = _Node(None, 0, _MAX_LEVEL)
        self._level = 1  # number of levels currently in use
        self._size = 0
        self._chars = 0

    # -- basic properties ----------------------------------------------

    def __len__(self) -> int:
        """Number of blocks."""
        return self._size

    @property
    def total_chars(self) -> int:
        """Total characters across all blocks."""
        return self._chars

    # -- internal helpers ------------------------------------------------

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < self._p:
            level += 1
        return level

    def _check_rank(self, rank: int, upper: int) -> None:
        if not 0 <= rank < upper:
            raise IndexError(f"rank {rank} out of range [0, {upper})")

    def _predecessors(self, rank: int) -> tuple[list[_Node], list[int], list[int]]:
        """Search path to the node of rank ``rank``.

        Returns per-level predecessor nodes together with each
        predecessor's rank and end-character position (characters up to
        and including that node).
        """
        update: list[_Node] = [self._head] * self._level
        ranks = [0] * self._level
        cends = [0] * self._level
        x = self._head
        pos = -1
        cend = 0
        visits = 0
        for i in range(self._level - 1, -1, -1):
            nxt = x.forward[i]
            while nxt is not None and pos + x.span_elems[i] <= rank - 1:
                pos += x.span_elems[i]
                cend += x.span_chars[i]
                x = nxt
                nxt = x.forward[i]
                visits += 1
            update[i] = x
            ranks[i] = pos
            cends[i] = cend
        _SEARCHES.inc()
        _NODE_VISITS.inc(visits)
        return update, ranks, cends

    # -- queries ---------------------------------------------------------

    def find_char(self, index: int) -> tuple[int, int]:
        """Locate the block containing character ``index``.

        Returns ``(rank, offset)``: the block's ordinal and the position
        of the character within it.  This is Algorithm 1 of the paper
        (descend the poles, subtracting ``skip_count``), returning the
        block instead of a single character.
        """
        if not 0 <= index < self._chars:
            raise IndexError(
                f"char index {index} out of range [0, {self._chars})"
            )
        x = self._head
        pos = -1
        cend = 0
        visits = 0
        for i in range(self._level - 1, -1, -1):
            nxt = x.forward[i]
            while nxt is not None and cend + x.span_chars[i] <= index:
                pos += x.span_elems[i]
                cend += x.span_chars[i]
                x = nxt
                nxt = x.forward[i]
                visits += 1
        _SEARCHES.inc()
        _NODE_VISITS.inc(visits)
        target = x.forward[0]
        assert target is not None  # index < total_chars guarantees this
        return pos + 1, index - cend

    def get(self, rank: int) -> tuple[Any, int]:
        """Return ``(value, width)`` of the block with ordinal ``rank``."""
        node = self._node_at(rank)
        return node.value, node.width

    def _node_at(self, rank: int) -> _Node:
        self._check_rank(rank, self._size)
        x = self._head
        pos = -1
        visits = 0
        for i in range(self._level - 1, -1, -1):
            nxt = x.forward[i]
            while nxt is not None and pos + x.span_elems[i] <= rank:
                pos += x.span_elems[i]
                x = nxt
                nxt = x.forward[i]
                visits += 1
        _SEARCHES.inc()
        _NODE_VISITS.inc(visits)
        assert pos == rank
        return x

    def char_start(self, rank: int) -> int:
        """First character position covered by block ``rank``."""
        self._check_rank(rank, self._size + 1)  # size allowed: end position
        if rank == self._size:
            return self._chars
        _, ranks, cends = self._predecessors(rank)
        return cends[0]

    def get_range(self, ra: int, rb: int) -> list[tuple[Any, int]]:
        """Return ``(value, width)`` for every block in ranks ``[ra, rb)``.

        One ``O(log n)`` descent to rank ``ra`` plus a level-0 walk of
        ``rb - ra`` steps — versus ``rb - ra`` full descents for the
        equivalent :meth:`get` loop.
        """
        if not 0 <= ra <= rb <= self._size:
            raise IndexError(
                f"range [{ra}, {rb}) out of range [0, {self._size}]"
            )
        if ra == rb:
            return []
        update, _, _ = self._predecessors(ra)
        out: list[tuple[Any, int]] = []
        node = update[0].forward[0]
        for _ in range(rb - ra):
            assert node is not None
            out.append((node.value, node.width))
            node = node.forward[0]
        _RANGE_VISITS.inc(rb - ra)
        return out

    # -- mutations ---------------------------------------------------------

    def splice(
        self, ra: int, rb: int, items: Iterable[tuple[Any, int]]
    ) -> list[tuple[Any, int]]:
        """Replace ranks ``[ra, rb)`` with ``items``; return the removed
        ``(value, width)`` pairs.

        One predecessor-array walk serves the whole operation: the dead
        run is unlinked level by level along the existing pointers
        (``O(k)`` extra steps, counted in ``index.range_visits``) and the
        new nodes are threaded in ``extend``-style from the same
        predecessor state — no per-rank searches, unlike the equivalent
        ``(rb - ra)`` ``delete`` calls plus ``m`` ``insert`` calls.
        """
        if not 0 <= ra <= rb <= self._size:
            raise IndexError(
                f"range [{ra}, {rb}) out of range [0, {self._size}]"
            )
        items = list(items)
        for _, width in items:
            if width < 0:
                raise DataStructureError(f"width must be >= 0, got {width}")
        _SPLICES.inc()
        update, ranks, cends = self._predecessors(ra)

        # Unlink the dead run [ra, rb).  Each level's pointers are fixed
        # by walking only the dead nodes linked at that level, so total
        # work is O(k) expected beyond the one descent above.
        removed: list[tuple[Any, int]] = []
        dead_ids: set[int] = set()
        walk_steps = 0
        node = update[0].forward[0]
        removed_chars = 0
        for _ in range(rb - ra):
            assert node is not None
            removed.append((node.value, node.width))
            removed_chars += node.width
            dead_ids.add(id(node))
            node = node.forward[0]
            walk_steps += 1
        if dead_ids:
            k = rb - ra
            for i in range(self._level):
                pred = update[i]
                span_e = pred.span_elems[i]
                span_c = pred.span_chars[i]
                nxt = pred.forward[i]
                while nxt is not None and id(nxt) in dead_ids:
                    span_e += nxt.span_elems[i]
                    span_c += nxt.span_chars[i]
                    nxt = nxt.forward[i]
                    walk_steps += 1
                pred.forward[i] = nxt
                pred.span_elems[i] = span_e - k
                pred.span_chars[i] = span_c - removed_chars
            self._size -= k
            self._chars -= removed_chars
        _RANGE_VISITS.inc(walk_steps)

        # Thread the replacement nodes in, reusing the predecessor state
        # (still valid: every removed rank was >= ra > each pred's rank).
        last_node: list[_Node] = list(update)
        last_rank: list[int] = list(ranks)
        last_cend: list[int] = list(cends)
        rank = ra
        cstart = cends[0]
        for value, width in items:
            level = self._random_level()
            if level > self._level:
                for i in range(self._level, level):
                    self._head.span_elems[i] = self._size
                    self._head.span_chars[i] = self._chars
                    self._head.forward[i] = None
                    last_node.append(self._head)
                    last_rank.append(-1)
                    last_cend.append(0)
                self._level = level
            node = _Node(value, width, level)
            end_new = cstart + width
            for i in range(level):
                pred = last_node[i]
                node.forward[i] = pred.forward[i]
                node.span_elems[i] = last_rank[i] + pred.span_elems[i] + 1 - rank
                node.span_chars[i] = last_cend[i] + pred.span_chars[i] - cstart
                pred.forward[i] = node
                pred.span_elems[i] = rank - last_rank[i]
                pred.span_chars[i] = end_new - last_cend[i]
                last_node[i] = node
                last_rank[i] = rank
                last_cend[i] = end_new
            for i in range(level, self._level):
                last_node[i].span_elems[i] += 1
                last_node[i].span_chars[i] += width
            self._size += 1
            self._chars += width
            rank += 1
            cstart = end_new

        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        _LIST_LEVEL.set(self._level)
        return removed

    def insert(self, rank: int, value: Any, width: int) -> None:
        """Insert a block so that it acquires ordinal ``rank``."""
        if width < 0:
            raise DataStructureError(f"width must be >= 0, got {width}")
        self._check_rank(rank, self._size + 1)

        level = self._random_level()
        if level > self._level:
            # Freshly exposed head levels span the entire current list.
            for i in range(self._level, level):
                self._head.span_elems[i] = self._size
                self._head.span_chars[i] = self._chars
                self._head.forward[i] = None
            self._level = level

        update, ranks, cends = self._predecessors(rank)
        node = _Node(value, width, level)
        end_new = cends[0] + width  # char end of the new node

        for i in range(level):
            pred = update[i]
            node.forward[i] = pred.forward[i]
            node.span_elems[i] = ranks[i] + pred.span_elems[i] + 1 - rank
            node.span_chars[i] = cends[i] + pred.span_chars[i] - cends[0]
            pred.forward[i] = node
            pred.span_elems[i] = rank - ranks[i]
            pred.span_chars[i] = end_new - cends[i]
        for i in range(level, self._level):
            update[i].span_elems[i] += 1
            update[i].span_chars[i] += width

        self._size += 1
        self._chars += width
        _LIST_LEVEL.set(self._level)

    def delete(self, rank: int) -> tuple[Any, int]:
        """Remove block ``rank``; return its ``(value, width)``."""
        self._check_rank(rank, self._size)
        update, _, _ = self._predecessors(rank)
        target = update[0].forward[0]
        assert target is not None

        for i in range(self._level):
            pred = update[i]
            if i < target.level and pred.forward[i] is target:
                pred.span_elems[i] += target.span_elems[i] - 1
                pred.span_chars[i] += target.span_chars[i] - target.width
                pred.forward[i] = target.forward[i]
            else:
                pred.span_elems[i] -= 1
                pred.span_chars[i] -= target.width

        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1

        self._size -= 1
        self._chars -= target.width
        _LIST_LEVEL.set(self._level)
        return target.value, target.width

    def extend(self, items: Iterable[tuple[Any, int]]) -> None:
        """Append blocks at the end in O(n) total (bulk build).

        Equivalent to ``insert(len(self), value, width)`` per item, but
        builds the pointers in one left-to-right pass — this is what
        makes whole-document encryption (10k+ blocks) cheap.
        """
        items = list(items)
        if not items:
            return
        update, ranks, cends = self._predecessors(self._size)
        last: list[tuple[_Node, int, int]] = [
            (update[i], ranks[i], cends[i]) for i in range(self._level)
        ]
        rank = self._size
        chars = self._chars
        for value, width in items:
            if width < 0:
                raise DataStructureError(f"width must be >= 0, got {width}")
            level = self._random_level()
            while self._level < level:
                last.append((self._head, -1, 0))
                self._level += 1
            node = _Node(value, width, level)
            end = chars + width
            for i in range(level):
                prev_node, prev_rank, prev_cend = last[i]
                prev_node.forward[i] = node
                prev_node.span_elems[i] = rank - prev_rank
                prev_node.span_chars[i] = end - prev_cend
                last[i] = (node, rank, end)
            rank += 1
            chars = end
        self._size = rank
        self._chars = chars
        for i in range(self._level):
            node, last_rank, last_cend = last[i]
            node.forward[i] = None
            node.span_elems[i] = self._size - 1 - last_rank
            node.span_chars[i] = self._chars - last_cend

    def replace(self, rank: int, value: Any, width: int) -> None:
        """Swap block ``rank``'s payload and width in place.

        Used when a block is re-encrypted (fresh nonce) or re-packed
        (characters added/removed within capacity): the block keeps its
        ordinal while every pointer crossing it adjusts its character
        count by the width delta.
        """
        if width < 0:
            raise DataStructureError(f"width must be >= 0, got {width}")
        self._check_rank(rank, self._size)
        update, _, _ = self._predecessors(rank)
        target = update[0].forward[0]
        assert target is not None
        delta = width - target.width
        if delta:
            for i in range(self._level):
                update[i].span_chars[i] += delta
            self._chars += delta
        target.value = value
        target.width = width

    # -- iteration -----------------------------------------------------------

    def items(self) -> Iterator[tuple[Any, int]]:
        """Yield ``(value, width)`` for every block in order."""
        x = self._head.forward[0]
        while x is not None:
            yield x.value, x.width
            x = x.forward[0]

    def values(self) -> Iterator[Any]:
        """Yield every block value in order."""
        for value, _ in self.items():
            yield value

    def __iter__(self) -> Iterator[Any]:
        return self.values()

    # -- verification -----------------------------------------------------

    def checkrep(self) -> None:
        """Validate every structural invariant (property-test hook).

        Checks, at every level: forward pointers reach exactly the
        level-0 nodes of sufficient height, and every span equals the
        true element/character distance it claims to summarize.
        """
        # Walk level 0 to establish ground truth.
        nodes: list[_Node] = []
        x = self._head.forward[0]
        while x is not None:
            nodes.append(x)
            x = x.forward[0]
        if len(nodes) != self._size:
            raise DataStructureError(
                f"size {self._size} != level-0 walk {len(nodes)}"
            )
        if sum(n.width for n in nodes) != self._chars:
            raise DataStructureError("total_chars out of sync")

        rank_of = {id(n): r for r, n in enumerate(nodes)}
        ends = []
        acc = 0
        for n in nodes:
            acc += n.width
            ends.append(acc)

        def elems_between(a: _Node | None, b: _Node | None) -> tuple[int, int]:
            ra = -1 if a is self._head else rank_of[id(a)]
            if b is None:
                return self._size - 1 - ra, self._chars - (ends[ra] if ra >= 0 else 0)
            rb = rank_of[id(b)]
            ea = ends[ra] if ra >= 0 else 0
            return rb - ra, ends[rb] - ea

        for i in range(self._level):
            x = self._head
            while True:
                nxt = x.forward[i]
                de, dc = elems_between(x, nxt)
                if x.span_elems[i] != de or x.span_chars[i] != dc:
                    raise DataStructureError(
                        f"span mismatch at level {i}: "
                        f"claims ({x.span_elems[i]}, {x.span_chars[i]}), "
                        f"actual ({de}, {dc})"
                    )
                if nxt is None:
                    break
                if nxt.level <= i:
                    raise DataStructureError(
                        f"node of height {nxt.level} linked at level {i}"
                    )
                x = nxt
        for i in range(self._level, _MAX_LEVEL):
            if self._head.forward[i] is not None:
                raise DataStructureError("pointer above list level")
