"""IndexedAVL: deterministic alternative to the IndexedSkipList.

The paper notes (SV-C) that "the idea of indexing could also be applied
to any of the well-known balanced tree data structures (e.g., AVL tree,
2-3 tree, etc.) to develop a similar non-probabilistic data structure."
This module realizes that remark: an AVL tree whose nodes aggregate
subtree element counts and character widths, giving worst-case
``O(log n)`` find-by-character-index, insert, delete, and width update.

It implements the same interface as
:class:`repro.datastructures.indexed_skiplist.IndexedSkipList`, so the
encrypted-document layer can run on either (``bench_ablation_structures``
compares them).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.errors import DataStructureError
from repro.obs import counter

__all__ = ["IndexedAVL"]

#: shared with the skip list: nodes touched on any search/mutation path
_NODE_VISITS = counter("index.node_visits")
_SEARCHES = counter("index.searches")
#: range operations (one split/join path amortized over a rank run)
_SPLICES = counter("index.splices")
#: in-order steps taken inside get_range/splice — O(k), deliberately
#: separate from the O(log n) node_visits of the descents
_RANGE_VISITS = counter("index.range_visits")
_ROTATIONS = counter("index.avl.rotations")


class _Node:
    __slots__ = ("value", "width", "left", "right", "height",
                 "sub_elems", "sub_chars")

    def __init__(self, value: Any, width: int):
        self.value = value
        self.width = width
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.height = 1
        self.sub_elems = 1
        self.sub_chars = width


def _h(node: _Node | None) -> int:
    return node.height if node is not None else 0


def _elems(node: _Node | None) -> int:
    return node.sub_elems if node is not None else 0


def _chars(node: _Node | None) -> int:
    return node.sub_chars if node is not None else 0


def _refresh(node: _Node) -> None:
    node.height = 1 + max(_h(node.left), _h(node.right))
    node.sub_elems = 1 + _elems(node.left) + _elems(node.right)
    node.sub_chars = node.width + _chars(node.left) + _chars(node.right)


def _rotate_right(y: _Node) -> _Node:
    x = y.left
    assert x is not None
    _ROTATIONS.inc()
    y.left = x.right
    x.right = y
    _refresh(y)
    _refresh(x)
    return x


def _rotate_left(x: _Node) -> _Node:
    y = x.right
    assert y is not None
    _ROTATIONS.inc()
    x.right = y.left
    y.left = x
    _refresh(x)
    _refresh(y)
    return y


def _balance(node: _Node) -> _Node:
    _refresh(node)
    bal = _h(node.left) - _h(node.right)
    if bal > 1:
        assert node.left is not None
        if _h(node.left.left) < _h(node.left.right):
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if bal < -1:
        assert node.right is not None
        if _h(node.right.right) < _h(node.right.left):
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


def _join(left: _Node | None, pivot: _Node, right: _Node | None) -> _Node:
    """Join ``left`` + ``pivot`` + ``right`` (all ranks in that order)
    into one valid AVL in ``O(|h(left) - h(right)|)``.

    ``pivot`` is a detached node; its old child pointers are ignored.
    """
    hl, hr = _h(left), _h(right)
    if abs(hl - hr) <= 1:
        pivot.left = left
        pivot.right = right
        _refresh(pivot)
        return pivot
    if hl > hr:
        left.right = _join(left.right, pivot, right)
        return _balance(left)
    right.left = _join(left, pivot, right.left)
    return _balance(right)


def _join2(left: _Node | None, right: _Node | None) -> _Node | None:
    """Join two trees with no pivot: the minimum of ``right`` serves."""
    if left is None:
        return right
    if right is None:
        return left
    pivot_tree, rest = _split(right, 1)
    assert pivot_tree is not None
    pivot_tree.left = pivot_tree.right = None
    return _join(left, pivot_tree, rest)


def _split(node: _Node | None, count: int) -> tuple[_Node | None, _Node | None]:
    """Split into (first ``count`` elements, the rest), both valid AVLs."""
    if node is None:
        return None, None
    _NODE_VISITS.inc()
    left_elems = _elems(node.left)
    if count <= left_elems:
        first, rest = _split(node.left, count)
        return first, _join(rest, node, node.right)
    first, rest = _split(node.right, count - left_elems - 1)
    return _join(node.left, node, first), rest


def _build_balanced(items: list, lo: int, hi: int) -> _Node | None:
    """Build a perfectly balanced subtree over items[lo:hi]."""
    if lo >= hi:
        return None
    mid = (lo + hi) // 2
    value, width = items[mid]
    node = _Node(value, width)
    node.left = _build_balanced(items, lo, mid)
    node.right = _build_balanced(items, mid + 1, hi)
    _refresh(node)
    return node


class IndexedAVL:
    """Order-statistic AVL over ``(value, width)`` blocks."""

    def __init__(self) -> None:
        self._root: _Node | None = None

    def __len__(self) -> int:
        return _elems(self._root)

    @property
    def total_chars(self) -> int:
        return _chars(self._root)

    # -- queries ------------------------------------------------------

    def find_char(self, index: int) -> tuple[int, int]:
        """Locate the block containing character ``index``.

        Returns ``(rank, offset)`` exactly like the skip list.
        """
        if not 0 <= index < self.total_chars:
            raise IndexError(
                f"char index {index} out of range [0, {self.total_chars})"
            )
        node = self._root
        rank = 0
        visits = 0
        _SEARCHES.inc()
        while node is not None:
            visits += 1
            left_chars = _chars(node.left)
            if index < left_chars:
                node = node.left
            elif index < left_chars + node.width:
                _NODE_VISITS.inc(visits)
                return rank + _elems(node.left), index - left_chars
            else:
                rank += _elems(node.left) + 1
                index -= left_chars + node.width
                node = node.right
        raise DataStructureError("find_char fell off the tree")

    def _node_at(self, rank: int) -> _Node:
        if not 0 <= rank < len(self):
            raise IndexError(f"rank {rank} out of range [0, {len(self)})")
        node = self._root
        visits = 0
        _SEARCHES.inc()
        while node is not None:
            visits += 1
            left = _elems(node.left)
            if rank < left:
                node = node.left
            elif rank == left:
                _NODE_VISITS.inc(visits)
                return node
            else:
                rank -= left + 1
                node = node.right
        raise DataStructureError("_node_at fell off the tree")

    def get(self, rank: int) -> tuple[Any, int]:
        """Return ``(value, width)`` of the block with ordinal ``rank``."""
        node = self._node_at(rank)
        return node.value, node.width

    def char_start(self, rank: int) -> int:
        """First character position covered by block ``rank``."""
        if not 0 <= rank <= len(self):
            raise IndexError(f"rank {rank} out of range [0, {len(self)}]")
        if rank == len(self):
            return self.total_chars
        node = self._root
        start = 0
        visits = 0
        _SEARCHES.inc()
        while node is not None:
            visits += 1
            left = _elems(node.left)
            if rank < left:
                node = node.left
            elif rank == left:
                _NODE_VISITS.inc(visits)
                return start + _chars(node.left)
            else:
                start += _chars(node.left) + node.width
                rank -= left + 1
                node = node.right
        raise DataStructureError("char_start fell off the tree")

    def get_range(self, ra: int, rb: int) -> list[tuple[Any, int]]:
        """Return ``(value, width)`` for every block in ranks ``[ra, rb)``.

        One descent to rank ``ra`` plus an in-order walk of ``rb - ra``
        steps — versus ``rb - ra`` full descents for a :meth:`get` loop.
        """
        if not 0 <= ra <= rb <= len(self):
            raise IndexError(
                f"range [{ra}, {rb}) out of range [0, {len(self)}]"
            )
        count = rb - ra
        if count == 0:
            return []
        _SEARCHES.inc()
        out: list[tuple[Any, int]] = []
        stack: list[_Node] = []
        node = self._root
        r = ra
        visits = 0
        while node is not None:
            visits += 1
            left = _elems(node.left)
            if r < left:
                stack.append(node)
                node = node.left
            elif r == left:
                break
            else:
                r -= left + 1
                node = node.right
        _NODE_VISITS.inc(visits)
        while node is not None and len(out) < count:
            out.append((node.value, node.width))
            if node.right is not None:
                node = node.right
                while node.left is not None:
                    stack.append(node)
                    node = node.left
            else:
                node = stack.pop() if stack else None
        _RANGE_VISITS.inc(count)
        return out

    # -- mutations ------------------------------------------------------

    def splice(
        self, ra: int, rb: int, items: "Iterable[tuple[Any, int]]"
    ) -> list[tuple[Any, int]]:
        """Replace ranks ``[ra, rb)`` with ``items``; return the removed
        ``(value, width)`` pairs.

        Implemented join-style: split out the doomed run, build a
        perfectly balanced subtree over the replacements, and join the
        three parts back — ``O(log n + k + m)``, one rebalance path per
        split/join instead of ``rb - ra`` deletes plus ``m`` inserts.
        """
        if not 0 <= ra <= rb <= len(self):
            raise IndexError(
                f"range [{ra}, {rb}) out of range [0, {len(self)}]"
            )
        items = list(items)
        for _, width in items:
            if width < 0:
                raise DataStructureError(f"width must be >= 0, got {width}")
        _SPLICES.inc()
        _SEARCHES.inc()
        left, rest = _split(self._root, ra)
        doomed, right = _split(rest, rb - ra)
        removed: list[tuple[Any, int]] = []
        stack: list[_Node] = []
        node = doomed
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            removed.append((node.value, node.width))
            node = node.right
        _RANGE_VISITS.inc(len(removed))
        middle = _build_balanced(items, 0, len(items))
        self._root = _join2(_join2(left, middle), right)
        return removed

    def insert(self, rank: int, value: Any, width: int) -> None:
        """Insert a block so that it acquires ordinal ``rank``."""
        if width < 0:
            raise DataStructureError(f"width must be >= 0, got {width}")
        if not 0 <= rank <= len(self):
            raise IndexError(f"rank {rank} out of range [0, {len(self)}]")
        self._root = self._insert(self._root, rank, value, width)

    def _insert(self, node: _Node | None, rank: int,
                value: Any, width: int) -> _Node:
        if node is None:
            return _Node(value, width)
        _NODE_VISITS.inc()
        left = _elems(node.left)
        if rank <= left:
            node.left = self._insert(node.left, rank, value, width)
        else:
            node.right = self._insert(node.right, rank - left - 1,
                                      value, width)
        return _balance(node)

    def delete(self, rank: int) -> tuple[Any, int]:
        """Remove block ``rank``; return its ``(value, width)``."""
        node = self._node_at(rank)  # validates rank
        result = (node.value, node.width)
        self._root = self._delete(self._root, rank)
        return result

    def _delete(self, node: _Node | None, rank: int) -> _Node | None:
        assert node is not None
        _NODE_VISITS.inc()
        left = _elems(node.left)
        if rank < left:
            node.left = self._delete(node.left, rank)
        elif rank > left:
            node.right = self._delete(node.right, rank - left - 1)
        else:
            if node.left is None:
                return node.right
            if node.right is None:
                return node.left
            # Replace with in-order successor, then delete it below.
            successor = node.right
            while successor.left is not None:
                successor = successor.left
            node.value, node.width = successor.value, successor.width
            node.right = self._delete(node.right, 0)
        return _balance(node)

    def extend(self, items: "Iterable[tuple[Any, int]]") -> None:
        """Append blocks at the end; O(n) when the tree starts empty
        (perfectly balanced build), O(n log n) otherwise."""
        items = list(items)
        if self._root is None:
            for _, width in items:
                if width < 0:
                    raise DataStructureError(
                        f"width must be >= 0, got {width}"
                    )
            self._root = _build_balanced(items, 0, len(items))
            return
        for value, width in items:
            self.insert(len(self), value, width)

    def replace(self, rank: int, value: Any, width: int) -> None:
        """Swap block ``rank``'s payload and width in place."""
        if width < 0:
            raise DataStructureError(f"width must be >= 0, got {width}")
        if not 0 <= rank < len(self):
            raise IndexError(f"rank {rank} out of range [0, {len(self)})")
        # Iterative descent updating aggregates on the way back is awkward
        # without parent pointers; adjust sub_chars along the path instead.
        node = self._root
        path: list[_Node] = []
        r = rank
        while node is not None:
            path.append(node)
            left = _elems(node.left)
            if r < left:
                node = node.left
            elif r == left:
                delta = width - node.width
                node.value = value
                node.width = width
                if delta:
                    for ancestor in path:
                        ancestor.sub_chars += delta
                return
            else:
                r -= left + 1
                node = node.right
        raise DataStructureError("replace fell off the tree")

    # -- iteration ------------------------------------------------------

    def items(self) -> Iterator[tuple[Any, int]]:
        """Yield ``(value, width)`` for every block in order."""
        stack: list[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.value, node.width
            node = node.right

    def values(self) -> Iterator[Any]:
        """Yield every block value in order."""
        for value, _ in self.items():
            yield value

    def __iter__(self) -> Iterator[Any]:
        return self.values()

    # -- verification ------------------------------------------------------

    def checkrep(self) -> None:
        """Validate AVL balance and aggregate invariants."""

        def walk(node: _Node | None) -> tuple[int, int, int]:
            if node is None:
                return 0, 0, 0
            lh, le, lc = walk(node.left)
            rh, re, rc = walk(node.right)
            if abs(lh - rh) > 1:
                raise DataStructureError("AVL balance violated")
            height = 1 + max(lh, rh)
            elems = 1 + le + re
            chars = node.width + lc + rc
            if node.height != height:
                raise DataStructureError("stale height")
            if node.sub_elems != elems:
                raise DataStructureError("stale sub_elems")
            if node.sub_chars != chars:
                raise DataStructureError("stale sub_chars")
            return height, elems, chars

        walk(self._root)
