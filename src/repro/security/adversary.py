"""Adversary models from the threat model (SII).

* :class:`EavesdropperTap` — the passive network observer (the paper
  notes most 2011 cloud servers ran without SSL); records every
  post-mediation exchange for later analysis.
* :class:`HonestButCuriousServer` — the curious provider: full access to
  the stored ciphertext *and its revision history* plus all observed
  update traffic; offers the inference helpers the analysis module
  quantifies.
* :class:`ActiveServerAdversary` — the malicious provider: mutates
  stored content directly (the attacks of :mod:`repro.security.attacks`
  operate through it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.auditchain import AuditChain
from repro.core.delta import Delete, Delta, Insert, Retain
from repro.encoding.wire import RECORD_CHARS, split_header
from repro.errors import CiphertextFormatError
from repro.net.channel import Exchange
from repro.services.gdocs import protocol
from repro.services.gdocs.storage import DocumentStore

__all__ = [
    "EavesdropperTap",
    "ObservedUpdate",
    "HonestButCuriousServer",
    "ActiveServerAdversary",
]


@dataclass(frozen=True)
class ObservedUpdate:
    """What an adversary can read off one content-update exchange.

    Even with all content encrypted, the *structure* of a cdelta is
    plaintext: which record ranges changed, how many records were
    inserted/deleted, and when.  This is exactly the positional/timing
    leakage SVI-A concedes.
    """

    at: float
    kind: str                    #: "full" | "delta" | "other"
    body_chars: int
    retained_records: int
    deleted_records: int
    inserted_records: int


class EavesdropperTap:
    """Passive observer collecting exchanges from a Channel tap."""

    def __init__(self) -> None:
        self.exchanges: list[Exchange] = []

    def __call__(self, exchange: Exchange) -> None:
        self.exchanges.append(exchange)

    # -- inference ------------------------------------------------------

    def observed_updates(self) -> list[ObservedUpdate]:
        """Classify every captured exchange."""
        out: list[ObservedUpdate] = []
        for exchange in self.exchanges:
            request = exchange.request
            if request.method != "POST" or not request.body:
                continue
            form = request.form
            if protocol.F_DOC_CONTENTS in form:
                out.append(ObservedUpdate(
                    at=exchange.sent_at, kind="full",
                    body_chars=len(request.body),
                    retained_records=0, deleted_records=0,
                    inserted_records=len(form[protocol.F_DOC_CONTENTS])
                    // RECORD_CHARS,
                ))
            elif protocol.F_DELTA in form:
                ret, dele, ins = _delta_record_stats(form[protocol.F_DELTA])
                out.append(ObservedUpdate(
                    at=exchange.sent_at, kind="delta",
                    body_chars=len(request.body),
                    retained_records=ret, deleted_records=dele,
                    inserted_records=ins,
                ))
        return out

    def plaintext_sightings(self, needle: str) -> int:
        """How many exchanges contain ``needle`` verbatim — the basic
        confidentiality check (0 when the extension is on)."""
        count = 0
        for exchange in self.exchanges:
            if needle in exchange.request.body or needle in exchange.request.url:
                count += 1
            if needle in exchange.response.body:
                count += 1
        return count


def _delta_record_stats(delta_text: str) -> tuple[int, int, int]:
    try:
        delta = Delta.parse(delta_text)
    except Exception:
        return 0, 0, 0
    retained = sum(
        op.count for op in delta.ops if isinstance(op, Retain)
    ) // RECORD_CHARS
    deleted = sum(
        op.count for op in delta.ops if isinstance(op, Delete)
    ) // RECORD_CHARS
    inserted = sum(
        len(op.text) for op in delta.ops if isinstance(op, Insert)
    ) // RECORD_CHARS
    return retained, deleted, inserted


class HonestButCuriousServer:
    """The curious provider's view over a document store."""

    def __init__(self, store: DocumentStore):
        self._store = store

    def current_ciphertext(self, doc_id: str) -> str:
        """The stored content for ``doc_id`` as the provider sees it."""
        return self._store.get(doc_id).content

    def version_history(self, doc_id: str) -> list[str]:
        """Every prior stored version (the leak of reference [1])."""
        return list(self._store.get(doc_id).history)

    def record_count(self, doc_id: str) -> int:
        """Number of wire records currently stored for ``doc_id``."""
        content = self.current_ciphertext(doc_id)
        try:
            _, area = split_header(content)
        except CiphertextFormatError:
            return 0
        return len(area) // RECORD_CHARS

    def length_estimate(self, doc_id: str, block_chars: int) -> int:
        """The provider's best guess of plaintext length: record count
        times block capacity (the only length signal available)."""
        data_records = max(0, self.record_count(doc_id) - 2)
        return data_records * block_chars


class ActiveServerAdversary(HonestButCuriousServer):
    """A provider that also tampers with what it stores."""

    def overwrite(self, doc_id: str, content: str) -> None:
        """Replace the stored content directly (active tampering)."""
        doc = self._store.get(doc_id)
        doc.history.append(doc.content)
        doc.content = content
        doc.revision += 1

    def rollback(self, doc_id: str, versions_back: int = 1) -> str:
        """Replay an old version (undetectable by any per-document
        scheme, as the paper's freshness discussion implies)."""
        doc = self._store.get(doc_id)
        target = doc.history[-versions_back]
        self.overwrite(doc_id, target)
        return target

    def forge_chain(self, catalog, doc_id: str, history) -> None:
        """Rebuild a catalog's audit chain wholesale over ``history``
        (``(rev, content_hash)`` pairs) — the sophisticated rollback: a
        *self-consistent* forgery whose every link recomputes, which
        only a client remembering an earlier head can refute.  The
        provider owns the catalog store, so reaching into it is exactly
        what the threat model grants."""
        chain = AuditChain()
        for rev, content_hash in history:
            chain.append(rev, content_hash)
        with catalog._lock:
            catalog._chains[doc_id] = chain
