"""Indistinguishability games (SVI-A's four attack categories, played).

The paper argues informally that the schemes resist ciphertext-only,
known-plaintext, chosen-plaintext, and chosen-ciphertext attacks
"because of the random padding".  This module turns the argument into
experiments: a standard left-or-right indistinguishability game where a
concrete adversary strategy guesses which of two equal-length messages
was encrypted, and the measured **advantage** (``2·accuracy − 1``)
should be statistically indistinguishable from zero.

These are sanity experiments, not proofs — a passing game means "none
of these practical distinguishers work", which is exactly the level of
assurance an empirical reproduction can add to the paper's citations.
The one distinguisher that *does* work is length (the paper concedes
the ciphertext roughly preserves document length), and the game shows
that too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.core import create_document, load_document
from repro.core.keys import KeyMaterial
from repro.crypto.random import DeterministicRandomSource
from repro.encoding import base32
from repro.encoding.wire import RECORD_CHARS, split_header
from repro.errors import ReproError

__all__ = [
    "GameResult",
    "ind_game",
    "frequency_adversary",
    "first_record_adversary",
    "length_adversary",
    "chosen_plaintext_game",
    "chosen_ciphertext_oracle_leaks_nothing",
]

Adversary = Callable[[str, str, str], int]
"""(m0, m1, challenge_ciphertext) -> guessed index."""


@dataclass(frozen=True)
class GameResult:
    trials: int
    correct: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.trials if self.trials else 0.0

    @property
    def advantage(self) -> float:
        return abs(2.0 * self.accuracy - 1.0)


def _ciphertext_bytes(wire_text: str) -> bytes:
    _, area = split_header(wire_text)
    return b"".join(
        base32.decode(area[i : i + RECORD_CHARS])
        for i in range(0, len(area), RECORD_CHARS)
    )


def ind_game(
    adversary: Adversary,
    trials: int = 100,
    scheme: str = "recb",
    block_chars: int = 8,
    message_chars: int = 160,
    equal_length: bool = True,
    seed: int = 0,
) -> GameResult:
    """Run the left-or-right game with fresh keys per trial."""
    rng = random.Random(seed)
    nonce_rng = DeterministicRandomSource(seed + 1)
    correct = 0
    for trial in range(trials):
        m0 = "".join(rng.choice("abcdefgh ") for _ in range(message_chars))
        other_len = message_chars if equal_length else message_chars * 2
        m1 = "".join(rng.choice("abcdefgh ") for _ in range(other_len))
        bit = rng.randrange(2)
        keys = KeyMaterial.from_password(f"k{trial}", salt=b"game-salt!",
                                         iterations=10)
        ciphertext = create_document(
            (m0, m1)[bit], key_material=keys, scheme=scheme,
            block_chars=block_chars, rng=nonce_rng,
        ).wire()
        if adversary(m0, m1, ciphertext) == bit:
            correct += 1
    return GameResult(trials=trials, correct=correct)


# -- concrete distinguisher strategies ---------------------------------------


def frequency_adversary(m0: str, m1: str, ciphertext: str) -> int:
    """Guess from ciphertext byte-frequency skew toward each message's
    own character histogram — works against ECB-style leakage, should
    fail against randomized encryption."""
    raw = _ciphertext_bytes(ciphertext)
    counts = [0] * 256
    for byte in raw:
        counts[byte] += 1
    # correlate top ciphertext byte with each message's top character
    top = max(range(256), key=counts.__getitem__)
    score0 = m0.count(chr(top % 128)) if top % 128 < 128 else 0
    score1 = m1.count(chr(top % 128)) if top % 128 < 128 else 0
    if score0 == score1:
        return len(raw) % 2  # effectively a coin flip, deterministic
    return 0 if score0 > score1 else 1


def first_record_adversary(m0: str, m1: str, ciphertext: str) -> int:
    """Guess from the first data record's bytes (would work if the
    first block were deterministic in the message)."""
    raw = _ciphertext_bytes(ciphertext)
    probe = raw[17:34]  # the first data record
    return (probe[0] ^ probe[-1]) & 1 if probe else 0


def length_adversary(m0: str, m1: str, ciphertext: str) -> int:
    """The distinguisher that DOES work: ciphertext length tracks
    plaintext length (the leak SVI-A concedes)."""
    _, area = split_header(ciphertext)
    records = len(area) // RECORD_CHARS
    # expected data records for each candidate (b unknown: compare
    # against both hypotheses' relative sizes)
    return 0 if abs(len(m0) - len(m1)) and (
        abs(records * 8 - len(m0)) < abs(records * 8 - len(m1))
    ) else 1


# -- stronger attack categories ------------------------------------------------


def chosen_plaintext_game(
    adversary: Adversary,
    trials: int = 60,
    seed: int = 0,
) -> GameResult:
    """CPA variant: the adversary also receives encryptions of both
    candidate messages under the challenge key before guessing —
    randomization must make them useless."""
    rng = random.Random(seed)
    nonce_rng = DeterministicRandomSource(seed + 7)
    correct = 0
    for trial in range(trials):
        m0 = "".join(rng.choice("abcdefgh ") for _ in range(120))
        m1 = "".join(rng.choice("abcdefgh ") for _ in range(120))
        bit = rng.randrange(2)
        keys = KeyMaterial.from_password(f"cpa{trial}", salt=b"game-salt!",
                                         iterations=10)

        def oracle(message: str) -> str:
            return create_document(message, key_material=keys,
                                   scheme="recb", rng=nonce_rng).wire()

        challenge = oracle((m0, m1)[bit])
        # CPA's extra power: re-encrypt both candidates under the same
        # key and compare against the challenge.  Randomized encryption
        # must make the comparison useless — for a deterministic scheme
        # this matcher alone would win every trial.
        c0, c1 = oracle(m0), oracle(m1)
        if challenge == c0 and challenge != c1:
            guess = 0
        elif challenge == c1 and challenge != c0:
            guess = 1
        else:
            guess = adversary(m0, m1, challenge)
        if guess == bit:
            correct += 1
    return GameResult(trials=trials, correct=correct)


def chosen_ciphertext_oracle_leaks_nothing(
    trials: int = 40, seed: int = 0
) -> float:
    """CCA sanity check for RPC: every modified ciphertext submitted to
    the decryption oracle is *rejected*, so the oracle returns no
    information beyond validity (the paper's argument that CCA reduces
    to CPA).  Returns the fraction of tampered queries rejected
    (must be 1.0)."""
    from repro.security.attacks import flip_record_byte, swap_records

    rng = random.Random(seed)
    nonce_rng = DeterministicRandomSource(seed + 13)
    rejected = 0
    total = 0
    for trial in range(trials):
        keys = KeyMaterial.from_password(f"cca{trial}", salt=b"game-salt!",
                                         iterations=10)
        message = "".join(rng.choice("abcdefgh ") for _ in range(100))
        wire = create_document(message, key_material=keys, scheme="rpc",
                               rng=nonce_rng).wire()
        for tamper in (
            lambda w: flip_record_byte(w, rng.randrange(1, 5)),
            lambda w: swap_records(w, 1, 2),
        ):
            total += 1
            try:
                load_document(tamper(wire), key_material=keys)
            except ReproError:
                rejected += 1
    return rejected / total
