"""Quantifying what the adversary learns (SVI-A's concessions).

The scheme's security analysis concedes two leaks and claims two
mitigations; this module turns all four into measurements:

* **positional leakage** — cdeltas expose *which records* changed, so
  the server can estimate edit positions to within a block.  The paper
  claims multi-character blocks blur this ("the precise information
  about update positions is no longer revealed"):
  :func:`positional_error` measures the estimation error as a function
  of block size.
* **timing leakage** — periodic autosaves quantize edit times:
  :func:`timing_granularity` confirms the adversary sees only save
  instants.
* **ciphertext pseudorandomness** — :func:`byte_uniformity` runs a
  chi-square statistic over ciphertext record bytes, and
  :func:`equal_plaintext_distinct_ciphertext` confirms the nonce
  randomization (identical plaintext blocks never produce identical
  records).
"""

from __future__ import annotations

import random

import numpy as np

from repro.core.delta import Delta, Retain
from repro.core.document import EncryptedDocument, create_document
from repro.core.keys import KeyMaterial
from repro.encoding import base32
from repro.encoding.wire import RECORD_CHARS, split_header

__all__ = [
    "estimate_edit_position",
    "positional_error",
    "timing_granularity",
    "byte_uniformity",
    "equal_plaintext_distinct_ciphertext",
    "shannon_entropy_per_byte",
]


def estimate_edit_position(cdelta: Delta, header_chars: int,
                           block_chars: int) -> int:
    """The adversary's best estimate of an edit's character position.

    First rewritten record index × average block fill.  (The server
    knows ``block_chars`` from the plaintext document header.)
    """
    cursor = 0
    for op in cdelta.ops:
        if isinstance(op, Retain):
            cursor += op.count
        else:
            break
    first_record = max(0, (cursor - header_chars) // RECORD_CHARS - 1)
    return first_record * block_chars


def positional_error(
    document: EncryptedDocument,
    trials: int,
    seed: int = 0,
) -> float:
    """Mean |estimated − true| edit position over random 1-char inserts.

    The document is copied implicitly — edits are applied and measured
    in sequence, so the document evolves as a real one would.
    """
    rng = random.Random(seed)
    header_chars = document.wire_length() - (
        document.block_count + 2
    ) * RECORD_CHARS  # approximation: header + bookkeeping prefix
    errors = []
    for _ in range(trials):
        pos = rng.randint(0, document.char_length - 1)
        cdelta = document.insert(pos, rng.choice("abcdefgh"))
        estimate = estimate_edit_position(
            cdelta, header_chars, document.block_chars
        )
        errors.append(abs(estimate - pos))
    return sum(errors) / len(errors)


def timing_granularity(edit_times: list[float],
                       save_times: list[float]) -> float:
    """The adversary's mean timing uncertainty per edit: distance from
    each true edit instant to the save instant that revealed it."""
    if not edit_times:
        return 0.0
    total = 0.0
    for t in edit_times:
        later = [s for s in save_times if s >= t]
        total += (min(later) - t) if later else 0.0
    return total / len(edit_times)


def byte_uniformity(wire_text: str) -> float:
    """Chi-square statistic (normalized) of ciphertext byte frequencies.

    Decodes the record area back to bytes and compares the byte
    histogram against uniform; returns the statistic divided by its
    degrees of freedom (~1.0 for random data, >> 1 for structured)."""
    _, area = split_header(wire_text)
    raw = b"".join(
        base32.decode(area[i : i + RECORD_CHARS])[1:]  # skip count header
        for i in range(0, len(area), RECORD_CHARS)
    )
    if len(raw) < 512:
        raise ValueError("need at least 512 ciphertext bytes to test")
    counts = np.bincount(np.frombuffer(raw, dtype=np.uint8), minlength=256)
    expected = len(raw) / 256.0
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    return chi2 / 255.0


def equal_plaintext_distinct_ciphertext(
    text_block: str,
    repetitions: int,
    key_material: KeyMaterial,
    scheme: str = "recb",
    rng=None,
) -> bool:
    """Encrypt a document of ``repetitions`` identical blocks; True iff
    every ciphertext record is distinct (the randomization property a
    deterministic ECB would fail)."""
    doc = create_document(
        text_block * repetitions,
        key_material=key_material,
        scheme=scheme,
        block_chars=len(text_block),
        rng=rng,
    )
    _, area = split_header(doc.wire())
    records = {
        area[i : i + RECORD_CHARS]
        for i in range(0, len(area), RECORD_CHARS)
    }
    return len(records) == len(area) // RECORD_CHARS


def encryption_score(content: str) -> float:
    """A plausible server-side "this looks encrypted" detector.

    Heuristics a provider could cheaply run over stored content: a PE1
    wire header is a giveaway; otherwise an uppercase/digit wall with no
    spaces (Base32 ciphertext) scores high while prose — and the stego
    encoding of :mod:`repro.encoding.stego` — scores near zero.
    Returns a score in [0, 1]; :data:`ENCRYPTION_THRESHOLD` is the
    suggested rejection cut-off.
    """
    from repro.encoding.wire import looks_encrypted

    if not content:
        return 0.0
    if looks_encrypted(content):
        return 1.0
    sample = content[:4096]
    upper_digit = sum(
        1 for ch in sample if ch.isupper() or ch.isdigit()
    ) / len(sample)
    space_ratio = sample.count(" ") / len(sample)
    return min(1.0, 0.7 * upper_digit + 0.3 * (1.0 - min(space_ratio / 0.12, 1.0)))


#: score above which a censoring server refuses to store content
ENCRYPTION_THRESHOLD = 0.5


def shannon_entropy_per_byte(wire_text: str) -> float:
    """Empirical byte entropy of the ciphertext record area (bits)."""
    _, area = split_header(wire_text)
    raw = b"".join(
        base32.decode(area[i : i + RECORD_CHARS])[1:]
        for i in range(0, len(area), RECORD_CHARS)
    )
    counts = np.bincount(np.frombuffer(raw, dtype=np.uint8), minlength=256)
    probs = counts[counts > 0] / len(raw)
    return float(-(probs * np.log2(probs)).sum())
