"""Security harness: adversary models, active-attack constructions,
covert channels, and leakage quantification (SII, SVI)."""

from repro.security.adversary import (
    ActiveServerAdversary,
    EavesdropperTap,
    HonestButCuriousServer,
    ObservedUpdate,
)
from repro.security.analysis import (
    byte_uniformity,
    equal_plaintext_distinct_ciphertext,
    estimate_edit_position,
    positional_error,
    shannon_entropy_per_byte,
    timing_granularity,
)
from repro.security.attacks import (
    build_colliding_document,
    excise_cancelling_segment,
    flip_record_byte,
    remove_record,
    replicate_record,
    splice_documents,
    swap_records,
    verify_without_length_amendment,
)
from repro.security.games import (
    GameResult,
    chosen_ciphertext_oracle_leaks_nothing,
    chosen_plaintext_game,
    ind_game,
)
from repro.security.covert import (
    ChannelReport,
    DeltaShapeChannel,
    LengthChannel,
    TimingChannel,
    measure_channel,
    random_symbols,
)

__all__ = [
    "EavesdropperTap",
    "ObservedUpdate",
    "HonestButCuriousServer",
    "ActiveServerAdversary",
    "replicate_record",
    "remove_record",
    "swap_records",
    "flip_record_byte",
    "splice_documents",
    "build_colliding_document",
    "excise_cancelling_segment",
    "verify_without_length_amendment",
    "DeltaShapeChannel",
    "LengthChannel",
    "TimingChannel",
    "ChannelReport",
    "measure_channel",
    "random_symbols",
    "estimate_edit_position",
    "positional_error",
    "timing_granularity",
    "byte_uniformity",
    "equal_plaintext_distinct_ciphertext",
    "shannon_entropy_per_byte",
    "GameResult",
    "ind_game",
    "chosen_plaintext_game",
    "chosen_ciphertext_oracle_leaks_nothing",
]
