"""Covert channels of the malicious-client model (SVI-B), measurably.

A malicious client cannot send plaintext — the mediator encrypts or
drops everything — but it controls *how* it expresses its updates, and
three properties of the encrypted traffic remain adversary-visible:

* **delta shape** — the structure of the cdelta (how many records were
  rewritten).  The paper's example encodes ``Ord(q)`` in redundant
  operations; our variant encodes a symbol by deleting-and-reinserting
  ``k`` characters of existing text (semantically a no-op, so the user
  sees nothing, but the cdelta's patch size reveals ``k``).
* **message length** — request body size modulated by invisible content.
* **timing** — update send-times modulated to carry bits.

Each channel is an encoder (malicious-client side) plus a decoder
(server side, reading only adversary-visible observations), and
:func:`measure_channel` reports its empirical accuracy with any
:class:`~repro.extension.countermeasures.Countermeasures` configuration
— the ablation quantifying the paper's mitigation claims.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.delta import Delete, Delta, Insert, Retain
from repro.encoding.wire import RECORD_CHARS

__all__ = [
    "DeltaShapeChannel",
    "LengthChannel",
    "TimingChannel",
    "measure_channel",
]


class DeltaShapeChannel:
    """Encode symbols in the size of a semantically void patch.

    To send symbol ``k`` (in 0..15) alongside a real edit, the client
    deletes the first ``k * block_chars`` characters of the document and
    reinserts them verbatim, then appends the real edit.  The document
    is unchanged where the user didn't edit, but the server sees a
    ``k``-times-larger rewritten record range at position 0.
    """

    SYMBOLS = 16

    def __init__(self, block_chars: int = 8):
        self._block_chars = block_chars

    def encode(self, symbol: int, document: str, real_edit: Delta) -> Delta:
        """Wrap ``real_edit`` in a churn prefix carrying ``symbol``."""
        if not 0 <= symbol < self.SYMBOLS:
            raise ValueError(f"symbol {symbol} out of range")
        churn = symbol * self._block_chars
        if churn > len(document):
            raise ValueError("document too short to carry this symbol")
        ops: list = []
        if churn:
            ops.append(Delete(churn))
            ops.append(Insert(document[:churn]))
        # Re-anchor the real edit after the churn prefix: its leading
        # retain must not re-count the churned characters.
        first, *rest = real_edit.ops or (None,)
        if isinstance(first, Retain):
            if first.count < churn:
                raise ValueError(
                    "real edit must start at or after the churn prefix"
                )
            if first.count > churn:
                ops.append(Retain(first.count - churn))
            ops.extend(rest)
        elif first is not None:
            if churn:
                raise ValueError(
                    "real edit must start at or after the churn prefix"
                )
            ops.append(first)
            ops.extend(rest)
        return Delta(ops)

    def decode(self, cdelta: Delta, noise_floor: int = 0) -> int:
        """Server side: symbol = records deleted, minus the calibrated
        honest-edit noise floor (measure it by sending symbol 0 first)."""
        deleted_records = sum(
            op.count for op in cdelta.ops if isinstance(op, Delete)
        ) // RECORD_CHARS
        return max(0, min(self.SYMBOLS - 1, deleted_records - noise_floor))


class LengthChannel:
    """Encode one bit per save in the parity of invisible padding.

    The malicious client appends trailing spaces to the document before
    the save — one block's worth for a 1 bit, two blocks' worth for a 0
    (invisible in any editor rendering, but enough to move the stored
    record count).  The server reads the bit off the record-count
    parity.
    """

    def __init__(self, block_chars: int = 8):
        self._block_chars = block_chars

    def encode(self, bit: int, document: str) -> str:
        """Return the (invisibly) modified document to be saved."""
        stripped = document.rstrip(" ")
        pad = self._block_chars if bit else 2 * self._block_chars
        # Align the visible text to a block boundary first so the pad
        # occupies exactly 1 or 2 whole records.
        remainder = len(stripped) % self._block_chars
        if remainder:
            pad += self._block_chars - remainder
        return stripped + " " * pad

    def decode(self, record_count: int) -> int:
        """Server side: the padded document's record-count parity."""
        return record_count % 2


class TimingChannel:
    """Encode bits in save timing: bit 1 = delay ~0.4 s, bit 0 = none."""

    def __init__(self, bit_delay: float = 0.4, threshold: float = 0.2):
        self.bit_delay = bit_delay
        self._threshold = threshold

    def encode_delay(self, bit: int) -> float:
        """Extra delay the malicious client adds to encode ``bit``."""
        return self.bit_delay if bit else 0.0

    def decode(self, gap: float, base_gap: float) -> int:
        """Server side: compare the observed inter-save gap to the
        honest baseline."""
        return 1 if gap - base_gap > self._threshold else 0


@dataclass
class ChannelReport:
    """Outcome of a covert-channel measurement."""

    symbols_sent: int
    symbols_correct: int
    bits_per_symbol: float

    @property
    def accuracy(self) -> float:
        if self.symbols_sent == 0:
            return 0.0
        return self.symbols_correct / self.symbols_sent

    @property
    def effective_bits_per_update(self) -> float:
        """Crude capacity estimate: perfect channel → bits_per_symbol,
        coin-flip accuracy → ~0."""
        edge = max(0.0, 2.0 * self.accuracy - 1.0)
        return self.bits_per_symbol * edge


def measure_channel(
    send_and_observe,
    symbols: list[int],
    bits_per_symbol: float,
) -> ChannelReport:
    """Generic harness: ``send_and_observe(symbol) -> decoded_symbol``."""
    correct = 0
    for symbol in symbols:
        if send_and_observe(symbol) == symbol:
            correct += 1
    return ChannelReport(
        symbols_sent=len(symbols),
        symbols_correct=correct,
        bits_per_symbol=bits_per_symbol,
    )


def random_symbols(count: int, alphabet: int, seed: int = 0) -> list[int]:
    """Deterministic random symbol sequence for channel measurements."""
    rng = random.Random(seed)
    return [rng.randrange(alphabet) for _ in range(count)]
