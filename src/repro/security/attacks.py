"""Active-attack constructions against stored ciphertext (SVI-A).

These functions build the tampered documents the security analysis
reasons about: record replication, reordering, truncation, cross-
document splicing, bit flips — the attacks rECB cannot withstand and
RPC must detect.

The module also demonstrates *why the length amendment matters*
(Wang–Kao–Yeh [35]): :func:`build_colliding_document` manufactures an
RPC document containing a nonce-colliding segment whose XOR
contributions cancel, and :func:`excise_cancelling_segment` removes it.
The forgery passes every unamended check
(:func:`verify_without_length_amendment`) yet is caught by the full
verifier, because the excision changes the document length bound into
the checksum block.
"""

from __future__ import annotations

from repro.core import blocks
from repro.core.nonces import RPC_NONCE_BYTES, xor_bytes
from repro.core.rpc import RpcCodec, RpcState
from repro.crypto.blockcipher import AesCipher
from repro.crypto.random import RandomSource
from repro.encoding.wire import (
    RECORD_CHARS,
    DocumentHeader,
    Record,
    encode_records,
    split_header,
)
from repro.errors import IntegrityError

__all__ = [
    "replicate_record",
    "remove_record",
    "swap_records",
    "flip_record_byte",
    "splice_documents",
    "build_colliding_document",
    "excise_cancelling_segment",
    "verify_without_length_amendment",
]


def _records_of(wire_text: str) -> tuple[str, list[str]]:
    """Split a wire document into its header text and record chunks."""
    _, area = split_header(wire_text)
    header_text = wire_text[: len(wire_text) - len(area)]
    chunks = [
        area[i : i + RECORD_CHARS] for i in range(0, len(area), RECORD_CHARS)
    ]
    return header_text, chunks


def replicate_record(wire_text: str, rank: int) -> str:
    """Duplicate one record in place (the replication attack)."""
    header, recs = _records_of(wire_text)
    return header + "".join(recs[: rank + 1] + [recs[rank]] + recs[rank + 1 :])


def remove_record(wire_text: str, rank: int) -> str:
    """Drop one record (truncation within the document)."""
    header, recs = _records_of(wire_text)
    return header + "".join(recs[:rank] + recs[rank + 1 :])


def swap_records(wire_text: str, i: int, j: int) -> str:
    """Reorder two records."""
    header, recs = _records_of(wire_text)
    recs[i], recs[j] = recs[j], recs[i]
    return header + "".join(recs)


def flip_record_byte(wire_text: str, rank: int, offset: int = 0) -> str:
    """Corrupt one character of one record (keeping a valid Base32
    alphabet character so the corruption is not a parse error)."""
    header, recs = _records_of(wire_text)
    record = recs[rank]
    old = record[offset]
    new = "A" if old != "A" else "B"
    recs[rank] = record[:offset] + new + record[offset + 1 :]
    return header + "".join(recs)


def splice_documents(wire_a: str, wire_b: str, keep_a: int) -> str:
    """Graft the tail of document B onto the first ``keep_a`` records of
    document A (both under the same key)."""
    header_a, recs_a = _records_of(wire_a)
    _, recs_b = _records_of(wire_b)
    return header_a + "".join(recs_a[:keep_a] + recs_b[keep_a:])


# ---------------------------------------------------------------------------
# The forgery the length amendment defeats
# ---------------------------------------------------------------------------


class _RiggedNonceSource:
    """RandomSource returning scripted nonces, then deferring to a real
    source — how the attack construction forces nonce collisions.

    (An actual attacker cannot force collisions, but with 32-bit nonces
    they occur naturally by the birthday bound within ~2^16 blocks; the
    rig just makes the demonstration deterministic.)
    """

    def __init__(self, scripted: list[bytes], fallback: RandomSource):
        self._buffer = b"".join(scripted)
        self._fallback = fallback

    def token(self, nbytes: int) -> bytes:
        out = bytearray()
        take = min(nbytes, len(self._buffer))
        out += self._buffer[:take]
        self._buffer = self._buffer[take:]
        if len(out) < nbytes:
            out += self._fallback.token(nbytes - len(out))
        return bytes(out)


def build_colliding_document(
    key: bytes,
    rng: RandomSource,
    filler: str = "abcdefgh",
    duplicated: str = "DUPDUPDU",
    amended: bool = True,
) -> tuple[str, DocumentHeader]:
    """Build an RPC wire document with a cancelling segment.

    Layout: ``[filler, duplicated, duplicated, filler]`` where the two
    ``duplicated`` blocks share one nonce value ``v`` as both lead and
    tail, and carry identical payloads.  Excising them leaves a valid
    chain with unchanged XOR aggregates — only the *length* differs.

    ``amended=False`` writes the checksum as the *original* (pre-[35])
    RPC scheme would — without the document length folded in — which is
    the configuration the forgery defeats.
    """
    if len(duplicated) != blocks.PAYLOAD_BYTES:
        raise ValueError("duplicated chunk must fill a whole block")
    codec = RpcCodec(key, rng)
    state = codec.fresh_state()
    v = rng.token(RPC_NONCE_BYTES)
    first_lead = rng.token(RPC_NONCE_BYTES)
    # encrypt_span draws interior nonces from the rng: script the three
    # interior leads to the same value v, so the duplicated pair reads
    # (v, dup, v)(v, dup, v) and excising it re-links the chain at v.
    codec._rng = _RiggedNonceSource([v, v, v], codec._rng)
    chunks = [filler, duplicated, duplicated, filler]
    triples = codec.encrypt_span(state, chunks, first_lead, state.r0)
    for record, lead, payload in triples:
        state.add_block(lead, payload, record.char_count)
    if amended:
        suffix = codec.suffix(state)
    else:
        block = AesCipher(key).encrypt_block(
            xor_bytes(state.r0, state.lead_xor)
            + state.payload_xor
            + state.lead_xor
        )
        suffix = [Record(char_count=0, block=block)]
    records = (
        codec.prefix(state, first_lead)
        + [record for record, _, _ in triples]
        + suffix
    )
    header = DocumentHeader(
        scheme="rpc", block_chars=blocks.MAX_BLOCK_CHARS,
        nonce_bits=RPC_NONCE_BYTES * 8, salt=b"\x00" * 10,
    )
    return header.encode() + encode_records(records), header


def excise_cancelling_segment(wire_text: str) -> str:
    """The server's forgery: silently remove the duplicated pair
    (records 2 and 3 of the data area: start record is index 0)."""
    header, recs = _records_of(wire_text)
    return header + "".join(recs[:2] + recs[4:])


def verify_without_length_amendment(wire_text: str, key: bytes) -> str:
    """Verify an RPC document as the *unamended* scheme would.

    Checks the start marker, the full nonce chain with circular closure,
    and both XOR aggregates in the checksum block — everything except
    the document-length binding [35] adds.  Returns the decrypted text
    on success, raises :class:`IntegrityError` otherwise.
    """
    from repro.core.rpc import ALPHA

    _, area = split_header(wire_text)
    cipher = AesCipher(key)
    records = [
        Record(char_count=ord_byte, block=block)
        for ord_byte, block in _decode_area(area)
    ]
    start_plain = cipher.decrypt_block(records[0].block)
    if start_plain[RPC_NONCE_BYTES : RPC_NONCE_BYTES + len(ALPHA)] != ALPHA:
        raise IntegrityError("unamended verify: start marker mismatch")
    r0 = start_plain[:RPC_NONCE_BYTES]
    expected = start_plain[RPC_NONCE_BYTES + len(ALPHA) :]

    state = RpcState(r0=r0)
    text: list[str] = []
    for record in records[1:-1]:
        plain = cipher.decrypt_block(record.block)
        lead = plain[:RPC_NONCE_BYTES]
        payload = plain[RPC_NONCE_BYTES : RPC_NONCE_BYTES + blocks.PAYLOAD_BYTES]
        tail = plain[RPC_NONCE_BYTES + blocks.PAYLOAD_BYTES :]
        if lead != expected:
            raise IntegrityError("unamended verify: chain broken")
        chunk = blocks.unpack_chars(payload)
        state.add_block(lead, payload, len(chunk))
        text.append(chunk)
        expected = tail
    if expected != r0:
        raise IntegrityError("unamended verify: chain does not close")

    check = cipher.decrypt_block(records[-1].block)
    if check[:RPC_NONCE_BYTES] != xor_bytes(state.r0, state.lead_xor):
        raise IntegrityError("unamended verify: nonce aggregate mismatch")
    if check[RPC_NONCE_BYTES + blocks.PAYLOAD_BYTES :] != state.lead_xor:
        raise IntegrityError("unamended verify: lead-XOR field mismatch")
    got = check[RPC_NONCE_BYTES : RPC_NONCE_BYTES + blocks.PAYLOAD_BYTES]
    # The unamended checksum binds only the payload XOR — no length.
    if got != state.payload_xor:
        raise IntegrityError("unamended verify: payload aggregate mismatch")
    return "".join(text)


def _decode_area(area: str) -> list[tuple[int, bytes]]:
    from repro.encoding import base32

    out: list[tuple[int, bytes]] = []
    for i in range(0, len(area), RECORD_CHARS):
        raw = base32.decode(area[i : i + RECORD_CHARS])
        out.append((raw[0], raw[1:]))
    return out
