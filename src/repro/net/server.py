"""An asyncio socket server hosting any registry backend.

This is the other end of :class:`repro.net.transport.AsyncioSocketTransport`:
a single-process TCP server that accepts length-prefixed HTTP-form
frames (see :mod:`repro.net.transport` for the format) and routes each
embedded request into a simulated provider from
:mod:`repro.services.registry`.

Two axes of scale:

* **Multi-tenant** — the ``tn`` frame field partitions server state.
  Each (service, tenant) pair gets its own lazily-created backend
  universe, so thousands of principals share one process without
  sharing a byte of document state.
* **Document-sharded** — within a tenant, documents hash onto
  ``shards`` independent backend instances, each with a dedicated
  single-thread executor.  Requests for one document are therefore
  *serialized* (the provider's per-doc ordering guarantees hold
  without any backend knowing about threads), while requests for
  different documents run concurrently across shards.  Sharding whole
  backend instances is sound because every registered provider keeps
  all state for a document inside the instance that owns it — there is
  no cross-document state to split.

``service_time`` models the provider's per-request handling latency as
a non-blocking ``asyncio.sleep``: the event loop overlaps thousands of
in-flight waits, which is exactly the behaviour that lets aggregate
throughput scale far past a single synchronous session (the effect
``benchmarks/bench_load.py`` measures).

The trust boundary is unchanged: this module lives on the *untrusted*
side, sees only ciphertext, and must never import the trusted layer —
``tools/layering_check.py`` enforces it.

:class:`ServerThread` runs the whole loop on a background thread for
tests and the in-process load generator; ``repro serve`` runs it in the
foreground.
"""

from __future__ import annotations

import asyncio
import threading
import zlib
from concurrent.futures import ThreadPoolExecutor

from repro.encoding.formenc import encode_form, parse_form
from repro.errors import ProtocolError
from repro.net.http import HttpResponse
from repro.net.pool import MAX_FRAME_BYTES
from repro.net.transport import (
    OP_HTTP,
    OP_PING,
    OP_VIEW,
    decode_request_frame,
    encode_response_frame,
)
from repro.obs import counter, gauge, histogram
from repro.services import registry
from repro.services.catalog import CatalogService, CatalogStore

__all__ = ["ReproServer", "ServerThread"]

_FRAMES = counter("net.server.frames")
_FRAME_BYTES = counter("net.server.frame_bytes")
_CONNECTIONS = counter("net.server.connections")
_ERRORS = counter("net.server.errors")
_DISPATCHES = counter("server.shard.dispatches")
_INSTANCES = gauge("server.shard.instances")
_QUEUE_SECONDS = histogram("server.shard.queue_seconds")


class ReproServer:
    """The asyncio frame server: tenants × services × document shards.

    ``shards`` backend instances exist per (service, tenant), created
    lazily on first touch; ``service_time`` adds that many seconds of
    simulated (non-blocking) handling latency to every ``op=http``
    request.
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 shards: int = 4, service_time: float = 0.0,
                 merge_concurrent: bool = False):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.host = host
        self.port = port
        self.shards = shards
        self.service_time = service_time
        #: hosted backends that support it run the server-side OT merge
        #: path for stale saves (repro.services.ot)
        self.merge_concurrent = merge_concurrent
        self._lock = threading.Lock()
        # (service, tenant, shard) -> backend instance
        self._instances: dict[tuple[str, str, int], object] = {}
        # (service, tenant) -> the catalog shared by that pair's shards:
        # document state is sharded, but listings / search / audit
        # chains are tenant-global (CatalogStore locks internally, so
        # cross-shard executor threads share it safely)
        self._catalogs: dict[tuple[str, str], CatalogStore] = {}
        # one single-thread executor per shard index: per-doc apply is
        # serialized, cross-doc apply is concurrent
        self._executors = [
            ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"repro-shard-{i}"
            )
            for i in range(shards)
        ]
        self._server: asyncio.base_events.Server | None = None

    # -- routing ---------------------------------------------------------

    def _shard_of(self, tenant: str, doc_id: str) -> int:
        key = f"{tenant}/{doc_id}".encode("utf-8")
        return zlib.crc32(key) % self.shards

    def _instance(self, service: str, tenant: str, shard: int):
        key = (service, tenant, shard)
        with self._lock:
            inst = self._instances.get(key)
            if inst is None:
                merging = self.merge_concurrent and registry.backend_for(
                    service).capabilities.merges_stale_saves
                store = self._catalogs.get((service, tenant))
                if store is None:
                    store = CatalogStore()
                    self._catalogs[(service, tenant)] = store
                inst = CatalogService(
                    registry.make_server(service, merge_concurrent=merging),
                    store=store,
                )
                self._instances[key] = inst
                _INSTANCES.add(1)
            return inst

    @property
    def instance_count(self) -> int:
        """Backend instances created so far (lazily, on first touch)."""
        with self._lock:
            return len(self._instances)

    # -- dispatch --------------------------------------------------------

    async def _dispatch(self, fields: dict[str, str]) -> dict[str, str]:
        """One frame in, one frame out; never raises."""
        rid = fields.get("id", "")
        op = fields.get("op", OP_HTTP)
        service = fields.get("svc", "")
        tenant = fields.get("tn", "default")
        if service not in registry.SERVICE_NAMES:
            _ERRORS.inc()
            return {"id": rid, "e": f"unknown service {service!r}"}
        if op == OP_PING:
            return encode_response_frame(
                HttpResponse(status=200, body="pong"), rid=rid
            )
        loop = asyncio.get_running_loop()
        if op == OP_VIEW:
            doc_id = fields.get("doc", "")
            shard = self._shard_of(tenant, doc_id)
            inst = self._instance(service, tenant, shard)
            _DISPATCHES.inc()
            queued = loop.time()
            try:
                stored = await loop.run_in_executor(
                    self._executors[shard],
                    registry.server_view, service, inst, doc_id,
                )
            except Exception as exc:  # backend crash must not kill the loop
                _ERRORS.inc()
                return encode_response_frame(
                    HttpResponse(status=500, body=f"view failed: {exc}"),
                    rid=rid,
                )
            _QUEUE_SECONDS.observe(loop.time() - queued)
            return encode_response_frame(
                HttpResponse(status=200, body=stored), rid=rid
            )
        if op != OP_HTTP:
            _ERRORS.inc()
            return {"id": rid, "e": f"unknown op {op!r}"}
        try:
            request = decode_request_frame(fields)
        except ProtocolError as exc:
            _ERRORS.inc()
            return {"id": rid, "e": str(exc)}
        backend = registry.backend_for(service)
        doc_id = backend.doc_id_of(request) or ""
        shard = self._shard_of(tenant, doc_id)
        inst = self._instance(service, tenant, shard)
        if self.service_time > 0:
            # the provider "working": non-blocking, so ten thousand of
            # these overlap on one event loop
            await asyncio.sleep(self.service_time)
        _DISPATCHES.inc()
        queued = loop.time()
        try:
            response = await loop.run_in_executor(
                self._executors[shard], inst, request
            )
        except Exception as exc:
            _ERRORS.inc()
            response = HttpResponse(status=500, body=f"server error: {exc}")
        _QUEUE_SECONDS.observe(loop.time() - queued)
        return encode_response_frame(response, rid=rid)

    # -- the connection loop ---------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        _CONNECTIONS.inc()
        wlock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def _answer(fields: dict[str, str]) -> None:
            reply = await self._dispatch(fields)
            payload = encode_form(reply).encode("utf-8")
            async with wlock:
                writer.write(b"%d\n" % len(payload) + payload)
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass  # peer went away mid-write; reader loop will end

        try:
            while True:
                try:
                    header = await reader.readline()
                except (ConnectionError, OSError, asyncio.LimitOverrunError):
                    break
                if not header:
                    break
                try:
                    length = int(header)
                    if not 0 <= length <= MAX_FRAME_BYTES:
                        raise ValueError(length)
                except ValueError:
                    _ERRORS.inc()
                    break  # framing lost — drop the connection
                try:
                    payload = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break
                _FRAMES.inc()
                _FRAME_BYTES.inc(len(payload))
                try:
                    fields = parse_form(payload.decode("utf-8"))
                except (ProtocolError, UnicodeDecodeError):
                    _ERRORS.inc()
                    fields = {"id": "", "op": "?"}
                # one task per frame: responses may complete (and be
                # written) out of order — that is the pipelining
                task = asyncio.ensure_future(_answer(fields))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except asyncio.CancelledError:
            pass  # server shutting down — close this connection quietly
        finally:
            for task in tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Bind (if needed) and serve until cancelled (``repro serve``)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    def shutdown(self) -> None:
        """Stop executors (after the loop itself has stopped)."""
        for pool in self._executors:
            pool.shutdown(wait=False)


class ServerThread:
    """Run a :class:`ReproServer` event loop on a background thread.

    ``with ServerThread(shards=4) as (host, port): ...`` — tests and the
    load generator self-host the socket stack this way; ``repro serve``
    uses :meth:`ReproServer.serve_forever` directly instead.
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 shards: int = 4, service_time: float = 0.0,
                 merge_concurrent: bool = False):
        self.server = ReproServer(
            host=host, port=port, shards=shards, service_time=service_time,
            merge_concurrent=merge_concurrent,
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._failed: BaseException | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self.server.host, self.server.port

    def start(self) -> tuple[str, int]:
        """Start the loop thread; returns the bound (host, port)."""
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-server"
        )
        self._thread.start()
        if not self._ready.wait(10.0):
            raise RuntimeError("server thread failed to start")
        if self._failed is not None:
            raise RuntimeError(f"server failed to bind: {self._failed}")
        return self.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._failed = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            srv = self.server._server
            if srv is not None:
                srv.close()
                loop.run_until_complete(srv.wait_closed())
            # drain connection-handler tasks so the loop closes clean
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def stop(self) -> None:
        """Stop the loop, join the thread, shut the executors down."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.server.shutdown()

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
