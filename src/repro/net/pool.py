"""Pooled, pipelined client connections for the socket transport.

One editing session performs one request at a time, but a load of ten
thousand concurrent sessions must not mean ten thousand sockets.  The
:class:`ConnectionPool` multiplexes every caller over a small, bounded
set of TCP connections, and *pipelines* within each one: a connection
admits up to ``window`` requests in flight simultaneously (a
per-connection sliding window), writes are serialized under a lock, and
a dedicated reader thread matches responses — which may complete in any
order — back to their callers by request id.

Failure semantics are deliberately the resilient client's native
dialect: a window that never opens, an answer that never arrives, or a
connection that dies mid-flight all surface as
:class:`~repro.errors.NetworkTimeoutError` — indistinguishable from the
fault plan's ``drop``/``blackhole`` weather, and therefore already
covered by the retry policy, idempotency keys, and the server's replay
cache.  A dead connection is discarded and transparently replaced (one
reconnect attempt per request; counted under ``client.pool.reconnects``).

Thread-safe throughout: any number of sessions (or load-generator
workers) may call :meth:`ConnectionPool.request` concurrently.
"""

from __future__ import annotations

import itertools
import socket
import threading

from repro.encoding.formenc import encode_form, parse_form
from repro.errors import NetworkTimeoutError, ProtocolError
from repro.obs import counter, gauge

__all__ = ["ConnectionPool", "read_frame", "write_frame", "MAX_FRAME_BYTES"]

_CONNECTS = counter("client.pool.connects")
_RECONNECTS = counter("client.pool.reconnects")
_SENDS = counter("client.pool.sends")
_PIPELINED = counter("client.pool.pipelined")
_WINDOW_WAITS = counter("client.pool.window_waits")
_TIMEOUTS = counter("client.pool.timeouts")
_INFLIGHT = gauge("client.pool.inflight")

#: refuse frames past this size — a garbage length prefix must not
#: look like an instruction to buffer gigabytes
MAX_FRAME_BYTES = 16 * 1024 * 1024


def write_frame(sock: socket.socket, payload: bytes) -> None:
    """Write one length-prefixed frame to a blocking socket."""
    sock.sendall(b"%d\n" % len(payload) + payload)


def read_frame(rfile) -> bytes | None:
    """Read one frame from a buffered binary reader; ``None`` on EOF.

    Raises :class:`~repro.errors.ProtocolError` on a malformed or
    oversized length prefix (the stream is unrecoverable past that
    point — framing is lost).
    """
    header = rfile.readline(32)
    if not header:
        return None
    try:
        length = int(header)
    except ValueError:
        raise ProtocolError(f"bad frame length {header!r}") from None
    if not 0 <= length <= MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} out of range")
    payload = rfile.read(length)
    if len(payload) != length:
        return None  # truncated mid-frame: treat as EOF
    return payload


class _Waiter:
    """One caller parked on a response id."""

    __slots__ = ("event", "fields", "error")

    def __init__(self):
        self.event = threading.Event()
        self.fields: dict[str, str] | None = None
        self.error: str | None = None

    def resolve(self, fields: dict[str, str]) -> None:
        self.fields = fields
        self.event.set()

    def fail(self, error: str) -> None:
        self.error = error
        self.event.set()


class _Connection:
    """One pipelined TCP connection: locked writes, reader thread,
    a bounded in-flight window, and id→waiter response matching."""

    def __init__(self, host: str, port: int, window: int, timeout: float):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(None)  # reader blocks; callers time out
        self._rfile = self._sock.makefile("rb")
        self._wlock = threading.Lock()
        self._plock = threading.Lock()
        self._window = threading.BoundedSemaphore(window)
        self._pending: dict[str, _Waiter] = {}
        self.inflight = 0
        self.dead = False
        _CONNECTS.inc()
        self._reader = threading.Thread(
            target=self._read_loop, daemon=True,
            name=f"repro-pool-reader-{id(self):x}",
        )
        self._reader.start()

    # -- caller side -----------------------------------------------------

    def request(self, rid: str, payload: bytes,
                timeout: float) -> dict[str, str]:
        """Send one frame and wait for the response frame with ``rid``."""
        if not self._window.acquire(timeout=timeout):
            _WINDOW_WAITS.inc()
            raise NetworkTimeoutError(
                f"connection window stalled for {timeout}s "
                f"({self.inflight} requests in flight)"
            )
        waiter = _Waiter()
        try:
            with self._plock:
                if self.dead:
                    raise ConnectionError("connection already dead")
                self._pending[rid] = waiter
                self.inflight += 1
                _INFLIGHT.add(1)
            try:
                with self._wlock:
                    write_frame(self._sock, payload)
            except OSError as exc:
                raise ConnectionError(f"send failed: {exc}") from exc
            if not waiter.event.wait(timeout):
                _TIMEOUTS.inc()
                raise NetworkTimeoutError(
                    f"no response within {timeout}s (request {rid})"
                )
            if waiter.error is not None:
                # the connection died with this request in flight: the
                # server may or may not have processed it — the same
                # ambiguity as a blackhole fault, resolved by retrying
                # under the idempotency key
                raise ConnectionError(waiter.error)
            return waiter.fields or {}
        finally:
            with self._plock:
                if self._pending.pop(rid, None) is not None:
                    self.inflight -= 1
                    _INFLIGHT.add(-1)
            self._window.release()

    # -- reader side -----------------------------------------------------

    def _read_loop(self) -> None:
        reason = "connection closed by peer"
        try:
            while True:
                payload = read_frame(self._rfile)
                if payload is None:
                    break
                fields = parse_form(payload.decode("utf-8"))
                rid = fields.get("id", "")
                with self._plock:
                    waiter = self._pending.pop(rid, None)
                    if waiter is not None:
                        self.inflight -= 1
                        _INFLIGHT.add(-1)
                if waiter is not None:
                    waiter.resolve(fields)
        except (OSError, ProtocolError, UnicodeDecodeError) as exc:
            reason = f"{type(exc).__name__}: {exc}"
        finally:
            self._fail_all(reason)

    def _fail_all(self, reason: str) -> None:
        with self._plock:
            self.dead = True
            pending, self._pending = self._pending, {}
            self.inflight -= len(pending)
            _INFLIGHT.add(-len(pending))
        for waiter in pending.values():
            waiter.fail(reason)
        try:
            self._sock.close()
        except OSError:
            pass

    def close(self) -> None:
        self._fail_all("pool closed")


class ConnectionPool:
    """A bounded set of pipelined connections to one server address.

    ``size`` caps the sockets; ``window`` caps requests in flight per
    connection, so total concurrency is ``size × window``.  Requests
    pick the least-loaded live connection (creating one lazily while
    under the cap), which both balances the pool and maximizes
    pipelining under load.
    """

    def __init__(self, host: str, port: int, *, size: int = 4,
                 window: int = 32, timeout: float = 10.0):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.host = host
        self.port = port
        self.size = size
        self.window = window
        self.timeout = timeout
        self._lock = threading.Lock()
        self._conns: list[_Connection] = []
        self._ids = itertools.count(1)
        self._closed = False

    # -- connection management -------------------------------------------

    def _pick(self) -> _Connection:
        with self._lock:
            if self._closed:
                raise NetworkTimeoutError("connection pool is closed")
            self._conns = [c for c in self._conns if not c.dead]
            idle = [c for c in self._conns if c.inflight == 0]
            if not idle and len(self._conns) < self.size:
                conn = _Connection(self.host, self.port, self.window,
                                   self.timeout)
                self._conns.append(conn)
                return conn
            conn = min(self._conns, key=lambda c: c.inflight)
            if conn.inflight > 0:
                _PIPELINED.inc()
            return conn

    @property
    def connections(self) -> int:
        """Live connections currently open."""
        with self._lock:
            return sum(1 for c in self._conns if not c.dead)

    # -- the one public operation ----------------------------------------

    def request(self, fields: dict[str, str],
                timeout: float | None = None) -> dict[str, str]:
        """Send one frame (a field dict) and return the response fields.

        Assigns the request id, routes to the least-loaded connection,
        and transparently replaces a connection that died under the
        request (one retry); unrecoverable delivery failures raise
        :class:`~repro.errors.NetworkTimeoutError`.
        """
        _SENDS.inc()
        deadline = timeout if timeout is not None else self.timeout
        last_error = "no connection"
        for attempt in range(2):
            rid = str(next(self._ids))
            payload = encode_form({**fields, "id": rid}).encode("utf-8")
            try:
                conn = self._pick()
            except OSError as exc:
                last_error = f"connect failed: {exc}"
                break
            try:
                return conn.request(rid, payload, deadline)
            except ConnectionError as exc:
                last_error = str(exc)
                _RECONNECTS.inc()
                continue
        _TIMEOUTS.inc()
        raise NetworkTimeoutError(
            f"pooled request failed ({last_error}); the server may or "
            f"may not have processed it"
        )

    def close(self) -> None:
        """Close every connection; subsequent requests fail fast."""
        with self._lock:
            self._closed = True
            conns, self._conns = self._conns, []
        for conn in conns:
            conn.close()
