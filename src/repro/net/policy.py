"""Retry, timeout, and backoff policy for the client stack.

Once the network can fail (:mod:`repro.net.faults`), the client needs a
disciplined answer to "try again, but not forever": capped exponential
backoff with jitter, bounded both by an attempt count and by a deadline
on the *simulated* clock.  Nothing here reads wall-clock time or the
module-global ``random`` — jitter flows from a seeded RNG and waiting
is ``clock.advance``, so every retry schedule replays exactly from its
seed (the same determinism contract as the fault plan).

A :class:`RetryPolicy` is immutable configuration; each logical
operation (one save, one open) gets a fresh :class:`RetryState` that
tracks its attempt count and deadline.  Retries of a *save* must ride
with an idempotency key (see ``docs/faults.md``) because a timed-out
request may still have been processed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.http import HttpResponse
from repro.net.latency import SimClock

__all__ = ["RetryPolicy", "RetryState", "retry_after_of",
           "RETRYABLE_STATUSES"]

#: statuses that signal a transient server condition worth retrying
RETRYABLE_STATUSES = frozenset({429, 500, 502, 503, 504})


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline-bounded exponential backoff with jitter (seeded).

    Defaults: up to 6 attempts, delays 0.25 s · 2^n capped at 8 s,
    ±50% jitter, all within a 45-simulated-second deadline per logical
    operation.  ``Retry-After`` on a 429/503 response raises the next
    delay to at least the server's ask.
    """

    max_attempts: int = 6
    base_delay: float = 0.25
    multiplier: float = 2.0
    max_delay: float = 8.0
    deadline: float = 45.0
    jitter: float = 0.5
    retry_statuses: frozenset[int] = RETRYABLE_STATUSES
    seed: int = 0
    #: mutable spawn counter shared across states so each RetryState
    #: gets a distinct (but still seed-determined) jitter stream
    _spawned: list[int] = field(default_factory=lambda: [0], repr=False,
                                compare=False)

    def make_state(self, clock: SimClock) -> "RetryState":
        """A fresh per-operation budget anchored at ``clock.now()``."""
        self._spawned[0] += 1
        return RetryState(self, clock,
                          seed=self.seed * 1_000_003 + self._spawned[0])

    def retryable(self, response: HttpResponse) -> bool:
        """Is this response a transient condition worth retrying?"""
        return response.status in self.retry_statuses


def retry_after_of(response: HttpResponse | None) -> float | None:
    """The server's Retry-After ask in seconds, if parseable."""
    if response is None:
        return None
    raw = response.headers.get("Retry-After")
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


class RetryState:
    """Attempt counter + deadline for one logical operation."""

    def __init__(self, policy: RetryPolicy, clock: SimClock, seed: int = 0):
        self.policy = policy
        self.clock = clock
        self.attempts = 1  # the initial try counts as attempt 1
        self._start = clock.now()
        self._rng = random.Random(seed)

    @property
    def elapsed(self) -> float:
        """Simulated seconds since the operation began."""
        return self.clock.now() - self._start

    def backoff(self, response: HttpResponse | None = None) -> float | None:
        """The next delay in seconds, or None when the budget is spent.

        Consumes one attempt.  The caller advances the clock by the
        returned delay (the channel's clock is the only time source).
        """
        policy = self.policy
        if self.attempts >= policy.max_attempts:
            return None
        delay = min(policy.max_delay,
                    policy.base_delay * policy.multiplier
                    ** (self.attempts - 1))
        if policy.jitter:
            delay *= 1.0 + policy.jitter * (2.0 * self._rng.random() - 1.0)
        asked = retry_after_of(response)
        if asked is not None:
            delay = max(delay, asked)
        if self.elapsed + delay > policy.deadline:
            return None
        self.attempts += 1
        return delay
