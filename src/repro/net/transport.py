"""The transport seam: how a request physically reaches the service.

Until PR 7 every exchange travelled through a direct in-process call —
``Channel`` held the simulated server as a Python callable and invoked
it.  That is still the default (and the reference semantics every fuzz
and chaos baseline is pinned against), but it is now one
:class:`Transport` among two:

* :class:`InProcessTransport` — wraps the in-process server callable.
  Byte-for-byte today's behaviour: no serialization, no copies, the
  response object is the very object the simulated server built.
* :class:`AsyncioSocketTransport` — speaks length-prefixed HTTP-form
  frames over TCP to a :class:`repro.net.server.ReproServer` (an
  asyncio socket server hosting any registry backend, multi-tenant and
  document-sharded).  Requests ride a shared
  :class:`repro.net.pool.ConnectionPool` — a bounded set of pipelined
  connections — so thousands of sessions multiplex over a handful of
  sockets and responses may complete out of order (each frame carries a
  request id that matches the answer back to its asker).

The trust story is unchanged: a transport sits *below* the mediating
extension, so only ciphertext ever enters :meth:`Transport.send`.  The
layering lint (``tools/layering_check.py``) enforces that nothing in
``repro.net`` imports the trusted layer, and that client code reaches a
server only through this seam.

## The frame format

One frame is ``b"<decimal length>\\n" + payload`` where the payload is
a UTF-8, form-encoded field dict (:mod:`repro.encoding.formenc` — the
same codec the save protocol itself uses, hence "HTTP-form frames").
Request fields: ``id`` (request id), ``op`` (``http`` / ``view`` /
``ping``), ``svc`` (registry service name), ``tn`` (tenant), and for
``op=http`` the embedded request as ``m``/``u``/``b``/``h`` (method,
URL, body, nested form-encoded headers).  Response fields: ``id``,
``s`` (status), ``b`` (body), ``h`` (headers), or ``e`` (a
transport-level error).  Transport-level failures — a dead connection,
a missing answer — surface as
:class:`~repro.errors.NetworkTimeoutError`, which is exactly what the
resilient client's retry machinery (idempotency keys included) already
knows how to survive.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.encoding.formenc import encode_form, parse_form
from repro.errors import ProtocolError
from repro.net.http import HttpRequest, HttpResponse
from repro.obs import counter

__all__ = [
    "Transport",
    "WireExchange",
    "InProcessTransport",
    "AsyncioSocketTransport",
    "encode_request_frame",
    "decode_request_frame",
    "encode_response_frame",
    "decode_response_frame",
    "OP_HTTP",
    "OP_VIEW",
    "OP_PING",
]

_REQUESTS = counter("net.transport.requests")
_REMOTE_REQUESTS = counter("net.transport.remote_requests")
_FRAME_BYTES = counter("net.transport.frame_bytes")
_VIEWS = counter("net.transport.views")
_ERRORS = counter("net.transport.errors")

#: frame operations (the `op` field)
OP_HTTP = "http"
OP_VIEW = "view"
OP_PING = "ping"


@dataclass(frozen=True)
class WireExchange:
    """One request/response pair as it crossed the transport seam.

    Duck-types as :class:`repro.net.channel.Exchange` for the observers
    in :mod:`repro.security` (an
    :class:`~repro.security.adversary.EavesdropperTap` reads
    ``request``/``response``/``sent_at``), but records what actually hit
    the wire — *below* the mediating extension, where only ciphertext
    should ever appear.
    """

    request: HttpRequest
    response: HttpResponse
    sent_at: float
    latency: float = 0.0


class Transport(ABC):
    """Delivers one :class:`HttpRequest` and returns the response.

    Instances are callable (``transport(request)``), so anything that
    used to hold a bare server callable — the :class:`~repro.net.channel.Channel`,
    a :class:`~repro.net.faults.FaultPlan` performing its own delivery —
    composes with a transport unchanged.
    """

    @abstractmethod
    def send(self, request: HttpRequest) -> HttpResponse:
        """One request/response exchange (may raise
        :class:`~repro.errors.NetworkTimeoutError`)."""

    def __call__(self, request: HttpRequest) -> HttpResponse:
        return self.send(request)

    def close(self) -> None:
        """Release transport resources (no-op by default)."""

    # -- wire observation ------------------------------------------------
    #
    # Subclasses don't call a base __init__, so the tap list is created
    # lazily: an untapped transport pays one getattr per send and
    # allocates nothing.

    @property
    def taps(self) -> tuple:
        """The wire observers attached to this transport."""
        return tuple(getattr(self, "_taps", ()))

    def add_tap(self, tap) -> None:
        """Attach a wire observer — a callable taking one exchange,
        same convention as :meth:`repro.net.channel.Channel.add_tap`
        (so :class:`repro.security.adversary.EavesdropperTap` plugs in
        unchanged).  Taps see every exchange this transport delivers,
        as a :class:`WireExchange`.  Observation only: taps cannot
        rewrite traffic, exactly like a passive network adversary."""
        taps = getattr(self, "_taps", None)
        if taps is None:
            taps = []
            self._taps = taps
        taps.append(tap)

    def _notify_taps(self, request: HttpRequest,
                     response: HttpResponse) -> None:
        taps = getattr(self, "_taps", None)
        if not taps:
            return
        exchange = WireExchange(request=request, response=response,
                                sent_at=time.monotonic())
        for tap in taps:
            tap(exchange)


class InProcessTransport(Transport):
    """Today's behaviour behind the new seam: a direct function call.

    No serialization, no copies — the response is the object the
    simulated server constructed, so every fuzz digest, chaos cell, and
    bench baseline recorded against the in-process stack is untouched.
    """

    def __init__(self, server):
        self._server = server

    @property
    def server(self):
        """The wrapped in-process server callable."""
        return self._server

    def send(self, request: HttpRequest) -> HttpResponse:
        """Invoke the wrapped server directly."""
        _REQUESTS.inc()
        response = self._server(request)
        self._notify_taps(request, response)
        return response


# -- the frame codec ----------------------------------------------------------


def encode_request_frame(request: HttpRequest, *, rid: str, service: str,
                         tenant: str = "default",
                         op: str = OP_HTTP) -> dict[str, str]:
    """The field dict for one outgoing request frame."""
    return {
        "id": rid,
        "op": op,
        "svc": service,
        "tn": tenant,
        "m": request.method,
        "u": request.url,
        "b": request.body,
        "h": encode_form(request.headers),
    }


def decode_request_frame(fields: dict[str, str]) -> HttpRequest:
    """Rebuild the embedded :class:`HttpRequest` from request fields."""
    try:
        return HttpRequest(
            method=fields["m"],
            url=fields["u"],
            body=fields.get("b", ""),
            headers=parse_form(fields.get("h", "")),
        )
    except KeyError as exc:
        raise ProtocolError(f"request frame missing field {exc}") from None


def encode_response_frame(response: HttpResponse, *,
                          rid: str) -> dict[str, str]:
    """The field dict for one response frame."""
    return {
        "id": rid,
        "s": str(response.status),
        "b": response.body,
        "h": encode_form(response.headers),
    }


def decode_response_frame(fields: dict[str, str]) -> HttpResponse:
    """Rebuild the :class:`HttpResponse` a response frame carries
    (raises :class:`~repro.errors.ProtocolError` on a frame-level
    ``e`` error or an unparseable status)."""
    if "e" in fields:
        raise ProtocolError(f"transport error: {fields['e']}")
    try:
        status = int(fields["s"])
    except (KeyError, ValueError):
        raise ProtocolError(
            f"response frame has no usable status: {fields!r}"
        ) from None
    return HttpResponse(
        status=status,
        body=fields.get("b", ""),
        headers=parse_form(fields.get("h", "")),
    )


# -- the socket transport -----------------------------------------------------


class AsyncioSocketTransport(Transport):
    """HTTP-form frames over TCP to a :class:`repro.net.server.ReproServer`.

    The client side is synchronous (the editing stack above it is), but
    requests are pooled and pipelined: many transports — one per
    session — share one :class:`~repro.net.pool.ConnectionPool`, whose
    reader threads match out-of-order responses back to their callers
    by request id.  ``service`` names the registry backend the hosted
    server should route to; ``tenant`` partitions the server's state so
    many principals share one process without sharing documents.
    """

    def __init__(self, host: str, port: int, *, service: str = "gdocs",
                 tenant: str = "default", pool=None, pool_size: int = 2,
                 window: int = 32, timeout: float = 10.0):
        # imported here so importing the transport seam never drags the
        # socket machinery in (InProcessTransport must stay weightless)
        from repro.net.pool import ConnectionPool

        self.service = service
        self.tenant = tenant
        self._owns_pool = pool is None
        self._pool = pool if pool is not None else ConnectionPool(
            host, port, size=pool_size, window=window, timeout=timeout
        )

    @property
    def pool(self):
        """The (possibly shared) connection pool underneath."""
        return self._pool

    def send(self, request: HttpRequest) -> HttpResponse:
        """One pooled, pipelined request/response over the wire."""
        _REQUESTS.inc()
        _REMOTE_REQUESTS.inc()
        fields = encode_request_frame(
            request, rid="", service=self.service, tenant=self.tenant
        )
        reply = self._pool.request(fields)
        try:
            response = decode_response_frame(reply)
        except ProtocolError:
            _ERRORS.inc()
            raise
        _FRAME_BYTES.inc(len(request.body) + len(response.body))
        self._notify_taps(request, response)
        return response

    def server_view(self, doc_id: str) -> str:
        """Raw stored bytes for ``doc_id`` on the remote server — the
        socket stand-in for :func:`repro.services.registry.server_view`,
        so convergence oracles work across the wire."""
        _VIEWS.inc()
        reply = self._pool.request({
            "id": "", "op": OP_VIEW, "svc": self.service,
            "tn": self.tenant, "doc": doc_id,
        })
        return decode_response_frame(reply).body

    def ping(self) -> bool:
        """Round-trip a control frame (liveness probe)."""
        reply = self._pool.request({
            "id": "", "op": OP_PING, "svc": self.service, "tn": self.tenant,
        })
        return decode_response_frame(reply).ok

    def close(self) -> None:
        """Close the pool if this transport owns it (shared pools are
        closed by whoever created them)."""
        if self._owns_pool:
            self._pool.close()
