"""Simulated time and the network latency model.

The macro-benchmarks (SVII-C) measure *end-to-end* save latency: crypto
cost is real wall-clock time, while network and server time come from
this model (there is no 2011 WAN to measure against).  The model makes
the calibration explicit and tunable:

    latency = RTT + server_time + transferred_bytes / bandwidth

with RTT and server time drawn from truncated normal distributions.
:data:`WAN_2011` approximates the paper's setting — a US broadband
client speaking to Google over HTTP — with an ~80 ms RTT, ~100 ms of
server processing per save, and ~4 MB/s of effective throughput
(matching the :class:`LatencyModel` defaults; every measured table in
EXPERIMENTS.md was produced under exactly this calibration, which is
recorded there).  The degradation percentages the benchmark reports
depend on the ratio of crypto time to these numbers.

**Shared bandwidth (PR 7).**  Historically the transfer term charged
``transferred_bytes / bytes_per_second`` independently per request —
fine for one session, but ten thousand concurrent sessions would each
enjoy the full 4 MB/s link, a free 10,000x bandwidth multiplier that
makes simulated load numbers incomparable with the socket transport's
real ones.  A :class:`LatencyModel` may now carry a :class:`SharedLink`
(``link=``): every transfer *reserves* capacity on the link in arrival
order, and a request that finds the link busy waits for the earlier
transfers to drain first.  Pass the caller's current clock reading via
``request_latency(..., now=...)`` so the link knows when each transfer
arrives; single-session behaviour with an idle link is numerically
unchanged (the wait is zero and the transfer term is identical).
Models without a link keep the original independent-per-request
semantics, so all pre-PR-7 calibrations and baselines are untouched.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

__all__ = [
    "SimClock", "LatencyModel", "SharedLink", "WAN_2011", "LAN", "INSTANT",
]


class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self, start: float = 0.0):
        self._now = start

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds}")
        self._now += seconds
        return self._now


class SharedLink:
    """One access link's bandwidth, shared by every session that holds it.

    The link serializes transfers: a reservation arriving at ``now``
    starts when the link frees up (``max(now, free_at)``), occupies the
    link for ``nbytes / bytes_per_second``, and the caller's transfer
    term is the time from arrival to completion — queueing wait
    included.  Crude (real TCP flows share a bottleneck fairly rather
    than in FIFO bursts), but it restores the one property the
    independent-per-request model lacks: **aggregate** transfer
    throughput across all sessions on the link cannot exceed
    ``bytes_per_second``.

    Thread-safe, so socket-mode load generators may share one link
    object across worker threads; with per-session simulated clocks the
    FIFO order is the order reservations are *made*, which is the load
    generator's scheduling order — exactly the contention being modeled.
    """

    def __init__(self, bytes_per_second: float = 4_000_000.0):
        if bytes_per_second <= 0:
            raise ValueError(
                f"bytes_per_second must be > 0, got {bytes_per_second}"
            )
        self.bytes_per_second = bytes_per_second
        self._free_at = 0.0
        self._lock = threading.Lock()

    def reserve(self, now: float, nbytes: int) -> float:
        """Reserve the link for ``nbytes`` arriving at ``now``; returns
        the seconds from arrival until the transfer completes."""
        duration = nbytes / self.bytes_per_second
        with self._lock:
            start = max(now, self._free_at)
            self._free_at = start + duration
            return self._free_at - now

    @property
    def busy_until(self) -> float:
        """The time at which the link next becomes idle."""
        with self._lock:
            return self._free_at


@dataclass
class LatencyModel:
    """Stochastic request-latency model.

    Defaults approximate a 2011 broadband client talking to Google over
    HTTP: ~80 ms RTT, ~100 ms server handling per save, ~4 MB/s
    effective transfer.  With ``link`` set (a :class:`SharedLink`), the
    transfer term reserves capacity on that shared link instead of
    assuming a private one — see the module docstring.
    """

    rtt_mean: float = 0.080
    rtt_jitter: float = 0.015
    server_mean: float = 0.100
    server_jitter: float = 0.020
    bytes_per_second: float = 4_000_000.0
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    link: SharedLink | None = None

    def _positive_normal(self, mean: float, dev: float) -> float:
        value = self.rng.gauss(mean, dev)
        return max(value, mean * 0.25, 0.0)

    def request_latency(self, request_bytes: int, response_bytes: int,
                        now: float | None = None) -> float:
        """Latency of one request/response exchange, in seconds.

        ``now`` is the caller's clock reading at send time; it only
        matters when a :class:`SharedLink` is attached (the link needs
        to know when the transfer arrives to model queueing).
        """
        rtt = self._positive_normal(self.rtt_mean, self.rtt_jitter)
        server = self._positive_normal(self.server_mean, self.server_jitter)
        nbytes = request_bytes + response_bytes
        if self.link is not None:
            transfer = self.link.reserve(now if now is not None else 0.0,
                                         nbytes)
        else:
            transfer = nbytes / self.bytes_per_second
        return rtt + server + transfer


def WAN_2011(seed: int = 0) -> LatencyModel:
    """The paper-era calibration: broadband client ↔ Google over HTTP.

    Spelled out explicitly (rather than relying on the dataclass
    defaults) so the canonical numbers live in one greppable place:
    80 ms ± 15 RTT, 100 ms ± 20 server handling, 4 MB/s transfer.
    """
    return LatencyModel(
        rtt_mean=0.080,
        rtt_jitter=0.015,
        server_mean=0.100,
        server_jitter=0.020,
        bytes_per_second=4_000_000.0,
        rng=random.Random(seed),
    )


def LAN(seed: int = 0) -> LatencyModel:
    """A fast local network (stress-cases the crypto overhead)."""
    return LatencyModel(
        rtt_mean=0.002,
        rtt_jitter=0.0005,
        server_mean=0.002,
        server_jitter=0.0005,
        bytes_per_second=100_000_000.0,
        rng=random.Random(seed),
    )


def INSTANT() -> LatencyModel:
    """Zero-cost network (unit tests)."""
    return LatencyModel(
        rtt_mean=0.0, rtt_jitter=0.0, server_mean=0.0, server_jitter=0.0,
        bytes_per_second=float("inf"), rng=random.Random(0),
    )
