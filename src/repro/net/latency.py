"""Simulated time and the network latency model.

The macro-benchmarks (SVII-C) measure *end-to-end* save latency: crypto
cost is real wall-clock time, while network and server time come from
this model (there is no 2011 WAN to measure against).  The model makes
the calibration explicit and tunable:

    latency = RTT + server_time + transferred_bytes / bandwidth

with RTT and server time drawn from truncated normal distributions.
:data:`WAN_2011` approximates the paper's setting — a US broadband
client speaking to Google over HTTP — with an ~80 ms RTT, ~100 ms of
server processing per save, and ~4 MB/s of effective throughput
(matching the :class:`LatencyModel` defaults; every measured table in
EXPERIMENTS.md was produced under exactly this calibration, which is
recorded there).  The degradation percentages the benchmark reports
depend on the ratio of crypto time to these numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["SimClock", "LatencyModel", "WAN_2011", "LAN", "INSTANT"]


class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self, start: float = 0.0):
        self._now = start

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds}")
        self._now += seconds
        return self._now


@dataclass
class LatencyModel:
    """Stochastic request-latency model.

    Defaults approximate a 2011 broadband client talking to Google over
    HTTP: ~80 ms RTT, ~100 ms server handling per save, ~4 MB/s
    effective transfer.
    """

    rtt_mean: float = 0.080
    rtt_jitter: float = 0.015
    server_mean: float = 0.100
    server_jitter: float = 0.020
    bytes_per_second: float = 4_000_000.0
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def _positive_normal(self, mean: float, dev: float) -> float:
        value = self.rng.gauss(mean, dev)
        return max(value, mean * 0.25, 0.0)

    def request_latency(self, request_bytes: int, response_bytes: int) -> float:
        """Latency of one request/response exchange, in seconds."""
        rtt = self._positive_normal(self.rtt_mean, self.rtt_jitter)
        server = self._positive_normal(self.server_mean, self.server_jitter)
        transfer = (request_bytes + response_bytes) / self.bytes_per_second
        return rtt + server + transfer


def WAN_2011(seed: int = 0) -> LatencyModel:
    """The paper-era calibration: broadband client ↔ Google over HTTP.

    Spelled out explicitly (rather than relying on the dataclass
    defaults) so the canonical numbers live in one greppable place:
    80 ms ± 15 RTT, 100 ms ± 20 server handling, 4 MB/s transfer.
    """
    return LatencyModel(
        rtt_mean=0.080,
        rtt_jitter=0.015,
        server_mean=0.100,
        server_jitter=0.020,
        bytes_per_second=4_000_000.0,
        rng=random.Random(seed),
    )


def LAN(seed: int = 0) -> LatencyModel:
    """A fast local network (stress-cases the crypto overhead)."""
    return LatencyModel(
        rtt_mean=0.002,
        rtt_jitter=0.0005,
        server_mean=0.002,
        server_jitter=0.0005,
        bytes_per_second=100_000_000.0,
        rng=random.Random(seed),
    )


def INSTANT() -> LatencyModel:
    """Zero-cost network (unit tests)."""
    return LatencyModel(
        rtt_mean=0.0, rtt_jitter=0.0, server_mean=0.0, server_jitter=0.0,
        bytes_per_second=float("inf"), rng=random.Random(0),
    )
