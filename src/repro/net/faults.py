"""Fault injection: the untrusted cloud made actually unreliable.

The paper's whole premise is an untrusted, *unreliable* provider — yet a
latency model alone simulates a network that always delivers.  A
:class:`FaultPlan` composes into :class:`repro.net.channel.Channel` and
perturbs exchanges the way a real WAN and a real overloaded service do:

* **drop** — the request is lost before the server sees it;
* **blackhole** — the server processes the request but its response is
  lost (the classic "did my save land?" ambiguity that motivates
  idempotency keys);
* **delay** — extra one-off latency on top of the latency model;
* **dup** — the request is delivered twice (a retransmit the client
  never asked for);
* **reorder** — the request is held and arrives *after* the next
  exchange (the client sees a timeout; the stale packet lands late);
* **truncate** / **corrupt** — bytes are cut or flipped in flight, on
  the request or the response;
* **http_5xx** / **http_429** — the service answers with an injected
  server error or a rate-limit (with ``Retry-After``) without touching
  document state.

Determinism is a hard requirement: every random choice flows from the
plan's seeded ``random.Random`` and all time flows from the channel's
:class:`~repro.net.latency.SimClock`, so a failing chaos-matrix cell
replays exactly from its seed.  Lost/held requests are also recorded in
:attr:`FaultPlan.observed` — an eavesdropper sees a request even when
its response never comes, so the leak checks must too.

Every injection is counted under the ``net.faults.*`` metric namespace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.errors import NetworkTimeoutError
from repro.net.http import HttpRequest, HttpResponse
from repro.net.latency import SimClock
from repro.obs import counter

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan", "updates_only"]

#: every kind a :class:`FaultSpec` may carry, in documentation order
FAULT_KINDS = (
    "drop", "blackhole", "delay", "dup", "reorder",
    "truncate", "corrupt", "http_5xx", "http_429",
)

_INJECTED = counter("net.faults.injected")
_LATE = counter("net.faults.late_deliveries")
_BY_KIND = {kind: counter(f"net.faults.{kind}") for kind in FAULT_KINDS}


def updates_only(request: HttpRequest) -> bool:
    """Spec predicate: fault only content updates (POSTs and PUTs
    carrying a body), leaving session opens and fetches untouched.
    Covers every backend's save verb: gdocs and Buzzword save via POST,
    Bespin via whole-file PUT (gdocs session opens are body-less POSTs
    and stay untouched)."""
    return request.method in ("POST", "PUT") and bool(request.body)


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind plus when and how hard to inject it.

    A spec triggers on an exchange when the exchange's index is in
    ``at``, or — for rate-driven chaos — when the plan's seeded RNG
    draws below ``rate``.  ``limit`` caps total injections from this
    spec; ``match`` (e.g. :func:`updates_only`) restricts which
    requests are eligible.
    """

    kind: str
    rate: float = 0.0
    at: tuple[int, ...] = ()
    limit: int | None = None
    match: Callable[[HttpRequest], bool] | None = None
    #: extra seconds for ``delay``
    delay_seconds: float = 0.75
    #: injected status for ``http_5xx`` (500/502/503/504)
    status: int = 503
    #: the Retry-After header value for ``http_429``
    retry_after: float = 1.0
    #: which direction ``truncate``/``corrupt`` damages
    where: str = "request"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.where not in ("request", "response"):
            raise ValueError(f"where must be request/response, got "
                             f"{self.where!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")


class FaultPlan:
    """A seeded schedule of faults, composed into a Channel.

    The plan sees every exchange post-mediation (what is on the wire),
    decides at most one fault for it (first triggering spec wins, in
    spec order), and performs the delivery to the server itself — which
    is what lets it drop, duplicate, reorder, or fabricate responses.

    ``timeout_seconds`` is how long a client waits before concluding a
    dropped exchange is dead; the simulated clock advances by it on
    every drop/blackhole/reorder so retry deadlines are meaningful.
    """

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...],
                 seed: int = 0, timeout_seconds: float = 2.0):
        self.specs = list(specs)
        self.seed = seed
        self.timeout_seconds = timeout_seconds
        self._rng = random.Random(seed)
        self._index = 0
        self._counts: dict[int, int] = {}  # spec position -> injections
        self._held: list[HttpRequest] = []
        #: every request the plan saw (post-mediation), including ones
        #: whose exchange never completed — leak checks scan this
        self.observed: list[HttpRequest] = []
        #: (exchange_index, kind) for every injection, for test replay
        self.injections: list[tuple[int, str]] = []
        self._quiesced = False

    @classmethod
    def uniform(cls, rate: float, seed: int = 0,
                kinds: tuple[str, ...] = FAULT_KINDS,
                timeout_seconds: float = 2.0,
                match: Callable[[HttpRequest], bool] | None = None,
                ) -> "FaultPlan":
        """Every listed kind at the same per-exchange probability."""
        specs = [FaultSpec(kind=kind, rate=rate, match=match)
                 for kind in kinds]
        return cls(specs, seed=seed, timeout_seconds=timeout_seconds)

    def __repr__(self) -> str:
        kinds = ",".join(spec.kind for spec in self.specs)
        return (f"FaultPlan(seed={self.seed}, kinds=[{kinds}], "
                f"injected={len(self.injections)})")

    def quiesce(self) -> None:
        """Stop injecting (held requests still flush): the recovery
        phase of a chaos scenario."""
        self._quiesced = True

    # -- trigger decision ------------------------------------------------

    def _pick(self, index: int, request: HttpRequest) -> FaultSpec | None:
        chosen: FaultSpec | None = None
        chosen_pos = -1
        for pos, spec in enumerate(self.specs):
            if spec.limit is not None and \
                    self._counts.get(pos, 0) >= spec.limit:
                continue
            if spec.match is not None and not spec.match(request):
                continue
            scheduled = index in spec.at
            # One draw per rate-spec per exchange, taken regardless of
            # whether an earlier spec already won — keeps the stream
            # aligned so one cell's outcome never shifts another's.
            drawn = spec.rate > 0.0 and self._rng.random() < spec.rate
            if chosen is None and (scheduled or drawn):
                chosen, chosen_pos = spec, pos
        if chosen is not None and not self._quiesced:
            self._counts[chosen_pos] = self._counts.get(chosen_pos, 0) + 1
            self.injections.append((index, chosen.kind))
            _INJECTED.inc()
            _BY_KIND[chosen.kind].inc()
            return chosen
        return None

    # -- damage helpers --------------------------------------------------

    def _truncate_body(self, body: str) -> str:
        if not body:
            return body
        keep = self._rng.randrange(len(body))
        return body[:keep]

    def _corrupt_body(self, body: str) -> str:
        if not body:
            return body
        pos = self._rng.randrange(len(body))
        old = body[pos]
        alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ234567"
        new = self._rng.choice([c for c in alphabet if c != old])
        return body[:pos] + new + body[pos + 1:]

    # -- delivery --------------------------------------------------------

    def deliver(
        self,
        request: HttpRequest,
        server: Callable[[HttpRequest], HttpResponse],
        clock: SimClock,
    ) -> tuple[HttpRequest, HttpResponse]:
        """Deliver one exchange through the faulty network.

        Returns ``(request_as_delivered, response_as_received)``; raises
        :class:`~repro.errors.NetworkTimeoutError` when the exchange is
        lost.  Held (reordered) requests from earlier exchanges are
        flushed to the server *after* this one — their responses go
        nowhere, which is exactly what "arrived too late" means.
        """
        index = self._index
        self._index += 1
        late, self._held = self._held, []
        try:
            self.observed.append(request)
            spec = self._pick(index, request)
            if spec is None:
                return request, server(request)
            kind = spec.kind
            if kind == "delay":
                clock.advance(spec.delay_seconds)
                return request, server(request)
            if kind == "drop":
                clock.advance(self.timeout_seconds)
                raise NetworkTimeoutError(
                    f"request lost in flight (exchange {index}, "
                    f"fault seed {self.seed})"
                )
            if kind == "blackhole":
                server(request)
                clock.advance(self.timeout_seconds)
                raise NetworkTimeoutError(
                    f"response lost in flight (exchange {index}, "
                    f"fault seed {self.seed}; server DID process the "
                    f"request)"
                )
            if kind == "reorder":
                self._held.append(request)
                clock.advance(self.timeout_seconds)
                raise NetworkTimeoutError(
                    f"request reordered past its successor (exchange "
                    f"{index}, fault seed {self.seed})"
                )
            if kind == "dup":
                server(request)
                return request, server(request)
            if kind == "http_5xx":
                return request, HttpResponse(
                    spec.status, "injected server failure"
                )
            if kind == "http_429":
                return request, HttpResponse(
                    429, "injected rate limit",
                    headers={"Retry-After": str(spec.retry_after)},
                )
            if kind == "truncate":
                if spec.where == "request":
                    request = request.with_body(
                        self._truncate_body(request.body)
                    )
                    return request, server(request)
                response = server(request)
                return request, response.with_body(
                    self._truncate_body(response.body)
                )
            # corrupt
            if spec.where == "request":
                request = request.with_body(
                    self._corrupt_body(request.body)
                )
                return request, server(request)
            response = server(request)
            return request, response.with_body(
                self._corrupt_body(response.body)
            )
        finally:
            for stale in late:
                _LATE.inc()
                try:
                    server(stale)  # late arrival; nobody hears the answer
                except Exception:
                    pass  # a late packet's failure is invisible too
