"""Network substrate: message types, latency simulation, fault
injection, retry policy, and the interceptable channel the extension
hooks."""

from repro.net.channel import Channel, Exchange, Mediator
from repro.net.faults import FAULT_KINDS, FaultPlan, FaultSpec, updates_only
from repro.net.http import HttpRequest, HttpResponse, parse_url
from repro.net.latency import INSTANT, LAN, WAN_2011, LatencyModel, SimClock
from repro.net.policy import RETRYABLE_STATUSES, RetryPolicy, RetryState

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "parse_url",
    "Channel",
    "Exchange",
    "Mediator",
    "LatencyModel",
    "SimClock",
    "WAN_2011",
    "LAN",
    "INSTANT",
    "FaultPlan",
    "FaultSpec",
    "FAULT_KINDS",
    "updates_only",
    "RetryPolicy",
    "RetryState",
    "RETRYABLE_STATUSES",
]
