"""Network substrate: message types, latency simulation, and the
interceptable channel the extension hooks."""

from repro.net.channel import Channel, Exchange, Mediator
from repro.net.http import HttpRequest, HttpResponse, parse_url
from repro.net.latency import INSTANT, LAN, WAN_2011, LatencyModel, SimClock

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "parse_url",
    "Channel",
    "Exchange",
    "Mediator",
    "LatencyModel",
    "SimClock",
    "WAN_2011",
    "LAN",
    "INSTANT",
]
