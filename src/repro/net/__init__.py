"""Network substrate: message types, latency simulation, fault
injection, retry policy, the interceptable channel the extension hooks,
and (PR 7) the transport seam — in-process or pooled/pipelined TCP to
an asyncio socket server (:mod:`repro.net.server`, imported explicitly
so the in-process stack never pays for it)."""

from repro.net.channel import Channel, Exchange, Mediator
from repro.net.faults import FAULT_KINDS, FaultPlan, FaultSpec, updates_only
from repro.net.http import HttpRequest, HttpResponse, parse_url
from repro.net.latency import (
    INSTANT,
    LAN,
    WAN_2011,
    LatencyModel,
    SharedLink,
    SimClock,
)
from repro.net.policy import RETRYABLE_STATUSES, RetryPolicy, RetryState
from repro.net.transport import (
    AsyncioSocketTransport,
    InProcessTransport,
    Transport,
)

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "parse_url",
    "Channel",
    "Exchange",
    "Mediator",
    "Transport",
    "InProcessTransport",
    "AsyncioSocketTransport",
    "LatencyModel",
    "SharedLink",
    "SimClock",
    "WAN_2011",
    "LAN",
    "INSTANT",
    "FaultPlan",
    "FaultSpec",
    "FAULT_KINDS",
    "updates_only",
    "RetryPolicy",
    "RetryState",
    "RETRYABLE_STATUSES",
]
