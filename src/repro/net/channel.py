"""The client↔server channel with mediation, taps, and tampering.

This is the simulation's stand-in for the browser's network stack — the
place where the 2011 Firefox extension hooked request observation.  A
:class:`Channel` delivers :class:`HttpRequest` objects to a server
callable and returns its :class:`HttpResponse`, with three hook points:

* **mediator** — the trusted extension: may rewrite the outgoing
  request, rewrite the incoming response, or *drop* the request
  entirely (the fail-closed branch of Fig. 2);
* **taps** — passive eavesdroppers (the paper notes many cloud servers
  ran without SSL, so our adversary sees all traffic; the tap is how
  the security harness collects what an adversary would);
* **tamperers** — active network adversaries that mutate messages in
  flight;
* **faults** — an optional :class:`repro.net.faults.FaultPlan` that
  makes the network itself unreliable (drops, duplicates, reordering,
  corruption, injected 5xx/429) — distinct from tamperers in that it
  models *failure*, not malice, and may prevent an exchange from
  completing at all (raising
  :class:`~repro.errors.NetworkTimeoutError`).

Every exchange advances the simulated clock by the latency model's
estimate, and is appended to ``exchange_log`` for analysis.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, MutableSequence, Protocol

from repro.errors import BlockedRequestError
from repro.net.http import HttpRequest, HttpResponse
from repro.net.latency import INSTANT, LatencyModel, SimClock
from repro.net.transport import InProcessTransport, Transport
from repro.obs import counter, histogram

__all__ = ["Mediator", "Channel", "Exchange"]

_EXCHANGES = counter("net.exchanges")
_WIRE_BYTES = counter("net.wire_bytes")
_BLOCKED = counter("net.blocked")
_LATENCY = histogram("net.latency_seconds")


class Mediator(Protocol):
    """The extension's view of the traffic (both directions)."""

    def on_request(self, request: HttpRequest) -> HttpRequest | None:
        """Rewrite an outgoing request; return None to drop it."""
        ...  # pragma: no cover

    def on_response(
        self, request: HttpRequest, response: HttpResponse
    ) -> HttpResponse:
        """Rewrite an incoming response."""
        ...  # pragma: no cover


@dataclass(frozen=True)
class Exchange:
    """One completed request/response pair as seen on the wire
    (post-mediation: what an eavesdropper observes)."""

    request: HttpRequest
    response: HttpResponse
    sent_at: float
    latency: float


class Channel:
    """Delivers requests to a server with mediation and observation.

    ``max_log`` caps ``exchange_log`` and ``blocked_log`` at the most
    recent N entries (a ring buffer), so long macro-bench sessions do
    not retain every exchange; the default (None) keeps everything,
    which is what the tests and the security harness expect.  Aggregate
    statistics (``net.exchanges``, ``net.wire_bytes``, the latency
    histogram) are unaffected by the cap.
    """

    def __init__(
        self,
        server: Callable[[HttpRequest], HttpResponse],
        latency: LatencyModel | None = None,
        clock: SimClock | None = None,
        max_log: int | None = None,
        faults=None,
    ):
        if max_log is not None and max_log < 1:
            raise ValueError(f"max_log must be >= 1 or None, got {max_log}")
        # the transport seam (PR 7): a bare server callable is wrapped
        # in InProcessTransport (byte-for-byte the old direct call); an
        # AsyncioSocketTransport passes through and the same mediation,
        # fault, and latency machinery rides on top of real TCP
        self._server = (
            server if isinstance(server, Transport)
            else InProcessTransport(server)
        )
        #: optional repro.net.faults.FaultPlan making delivery unreliable
        self.faults = faults
        self._latency = latency if latency is not None else INSTANT()
        self.clock = clock if clock is not None else SimClock()
        self._mediator: Mediator | None = None
        self._taps: list[Callable[[Exchange], None]] = []
        self._request_tamperer: Callable[[HttpRequest], HttpRequest] | None = None
        self._response_tamperer: Callable[[HttpResponse], HttpResponse] | None = None
        self.max_log = max_log
        self.exchange_log: MutableSequence[Exchange] = (
            [] if max_log is None else deque(maxlen=max_log)
        )
        self.blocked_log: MutableSequence[HttpRequest] = (
            [] if max_log is None else deque(maxlen=max_log)
        )

    @property
    def transport(self) -> Transport:
        """The transport this channel delivers through."""
        return self._server

    # -- configuration ---------------------------------------------------

    def set_mediator(self, mediator: Mediator | None) -> None:
        """Install (or remove) the trusted extension."""
        self._mediator = mediator

    def add_tap(self, tap: Callable[[Exchange], None]) -> None:
        """Attach a passive eavesdropper."""
        self._taps.append(tap)

    def set_tamperers(
        self,
        on_request: Callable[[HttpRequest], HttpRequest] | None = None,
        on_response: Callable[[HttpResponse], HttpResponse] | None = None,
    ) -> None:
        """Attach an active network adversary."""
        self._request_tamperer = on_request
        self._response_tamperer = on_response

    # -- delivery --------------------------------------------------------

    def send(self, request: HttpRequest) -> HttpResponse:
        """Run one full exchange.

        Order matters and mirrors the deployment: the mediator sees the
        *plaintext* client request before anything reaches the wire; the
        adversary (taps/tamperers) sees only what leaves the mediator.
        """
        if self._mediator is not None:
            mediated = self._mediator.on_request(request)
            if mediated is None:
                self.blocked_log.append(request)
                _BLOCKED.inc()
                raise BlockedRequestError(
                    f"extension dropped unrecognized request "
                    f"{request.method} {request.url}"
                )
            outgoing = mediated
        else:
            outgoing = request

        if self._request_tamperer is not None:
            outgoing = self._request_tamperer(outgoing)

        if self.faults is not None:
            # The fault plan owns delivery: it may mutate, duplicate,
            # reorder, answer for the server, or lose the exchange
            # entirely (raising NetworkTimeoutError — nothing is
            # logged because nothing completed on the wire; the plan
            # records what it saw in ``faults.observed``).
            outgoing, response = self.faults.deliver(
                outgoing, self._server, self.clock
            )
        else:
            response = self._server(outgoing)

        if self._response_tamperer is not None:
            response = self._response_tamperer(response)

        latency = self._latency.request_latency(
            outgoing.wire_bytes, response.wire_bytes, now=self.clock.now()
        )
        sent_at = self.clock.now()
        self.clock.advance(latency)
        exchange = Exchange(
            request=outgoing, response=response,
            sent_at=sent_at, latency=latency,
        )
        self.exchange_log.append(exchange)
        _EXCHANGES.inc()
        _WIRE_BYTES.inc(outgoing.wire_bytes + response.wire_bytes)
        _LATENCY.observe(latency)
        for tap in self._taps:
            tap(exchange)

        if self._mediator is not None:
            response = self._mediator.on_response(outgoing, response)
        return response
