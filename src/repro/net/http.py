"""Minimal HTTP-shaped messages for the simulated services.

The 2011 prototype intercepted real Firefox HTTP traffic; the simulation
carries the same information in plain dataclasses: method, URL (with
query), headers, and a text body (the services all use form-encoded or
XML text bodies).  Nothing here does networking — delivery is the job
of :mod:`repro.net.channel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.encoding.formenc import encode_form, parse_form
from repro.errors import ProtocolError
from repro.obs import counter

__all__ = ["HttpRequest", "HttpResponse", "parse_url"]

#: actual parse work vs. requests served from the per-instance cache —
#: the pair proves host/path/query no longer re-parse the same URL
_URL_PARSES = counter("net.url_parses")
_URL_CACHE_HITS = counter("net.url_cache_hits")


def parse_url(url: str) -> tuple[str, str, dict[str, str]]:
    """Split a URL into ``(host, path, query_params)``."""
    _URL_PARSES.inc()
    rest = url
    if "://" in rest:
        scheme, _, rest = rest.partition("://")
        if scheme not in ("http", "https"):
            raise ProtocolError(f"unsupported scheme {scheme!r}")
    host, slash, tail = rest.partition("/")
    path = slash + tail
    if not host:
        raise ProtocolError(f"URL {url!r} has no host")
    path, _, query = path.partition("?")
    params = parse_form(query) if query else {}
    return host, path or "/", params


@dataclass(frozen=True)
class HttpRequest:
    """One client→server message."""

    method: str
    url: str
    body: str = ""
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def _parsed(self) -> tuple[str, str, dict[str, str]]:
        """The parse of :attr:`url`, computed once per instance.

        The dataclass is frozen, so the cache is stashed directly in
        ``__dict__`` (which bypasses the frozen ``__setattr__``), the
        same mechanism ``functools.cached_property`` relies on.  One
        mediated exchange reads host/path/query several times; without
        this every read re-ran :func:`parse_url`.
        """
        cached = self.__dict__.get("_parsed_url")
        if cached is None:
            cached = parse_url(self.url)
            self.__dict__["_parsed_url"] = cached
        else:
            _URL_CACHE_HITS.inc()
        return cached

    @property
    def host(self) -> str:
        return self._parsed[0]

    @property
    def path(self) -> str:
        return self._parsed[1]

    @property
    def query(self) -> dict[str, str]:
        # Copy so a caller mutating the result cannot poison the cache.
        return dict(self._parsed[2])

    @property
    def form(self) -> dict[str, str]:
        """The body parsed as a form (POST bodies in this protocol)."""
        return parse_form(self.body)

    def with_body(self, body: str) -> "HttpRequest":
        """Copy of this request with a replaced body."""
        return replace(self, body=body)

    def with_form(self, fields: dict[str, str]) -> "HttpRequest":
        """Copy of this request with a re-encoded form body."""
        return self.with_body(encode_form(fields))

    @property
    def wire_bytes(self) -> int:
        """Approximate on-the-wire size (for the latency model)."""
        head = len(self.method) + len(self.url) + 12
        head += sum(len(k) + len(v) + 4 for k, v in self.headers.items())
        return head + len(self.body.encode("utf-8"))


@dataclass(frozen=True)
class HttpResponse:
    """One server→client message."""

    status: int
    body: str = ""
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def form(self) -> dict[str, str]:
        return parse_form(self.body)

    def with_body(self, body: str) -> "HttpResponse":
        """Copy of this response with a replaced body."""
        return replace(self, body=body)

    def with_form(self, fields: dict[str, str]) -> "HttpResponse":
        """Copy of this response with a re-encoded form body."""
        return self.with_body(encode_form(fields))

    @property
    def wire_bytes(self) -> int:
        head = 20 + sum(len(k) + len(v) + 4 for k, v in self.headers.items())
        return head + len(self.body.encode("utf-8"))
