"""The service registry: one name → backend/server/view for each cloud.

This is the sanctioned factory surface for everything that needs "a
service by name" — the session builder, the fuzzer, the chaos CLI, and
the fault benchmark all iterate over :data:`SERVICE_NAMES` instead of
hardcoding Google Documents.  It lives in the services layer because it
is the *only* module above the wire-protocol seam that is allowed to
touch the simulated servers (``tools/layering_check.py`` enforces that
client/extension code gets its servers from here, never by importing
``repro.services.gdocs.server`` and friends directly).

Four registered services:

``gdocs``
    The SIV-A protocol: sessions, revisions, incremental deltas.
``bespin``
    Whole-file PUTs, no sessions or revisions.
``buzzword``
    Whole-document XML POSTs, paragraphs in ``<textRun>`` tags.
``replicated``
    A :class:`~repro.services.replicated.ReplicatedService` facade over
    three independent gdocs providers.  Clients speak plain gdocs to
    it (the facade's whole point), so its *client-side* backend is
    :data:`~repro.services.backend.GDOCS`.

:func:`server_view` reads the raw stored bytes for a document —
whatever shape the provider stores (flat wire string, XML, majority
ciphertext) — and :func:`decrypt_view` turns those bytes back into
plaintext with the document password, which is how the chaos matrix
and fuzzer state their convergence oracle uniformly across providers.
"""

from __future__ import annotations

from typing import Callable

from repro.core.document import load_document
from repro.core.transform import EncryptionEngine
from repro.encoding.wire import looks_encrypted
from repro.net.http import HttpRequest, HttpResponse
from repro.services import buzzword
from repro.services.backend import (
    BESPIN,
    BUZZWORD,
    GDOCS,
    ServiceBackend,
)
from repro.services.bespin import BespinServer
from repro.services.buzzword import BuzzwordServer
from repro.services.catalog import CatalogService
from repro.services.gdocs.server import GDocsServer
from repro.services.replicated import ReplicatedService

__all__ = [
    "SERVICE_NAMES",
    "REPLICA_COUNT",
    "backend_for",
    "make_server",
    "server_view",
    "decrypt_view",
]

#: every service the stack can run against, in documentation order
SERVICE_NAMES = ("gdocs", "bespin", "buzzword", "replicated")

#: how many gdocs providers back one replicated facade
REPLICA_COUNT = 3

_BACKENDS: dict[str, ServiceBackend] = {
    "gdocs": GDOCS,
    "bespin": BESPIN,
    "buzzword": BUZZWORD,
    # the facade emulates one gdocs endpoint toward the client
    "replicated": GDOCS,
}

Server = Callable[[HttpRequest], HttpResponse]


def _check(service: str) -> None:
    if service not in SERVICE_NAMES:
        raise ValueError(
            f"unknown service {service!r}; expected one of {SERVICE_NAMES}"
        )


def backend_for(service: str) -> ServiceBackend:
    """The wire protocol a *client* of ``service`` speaks."""
    _check(service)
    return _BACKENDS[service]


def make_server(service: str, merge_concurrent: bool = False,
                catalog: bool = False) -> Server:
    """A fresh simulated server (or replicated facade) for ``service``.

    ``merge_concurrent`` turns on the server-side OT merge path
    (:mod:`repro.services.ot`): stale delta saves are rebased over the
    intervening history instead of rejected as conflicts.  Only
    meaningful on backends whose protocol can express it
    (``capabilities.merges_stale_saves``); asking for it elsewhere is a
    caller bug, not a silent downgrade.

    ``catalog`` wraps the server in a
    :class:`repro.services.catalog.CatalogService` — the tenant-catalog
    endpoint (doc listing, encrypted search index, audit chains) plus
    the piggybacked save maintenance.  Off by default: the unwrapped
    server is byte-identical to every pre-catalog baseline.
    """
    _check(service)
    if merge_concurrent and \
            not _BACKENDS[service].capabilities.merges_stale_saves:
        raise ValueError(
            f"service {service!r} cannot merge stale saves (whole-file "
            "protocol has no delta language to transform)"
        )
    if service == "gdocs":
        server: Server = GDocsServer(merge_concurrent=merge_concurrent)
    elif service == "bespin":
        server = BespinServer()
    elif service == "buzzword":
        server = BuzzwordServer()
    else:
        server = ReplicatedService(
            [GDocsServer(merge_concurrent=merge_concurrent)
             for _ in range(REPLICA_COUNT)], service=GDOCS
        )
    if catalog:
        server = CatalogService(server)
    return server


def server_view(service: str, server: Server, doc_id: str) -> str:
    """The raw bytes ``server`` currently stores for ``doc_id``
    (ciphertext under the extension; ``""`` when nothing stored yet).

    For ``replicated`` this is the majority read through the facade —
    the logical stored state, exactly what a fetch would return.
    """
    _check(service)
    if service == "gdocs":
        store = server.store
        if doc_id not in store.doc_ids():
            return ""
        return store.get(doc_id).content
    if service == "bespin":
        return server.files.get(doc_id, "")
    if service == "buzzword":
        return server.documents.get(doc_id, "")
    response = server(GDOCS.fetch_request(doc_id))
    return response.body if response.ok else ""


def decrypt_view(service: str, stored: str, password: str,
                 scheme: str = "recb") -> str:
    """Plaintext of ``stored`` bytes as :func:`server_view` returned
    them — the convergence oracle's view of the provider's state.

    Buzzword stores XML whose ``<textRun>`` bodies are independent
    ciphertext documents (paragraphs joined by newlines client-side);
    every other service stores one wire document.
    """
    _check(service)
    if not stored:
        return ""
    if service == "buzzword":
        runs = []
        for run in buzzword.text_runs(stored):
            if looks_encrypted(run):
                runs.append(load_document(run, password=password).text)
            else:
                runs.append(run)
        return "\n".join(runs)
    return EncryptionEngine(password=password, scheme=scheme).decrypt(stored)
