"""Server-side document storage.

The paper's server assumption (SVI-A): "the server stores user-submitted
content literally" — whatever text arrives, that text is stored and
returned.  That is what makes the ciphertext-document trick possible,
and this store behaves exactly that way.

Two deliberately adversarial details are modelled because the paper's
threat analysis depends on them:

* **revision history** — the server keeps every prior version (the
  paper cites Google Docs leaking information about previous versions
  [1]); the honest-but-curious adversary gets to read it;
* **quota** — Google enforced a maximum file size of 500 kB, which is
  why ciphertext blow-up matters (SV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.delta import Delta
from repro.errors import (
    DeltaApplicationError,
    ProtocolError,
    QuotaExceededError,
)

__all__ = ["MAX_DOCUMENT_CHARS", "StoredDocument", "DocumentStore"]

#: Google's 2011 cap: 500 kilobytes of stored document text
MAX_DOCUMENT_CHARS = 500_000


@dataclass
class StoredDocument:
    """One document as the server sees it (possibly ciphertext)."""

    doc_id: str
    content: str = ""
    revision: int = 0
    history: list[str] = field(default_factory=list)
    #: per committed revision, the delta that produced it (None = full
    #: save); consumed by the merging server's transform path
    ops_log: list[str | None] = field(default_factory=list)

    def _commit(self, new_content: str, op: str | None = None) -> None:
        if len(new_content) > MAX_DOCUMENT_CHARS:
            raise QuotaExceededError(
                f"document {self.doc_id!r} would be {len(new_content)} "
                f"chars; limit is {MAX_DOCUMENT_CHARS}"
            )
        self.history.append(self.content)
        self.ops_log.append(op)
        self.content = new_content
        self.revision += 1

    def deltas_since(self, revision: int) -> list[str] | None:
        """Deltas that took ``revision`` to the current revision, or
        None if a full save intervened (transforming past it is
        impossible)."""
        window = self.ops_log[revision:]
        if any(op is None for op in window):
            return None
        return list(window)


class DocumentStore:
    """All documents held by one server instance."""

    def __init__(self) -> None:
        self._docs: dict[str, StoredDocument] = {}

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._docs

    def __len__(self) -> int:
        return len(self._docs)

    def create(self, doc_id: str, content: str = "") -> StoredDocument:
        """Create a new (empty by default) document."""
        if doc_id in self._docs:
            raise ProtocolError(f"document {doc_id!r} already exists")
        doc = StoredDocument(doc_id=doc_id, content=content)
        self._docs[doc_id] = doc
        return doc

    def get(self, doc_id: str) -> StoredDocument:
        """Look up a document; ProtocolError when missing."""
        try:
            return self._docs[doc_id]
        except KeyError:
            raise ProtocolError(f"no document {doc_id!r}") from None

    def get_or_create(self, doc_id: str) -> StoredDocument:
        """Look up a document, creating it when missing."""
        if doc_id not in self._docs:
            return self.create(doc_id)
        return self._docs[doc_id]

    def set_content(self, doc_id: str, content: str) -> StoredDocument:
        """Full replace (the ``docContents`` save path)."""
        doc = self.get(doc_id)
        doc._commit(content)
        return doc

    def apply_delta(self, doc_id: str, delta_text: str) -> StoredDocument:
        """Apply a delta to the stored text.

        The server parses the delta purely *structurally* — it never
        interprets the content, so an encrypted cdelta applies exactly
        like a plaintext delta.
        """
        doc = self.get(doc_id)
        try:
            new_content = Delta.parse(delta_text).apply(doc.content)
        except DeltaApplicationError as exc:
            raise ProtocolError(f"delta does not fit document: {exc}") from exc
        doc._commit(new_content, op=delta_text)
        return doc

    def doc_ids(self) -> list[str]:
        """Sorted ids of every stored document."""
        return sorted(self._docs)
