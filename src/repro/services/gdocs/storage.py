"""Server-side document storage.

The paper's server assumption (SVI-A): "the server stores user-submitted
content literally" — whatever text arrives, that text is stored and
returned.  That is what makes the ciphertext-document trick possible,
and this store behaves exactly that way.

Two deliberately adversarial details are modelled because the paper's
threat analysis depends on them:

* **revision history** — the server keeps prior versions (the paper
  cites Google Docs leaking information about previous versions [1]);
  the honest-but-curious adversary gets to read it.  Retention is
  capped at :attr:`StoredDocument.max_history` revisions; older ones
  are compacted away and ``deltas_since`` reports them unmergeable;
* **quota** — Google enforced a maximum file size of 500 kB, which is
  why ciphertext blow-up matters (SV-C).

Storage is a :class:`~repro.services.gdocs.pieces.PieceTable`, so an
incremental save costs O(delta ops + pieces touched) rather than a full
O(document) string rebuild, and each history entry is an O(pieces)
snapshot that only materializes to a string if somebody reads it.
``content`` remains an exact plain-string view for every existing
caller (including tests and adversaries that *assign* to it).
"""

from __future__ import annotations

from typing import Iterator, Union

from repro.core.delta import Delta
from repro.errors import (
    DeltaApplicationError,
    ProtocolError,
    QuotaExceededError,
)
from repro.services.gdocs.pieces import PieceSnapshot, PieceTable

__all__ = [
    "MAX_DOCUMENT_CHARS",
    "DEFAULT_MAX_HISTORY",
    "RevisionHistory",
    "StoredDocument",
    "DocumentStore",
]

#: Google's 2011 cap: 500 kilobytes of stored document text
MAX_DOCUMENT_CHARS = 500_000

#: revisions retained per document before the oldest are compacted
DEFAULT_MAX_HISTORY = 256

_HistoryEntry = Union[str, PieceSnapshot]


class RevisionHistory:
    """Prior document versions, materialized to strings only on read.

    Behaves like the ``list[str]`` it replaced: indexing (including
    negative indexes and slices), iteration, ``len``, equality against
    plain lists, and ``append`` (adversaries push raw strings) all
    work.  Internally each entry is either a string or a lazy
    :class:`PieceSnapshot`, so committing a revision never copies the
    document text.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: list[_HistoryEntry] = []

    @staticmethod
    def _text(entry: _HistoryEntry) -> str:
        return entry if isinstance(entry, str) else entry.materialize()

    def append(self, text: str) -> None:
        """Push a raw version string (the tampering path)."""
        self._entries.append(text)

    def _append_snapshot(self, snapshot: PieceSnapshot) -> None:
        self._entries.append(snapshot)

    def _drop_oldest(self, count: int) -> None:
        del self._entries[:count]

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[str]:
        return (self._text(entry) for entry in list(self._entries))

    def __getitem__(self, key):
        if isinstance(key, slice):
            return [self._text(entry) for entry in self._entries[key]]
        return self._text(self._entries[key])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RevisionHistory):
            other = list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"RevisionHistory({list(self)!r})"


class StoredDocument:
    """One document as the server sees it (possibly ciphertext)."""

    __slots__ = ("doc_id", "revision", "history", "ops_log", "max_history",
                 "history_floor", "_table")

    def __init__(self, doc_id: str, content: str = "",
                 max_history: int = DEFAULT_MAX_HISTORY):
        self.doc_id = doc_id
        self.revision = 0
        self.history = RevisionHistory()
        #: per retained revision, the delta that produced it (None = full
        #: save); consumed by the merging server's transform path
        self.ops_log: list[str | None] = []
        self.max_history = max_history
        #: oldest revision whose commit record is still retained —
        #: everything below it has been compacted away
        self.history_floor = 0
        self._table = PieceTable(content)

    # -- content views ---------------------------------------------------

    @property
    def content(self) -> str:
        """The current document text, exactly as submitted."""
        return self._table.materialize()

    @content.setter
    def content(self, text: str) -> None:
        # Direct assignment (active tampering, test fixtures) bypasses
        # commit bookkeeping, same as mutating the old dataclass field.
        self._table.reset(text)

    @property
    def length(self) -> int:
        """Current document length in characters, without materializing."""
        return self._table.length

    # -- commits ---------------------------------------------------------

    def _commit(self, new_content: str, op: str | None = None) -> None:
        """Full replace: the ``docContents`` save path."""
        if len(new_content) > MAX_DOCUMENT_CHARS:
            raise QuotaExceededError(
                f"document {self.doc_id!r} would be {len(new_content)} "
                f"chars; limit is {MAX_DOCUMENT_CHARS}"
            )
        self.history._append_snapshot(self._table.snapshot())
        self.ops_log.append(op)
        self._table.reset(new_content)
        self.revision += 1
        self._compact()

    def apply_delta(self, delta_text: str) -> None:
        """Incremental save: splice ``delta_text`` into the piece table.

        O(delta ops + pieces touched) — the stored text is never
        rebuilt as a string.  Raises
        :class:`~repro.errors.DeltaSyntaxError` /
        :class:`~repro.errors.DeltaApplicationError` for malformed or
        ill-fitting deltas and :class:`QuotaExceededError` (with the
        document left unchanged) when the result would exceed quota.
        """
        delta = Delta.parse(delta_text)
        before = self._table.snapshot()
        self._table.apply_delta(delta)
        if self._table.length > MAX_DOCUMENT_CHARS:
            would_be = self._table.length
            self._table.restore(before)
            raise QuotaExceededError(
                f"document {self.doc_id!r} would be {would_be} "
                f"chars; limit is {MAX_DOCUMENT_CHARS}"
            )
        self.history._append_snapshot(before)
        self.ops_log.append(delta_text)
        self.revision += 1
        self._compact()

    def _compact(self) -> None:
        if self.max_history is None:
            return
        excess = len(self.history) - self.max_history
        if excess > 0:
            self.history._drop_oldest(excess)
            del self.ops_log[:excess]
            self.history_floor += excess

    def deltas_since(self, revision: int) -> list[str] | None:
        """Deltas that took ``revision`` to the current revision, or
        None when transforming past them is impossible — a full save
        intervened, or ``revision`` predates the history floor (its
        commit records were compacted away)."""
        if revision < self.history_floor:
            return None
        window = self.ops_log[revision - self.history_floor:]
        if any(op is None for op in window):
            return None
        return list(window)


class DocumentStore:
    """All documents held by one server instance."""

    def __init__(self) -> None:
        self._docs: dict[str, StoredDocument] = {}

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._docs

    def __len__(self) -> int:
        return len(self._docs)

    def create(self, doc_id: str, content: str = "") -> StoredDocument:
        """Create a new (empty by default) document."""
        if doc_id in self._docs:
            raise ProtocolError(f"document {doc_id!r} already exists")
        doc = StoredDocument(doc_id=doc_id, content=content)
        self._docs[doc_id] = doc
        return doc

    def get(self, doc_id: str) -> StoredDocument:
        """Look up a document; ProtocolError when missing."""
        try:
            return self._docs[doc_id]
        except KeyError:
            raise ProtocolError(f"no document {doc_id!r}") from None

    def get_or_create(self, doc_id: str) -> StoredDocument:
        """Look up a document, creating it when missing."""
        if doc_id not in self._docs:
            return self.create(doc_id)
        return self._docs[doc_id]

    def set_content(self, doc_id: str, content: str) -> StoredDocument:
        """Full replace (the ``docContents`` save path)."""
        doc = self.get(doc_id)
        doc._commit(content)
        return doc

    def apply_delta(self, doc_id: str, delta_text: str) -> StoredDocument:
        """Apply a delta to the stored text.

        The server parses the delta purely *structurally* — it never
        interprets the content, so an encrypted cdelta applies exactly
        like a plaintext delta.
        """
        doc = self.get(doc_id)
        try:
            doc.apply_delta(delta_text)
        except DeltaApplicationError as exc:
            raise ProtocolError(f"delta does not fit document: {exc}") from exc
        return doc

    def doc_ids(self) -> list[str]:
        """Sorted ids of every stored document."""
        return sorted(self._docs)
