"""Simulated Google Documents: protocol, storage, server (SIV)."""

from repro.services.gdocs.server import GDocsServer
from repro.services.gdocs.storage import DocumentStore, StoredDocument

__all__ = ["GDocsServer", "DocumentStore", "StoredDocument"]
