"""The simulated Google Documents server.

Implements the protocol of :mod:`repro.services.gdocs.protocol` over the
literal store of :mod:`repro.services.gdocs.storage`:

* session management (``POST /Doc?docID=...`` opens a session);
* full saves (``docContents``) and incremental saves (``delta``);
* Ack responses carrying ``contentFromServer`` / ``contentFromServerHash``;
* a conservative conflict rule: a delta whose base revision is stale is
  rejected with ``conflict=1`` (the real server ran operational
  transforms; rejection models the *client-visible* outcome — the
  resync dance — without reimplementing Google's merge);
* idempotency-key deduplication: a save carrying an ``idem`` form field
  the server has already answered (same session) gets the cached Ack
  back without re-applying — what makes client retries and duplicated/
  late-delivered requests safe under the fault model of
  :mod:`repro.net.faults`;
* the server-side features the extension must break: spell checking,
  translation, export, and drawing (SVII-A's functionality losses), all
  of which read the *stored* content — which is exactly why they stop
  working once the store holds ciphertext.

The server is a plain callable ``HttpRequest -> HttpResponse`` so it
plugs straight into :class:`repro.net.channel.Channel`.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict

from repro.encoding.formenc import encode_form
from repro.errors import DeltaError, ProtocolError, QuotaExceededError
from repro.net.http import HttpRequest, HttpResponse
from repro.obs import default_registry
from repro.services.gdocs import protocol
from repro.services.gdocs.storage import DocumentStore, StoredDocument
from repro.workloads.text import WORDS

__all__ = ["GDocsServer", "EditSession"]

_OBS = default_registry().scope("services.gdocs")
#: requests by endpoint: services.gdocs.requests.{open,full_save,
#: delta_save,fetch,feature,error}
_REQ = _OBS.scope("requests")
_REQ_OPEN = _REQ.counter("open")
_REQ_FULL_SAVE = _REQ.counter("full_save")
_REQ_DELTA_SAVE = _REQ.counter("delta_save")
_REQ_FETCH = _REQ.counter("fetch")
_REQ_FEATURE = _REQ.counter("feature")
_REQ_ERROR = _REQ.counter("error")
_STORED_BYTES = _OBS.gauge("stored_bytes")
_MERGES = _OBS.counter("merges")
_DEDUP_HITS = _OBS.counter("dedup_hits")

#: idempotency-key responses remembered per server (a ring; replays of
#: saves older than this window are no longer deduplicated)
IDEM_CACHE_SIZE = 256


class EditSession:
    """One client's edit session on one document."""

    def __init__(self, sid: str, doc_id: str):
        self.sid = sid
        self.doc_id = doc_id
        self.saw_full_save = False


class GDocsServer:
    """A callable HTTP endpoint implementing the gdocs protocol.

    ``reject_encrypted=True`` models the hostile provider of SVI-A that
    "could recognize the use of encryption and refuse to store any
    content that appears to be encrypted" — saves whose resulting
    content trips :func:`repro.security.analysis.encryption_score` are
    refused with 403.  The steganographic mode of the extension exists
    to defeat exactly this policy.
    """

    def __init__(self, store: DocumentStore | None = None,
                 reject_encrypted: bool = False,
                 merge_concurrent: bool = False):
        self.store = store if store is not None else DocumentStore()
        self.reject_encrypted = reject_encrypted
        #: merge stale deltas via operational transformation instead of
        #: rejecting them (what the real 2011 server did)
        self.merge_concurrent = merge_concurrent
        self._sessions: dict[str, EditSession] = {}
        self._sid_counter = itertools.count(1)
        self.merges_performed = 0
        #: (sid, idempotency key) -> the Ack already sent for that save;
        #: a retransmit (client retry or network duplicate) replays the
        #: cached answer instead of re-applying the content
        self._idem_cache: OrderedDict[tuple[str, str], HttpResponse] = \
            OrderedDict()

    def _censor(self, content: str) -> HttpResponse | None:
        if not self.reject_encrypted:
            return None
        from repro.security.analysis import (
            ENCRYPTION_THRESHOLD,
            encryption_score,
        )
        if encryption_score(content) > ENCRYPTION_THRESHOLD:
            return _error(403, "content appears to be encrypted; refused")
        return None

    # -- dispatch -------------------------------------------------------

    def __call__(self, request: HttpRequest) -> HttpResponse:
        try:
            return self._dispatch(request)
        except QuotaExceededError as exc:
            return _error(413, str(exc))
        except ProtocolError as exc:
            return _error(400, str(exc))
        except DeltaError as exc:
            # a delta field the client sent (or the network mangled)
            # that does not parse or apply is bad input, not a crash
            return _error(400, f"bad delta: {exc}")

    def _stored_bytes(self) -> int:
        """Total characters currently held by the store (gauge value)."""
        return sum(
            self.store.get(doc_id).length
            for doc_id in self.store.doc_ids()
        )

    def _dispatch(self, request: HttpRequest) -> HttpResponse:
        if request.path != protocol.DOC_PATH:
            return _error(404, f"no such path {request.path!r}")
        params = request.query
        doc_id = params.get("docID")
        if not doc_id:
            return _error(400, "missing docID")

        action = params.get("action")
        if request.method == "GET":
            _REQ_FETCH.inc()
            return self._fetch(doc_id)
        if request.method != "POST":
            return _error(405, f"method {request.method} not allowed")
        if action:
            _REQ_FEATURE.inc()
            return self._feature(doc_id, action, request)

        form = request.form if request.body else {}
        if protocol.F_DOC_CONTENTS in form:
            _REQ_FULL_SAVE.inc()
            return self._full_save(doc_id, form)
        if protocol.F_DELTA in form:
            _REQ_DELTA_SAVE.inc()
            return self._delta_save(doc_id, form)
        _REQ_OPEN.inc()
        return self._open(doc_id)

    # -- session & saves -----------------------------------------------

    def _open(self, doc_id: str) -> HttpResponse:
        doc = self.store.get_or_create(doc_id)
        sid = f"s{next(self._sid_counter)}"
        self._sessions[sid] = EditSession(sid, doc_id)
        return HttpResponse(200, encode_form({
            protocol.F_SID: sid,
            protocol.A_REV: str(doc.revision),
            protocol.A_CONTENT: doc.content,
        }))

    def _session(self, form: dict[str, str], doc_id: str) -> EditSession:
        sid = form.get(protocol.F_SID, "")
        session = self._sessions.get(sid)
        if session is None or session.doc_id != doc_id:
            raise ProtocolError(f"invalid session {sid!r} for {doc_id!r}")
        return session

    # -- idempotency -----------------------------------------------------

    def _replayed(self, session: EditSession,
                  form: dict[str, str]) -> HttpResponse | None:
        """The cached Ack for this idempotency key, if already answered."""
        idem = form.get(protocol.F_IDEM)
        if not idem:
            return None
        cached = self._idem_cache.get((session.sid, idem))
        if cached is not None:
            _DEDUP_HITS.inc()
        return cached

    def _remember(self, session: EditSession, form: dict[str, str],
                  response: HttpResponse) -> HttpResponse:
        """Cache a save's Ack under its idempotency key (ring-capped)."""
        idem = form.get(protocol.F_IDEM)
        if idem:
            self._idem_cache[(session.sid, idem)] = response
            while len(self._idem_cache) > IDEM_CACHE_SIZE:
                self._idem_cache.popitem(last=False)
        return response

    def _full_save(self, doc_id: str, form: dict[str, str]) -> HttpResponse:
        session = self._session(form, doc_id)
        replayed = self._replayed(session, form)
        if replayed is not None:
            return replayed
        content = form[protocol.F_DOC_CONTENTS]
        refused = self._censor(content)
        if refused is not None:
            return refused
        doc = self.store.get(doc_id)
        if content == doc.content:
            # Identical re-upload (typically a session's opening save):
            # no new revision — keeps merge windows across sessions open.
            session.saw_full_save = True
            return self._remember(session, form,
                                  self._ack(doc, conflict=False))
        doc = self.store.set_content(doc_id, content)
        session.saw_full_save = True
        _STORED_BYTES.set(self._stored_bytes())
        return self._remember(session, form, self._ack(doc, conflict=False))

    def _delta_save(self, doc_id: str, form: dict[str, str]) -> HttpResponse:
        session = self._session(form, doc_id)
        replayed = self._replayed(session, form)
        if replayed is not None:
            return replayed
        if not session.saw_full_save:
            raise ProtocolError(
                "protocol violation: delta save before the session's "
                "full save"
            )
        doc = self.store.get(doc_id)
        try:
            base_rev = int(form.get(protocol.F_REV, "-1"))
        except ValueError:
            raise ProtocolError(
                f"malformed rev {form.get(protocol.F_REV)!r}"
            ) from None
        if base_rev != doc.revision:
            if self.merge_concurrent and 0 <= base_rev < doc.revision:
                merged = self._merge_stale_delta(doc_id, base_rev, form)
                if merged is not None:
                    return self._remember(session, form, merged)
            # Someone else advanced the document: reject and let the
            # client resync from contentFromServer.
            return self._remember(session, form,
                                  self._ack(doc, conflict=True))
        if self.reject_encrypted:
            from repro.core.delta import Delta
            candidate = Delta.parse(form[protocol.F_DELTA]).apply(doc.content)
            refused = self._censor(candidate)
            if refused is not None:
                return refused
        doc = self.store.apply_delta(doc_id, form[protocol.F_DELTA])
        _STORED_BYTES.set(self._stored_bytes())
        return self._remember(session, form,
                              self._ack(doc, conflict=False,
                                        echo_content=False))

    def _merge_stale_delta(self, doc_id: str, base_rev: int,
                           form: dict[str, str]) -> HttpResponse | None:
        """Rebase a stale delta over the concurrent updates and apply
        it (what the real server's collaboration machinery did).

        The OT walk lives in :mod:`repro.services.ot`: it yields both
        the ``rebased`` delta (applied to the head here) and the
        mirror-image ``patch``, which the Ack carries back so the stale
        client can fast-forward its own state to the merged document —
        no content echo, no resync round-trip.

        Returns None when merging is impossible (a full save intervened,
        history was compacted, or the transformed delta no longer fits),
        in which case the caller falls back to the conflict path.
        """
        from repro.core.delta import Delta
        from repro.errors import DeltaError
        from repro.services import ot

        doc = self.store.get(doc_id)
        concurrent = doc.deltas_since(base_rev)
        if concurrent is None:
            ot.reject()
            return None
        try:
            incoming = Delta.parse(form[protocol.F_DELTA])
            merge = ot.rebase(incoming, concurrent)
            if self.reject_encrypted:
                refused = self._censor(merge.rebased.apply(doc.content))
                if refused is not None:
                    return refused
            doc = self.store.apply_delta(doc_id, merge.rebased.serialize())
        except DeltaError:
            ot.reject()
            return None
        self.merges_performed += 1
        _MERGES.inc()
        _STORED_BYTES.set(self._stored_bytes())
        # No content echo: the patch carries the saver to the merged
        # state, and the hash lets it verify the result.
        return self._ack(doc, conflict=False, echo_content=False,
                         merged=True,
                         merge_patch=merge.patch.serialize())

    def _ack(self, doc: StoredDocument, conflict: bool,
             echo_content: bool = True, merged: bool = False,
             merge_patch: str | None = None) -> HttpResponse:
        """Acknowledge an update with contentFromServer(Hash).

        The full content is echoed on full saves and on conflicts (the
        client needs it to resync); a routine delta Ack carries only the
        hash — echoing a multi-hundred-kB ciphertext on every autosave
        would make the macro-benchmark measure transfer, not the scheme
        (see DESIGN.md, substitution table).  A merged Ack likewise
        skips the echo and instead carries the OT ``mergePatch`` (the
        delta from the saver's post-save document to the merged one).
        """
        fields = {
            protocol.A_STATUS: "ok",
            protocol.A_REV: str(doc.revision),
            protocol.A_CONTENT: doc.content if (echo_content or conflict) else "",
            protocol.A_CONTENT_HASH: protocol.content_hash(doc.content),
            protocol.A_CONFLICT: "1" if conflict else "0",
            protocol.A_MERGED: "1" if merged else "0",
        }
        if merged:
            fields[protocol.A_MERGE_PATCH] = merge_patch or ""
        return HttpResponse(200, encode_form(fields))

    def _fetch(self, doc_id: str) -> HttpResponse:
        doc = self.store.get(doc_id)
        return HttpResponse(200, doc.content, headers={
            protocol.A_REV: str(doc.revision),
        })

    # -- server-side features (broken by design under encryption) --------

    def _feature(self, doc_id: str, action: str,
                 request: HttpRequest) -> HttpResponse:
        doc = self.store.get(doc_id)
        if action == "spellcheck":
            return HttpResponse(200, encode_form({
                "misspelled": " ".join(_misspelled(doc.content)),
            }))
        if action == "translate":
            return HttpResponse(200, _mock_translate(doc.content))
        if action == "export":
            return HttpResponse(
                200,
                "{\\rtf1 " + doc.content.replace("\n", "\\par ") + "}",
                headers={"Content-Type": "application/rtf"},
            )
        if action == "drawing":
            primitives = request.form.get("primitives", "")
            return HttpResponse(200, f"PNG[{len(primitives)} ops]",
                                headers={"Content-Type": "image/png"})
        return _error(400, f"unknown action {action!r}")


def _misspelled(content: str) -> list[str]:
    """Words outside the service's dictionary (the workload vocabulary)."""
    vocabulary = set(WORDS)
    seen: list[str] = []
    for token in content.split():
        word = token.strip(".,;:!?").lower()
        if word and word not in vocabulary and word not in seen:
            seen.append(word)
    return seen


def _mock_translate(content: str) -> str:
    """A stand-in 'translation': word-reversal, obviously content-dependent."""
    return " ".join(word[::-1] for word in content.split())


def _error(status: int, message: str) -> HttpResponse:
    _REQ_ERROR.inc()
    return HttpResponse(status, encode_form({"error": message}))
