"""Piece-table document: O(ops + pieces) delta application.

The literal store's job is to apply opaque deltas to stored text.  Doing
that by rebuilding the whole content string makes every incremental save
O(document) — exactly the linear server-side cost the paper's scheme is
supposed to avoid (the client already went to the trouble of sending a
delta that touches O(cluster) records).  A piece table fixes the apply
path: the document is a sequence of *pieces*, each a ``(buffer, start,
length)`` view into an immutable text buffer, and applying a delta
splices pieces instead of copying characters.

* ``apply_delta`` walks the piece list once, splitting at op boundaries:
  O(ops + pieces), independent of how many *characters* the retains
  cover.
* Inserted text goes into one fresh buffer per delta; existing buffers
  are never mutated, so a :meth:`snapshot` is O(pieces) and stays valid
  forever — that is what lets the store keep revision history without
  copying the full document per revision.
* Every edit adds at most ``ops + 1`` pieces; when the list grows past
  ``flatten_at`` the table flattens back to a single piece (one O(n)
  copy amortized over ~``flatten_at`` edits), bounding both walk cost
  and snapshot size.

``content`` / :meth:`materialize` give the exact string view existing
callers expect, cached until the next mutation.
"""

from __future__ import annotations

from repro.core.delta import Delta, Insert, Retain
from repro.errors import DeltaApplicationError
from repro.obs import counter, histogram

__all__ = ["PieceTable", "PieceSnapshot", "DEFAULT_FLATTEN_AT"]

#: piece-count ceiling before the table flattens back to one piece
DEFAULT_FLATTEN_AT = 512

#: below this length a C-speed string rebuild beats any Python piece
#: walk, so ``apply_delta`` just splices the flat string
SMALL_DOC_CHARS = 16_384

_APPLIES = counter("gdocs.pieces.applies")
_FLATTENS = counter("gdocs.pieces.flattens")
_MATERIALIZE = counter("gdocs.pieces.materializations")
_PIECES_WALKED = counter("gdocs.pieces.walked")
_PIECES_PER_DOC = histogram("gdocs.pieces.per_doc")

#: a piece: (buffer index, start offset, length)
_Piece = tuple[int, int, int]


class PieceSnapshot:
    """An immutable point-in-time view of a :class:`PieceTable`.

    Holds references to the table's (immutable, append-only) buffer
    list, so taking one is O(pieces) and never copies document text;
    the string itself is materialized lazily on first access.
    """

    __slots__ = ("_pieces", "_buffers", "length", "_text")

    def __init__(self, pieces: tuple[_Piece, ...], buffers: list[str],
                 length: int):
        self._pieces = pieces
        self._buffers = buffers
        self.length = length
        self._text: str | None = None

    def materialize(self) -> str:
        """The snapshot's full text (computed once, then cached)."""
        if self._text is None:
            buffers = self._buffers
            self._text = "".join(
                buffers[buf][start : start + length]
                for buf, start, length in self._pieces
            )
        return self._text


class PieceTable:
    """A mutable document stored as pieces over immutable buffers."""

    __slots__ = ("_buffers", "_pieces", "_length", "_text", "_flatten_at")

    def __init__(self, text: str = "", flatten_at: int = DEFAULT_FLATTEN_AT):
        if flatten_at < 1:
            raise ValueError(f"flatten_at must be >= 1, got {flatten_at}")
        self._flatten_at = flatten_at
        self._buffers: list[str] = [text]
        self._pieces: list[_Piece] = [(0, 0, len(text))] if text else []
        self._length = len(text)
        self._text: str | None = text

    # -- views -----------------------------------------------------------

    @property
    def length(self) -> int:
        """Document length in characters — O(1), no materialization."""
        return self._length

    def __len__(self) -> int:
        return self._length

    @property
    def piece_count(self) -> int:
        return len(self._pieces)

    def materialize(self) -> str:
        """The full document text (cached until the next mutation)."""
        if self._text is None:
            _MATERIALIZE.inc()
            buffers = self._buffers
            self._text = "".join(
                buffers[buf][start : start + length]
                for buf, start, length in self._pieces
            )
        return self._text

    def snapshot(self) -> PieceSnapshot:
        """An immutable view of the current state, O(pieces)."""
        return PieceSnapshot(tuple(self._pieces), self._buffers, self._length)

    # -- mutation --------------------------------------------------------

    def apply_delta(self, delta: Delta) -> None:
        """Apply ``delta`` in place: O(ops + pieces), never O(chars).

        Atomic: a delta that does not fit raises
        :class:`DeltaApplicationError` and leaves the table unchanged.
        """
        if self._length <= SMALL_DOC_CHARS:
            # One C-speed string splice; ``materialize`` is cached from
            # the previous reset, so this stays O(length) with a tiny
            # constant — faster than a piece walk at this size.  Only
            # the cheap counters fire here: the per-doc piece histogram
            # is a piece-walk diagnostic, and its observe() costs more
            # than the splice's per-edit bookkeeping budget allows.
            text = delta.apply(self.materialize())
            self._buffers = [text]
            self._pieces = [(0, 0, len(text))] if text else []
            self._length = len(text)
            self._text = text
            _APPLIES.inc()
            _PIECES_WALKED.inc(len(delta.ops))
            return
        inserted = [op.text for op in delta.ops if isinstance(op, Insert)]
        add_buf = len(self._buffers)
        add_text = "".join(inserted)
        add_off = 0

        new_pieces: list[_Piece] = []
        old_pieces = self._pieces
        pi = 0           # index of the piece holding the cursor
        poff = 0         # chars of piece ``pi`` already consumed
        cursor = 0       # document chars consumed so far

        def take(count: int, keep: bool) -> None:
            """Consume ``count`` chars, copying their pieces iff ``keep``."""
            nonlocal pi, poff
            while count > 0:
                buf, start, length = old_pieces[pi]
                avail = length - poff
                step = avail if avail <= count else count
                if keep:
                    _append(new_pieces, (buf, start + poff, step))
                count -= step
                poff += step
                if poff == length:
                    pi += 1
                    poff = 0

        for op in delta.ops:
            if isinstance(op, Retain):
                if cursor + op.count > self._length:
                    raise DeltaApplicationError(
                        f"retain past end: cursor {cursor} + {op.count} > "
                        f"{self._length}"
                    )
                take(op.count, keep=True)
                cursor += op.count
            elif isinstance(op, Insert):
                _append(new_pieces, (add_buf, add_off, len(op.text)))
                add_off += len(op.text)
            else:
                if cursor + op.count > self._length:
                    raise DeltaApplicationError(
                        f"delete past end: cursor {cursor} + {op.count} > "
                        f"{self._length}"
                    )
                take(op.count, keep=False)
                cursor += op.count
        # implicit trailing retain
        if poff:
            buf, start, length = old_pieces[pi]
            _append(new_pieces, (buf, start + poff, length - poff))
            pi += 1
        new_pieces.extend(old_pieces[pi:])

        if add_text:
            self._buffers.append(add_text)
        self._pieces = new_pieces
        self._length += delta.length_change
        self._text = None
        _APPLIES.inc()
        _PIECES_WALKED.inc(pi + len(delta.ops))
        # Adaptive ceiling: piece-walk cost is paid on every edit while
        # the O(n) flatten is amortized over the edits between flattens,
        # so short documents (where a rebuild is almost free) keep the
        # list much shorter than the hard ``flatten_at`` cap.
        ceiling = min(self._flatten_at, max(32, self._length // 1024))
        if len(new_pieces) > ceiling:
            self.flatten()
        _PIECES_PER_DOC.observe(len(self._pieces))

    def restore(self, snapshot: PieceSnapshot) -> None:
        """Rewind to ``snapshot`` (e.g. rolling back an over-quota edit).

        Buffers are append-only, so adopting the snapshot's buffer list
        is safe: its pieces only reference indexes that existed when it
        was taken.
        """
        self._buffers = snapshot._buffers
        self._pieces = list(snapshot._pieces)
        self._length = snapshot.length
        self._text = snapshot._text

    def reset(self, text: str) -> None:
        """Full replace (the docContents save path)."""
        self._buffers = [text]
        self._pieces = [(0, 0, len(text))] if text else []
        self._length = len(text)
        self._text = text

    def flatten(self) -> None:
        """Collapse to a single piece over one fresh buffer.

        Old buffers are left untouched (snapshots may still reference
        them); the table simply starts a new buffer list.
        """
        _FLATTENS.inc()
        text = self.materialize()
        self._buffers = [text]
        self._pieces = [(0, 0, len(text))] if text else []


def _append(pieces: list[_Piece], piece: _Piece) -> None:
    """Append, merging with the tail when the spans are contiguous."""
    if piece[2] == 0:
        return
    if pieces:
        buf, start, length = pieces[-1]
        if buf == piece[0] and start + length == piece[1]:
            pieces[-1] = (buf, start, length + piece[2])
            return
    pieces.append(piece)
