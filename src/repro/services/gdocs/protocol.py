"""The reverse-engineered Google Documents save protocol (SIV-A).

The paper documents these observations, all reproduced here:

* opening a document starts an *edit session* via
  ``POST /Doc?docID=<id>``;
* within a session the **first** save POSTs the whole document in the
  ``docContents`` form field;
* every subsequent save carries only a ``delta`` field (the incremental
  language of :mod:`repro.core.delta`);
* the server answers every content update with an **Ack** carrying
  ``contentFromServer`` and ``contentFromServerHash`` — the current
  content to the best of the server's knowledge.  (The paper found a
  single-user client works flawlessly when these are replaced by the
  empty string and ``0``.)

This module is the single place the field names and message shapes are
defined; the server, the benign client, and the extension all build and
parse messages through it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.encoding.formenc import encode_form
from repro.errors import ProtocolError
from repro.net.http import HttpRequest, HttpResponse

__all__ = [
    "DOC_PATH", "HOST",
    "F_DOC_CONTENTS", "F_DELTA", "F_SID", "F_REV", "F_ACTION", "F_IDEM",
    "A_STATUS", "A_REV", "A_CONTENT", "A_CONTENT_HASH", "A_CONFLICT",
    "A_MERGED", "A_MERGE_PATCH", "H_RETRY_AFTER",
    "NEUTRAL_CONTENT", "NEUTRAL_HASH",
    "content_hash", "Ack",
    "open_request", "full_save_request", "delta_save_request",
    "fetch_request", "feature_request",
]

HOST = "docs.google.com"
DOC_PATH = "/Doc"

# request form fields
F_DOC_CONTENTS = "docContents"
F_DELTA = "delta"
F_SID = "sid"
F_REV = "rev"
F_ACTION = "action"
#: idempotency key (a reproduction extension for the fault model):
#: a client retrying a timed-out save re-sends the same key, and the
#: server answers a replay from its cache instead of re-applying
F_IDEM = "idem"

#: response header carrying the server's backoff ask on 429/503
H_RETRY_AFTER = "Retry-After"

# ack response fields
A_STATUS = "status"
A_REV = "rev"
A_CONTENT = "contentFromServer"
A_CONTENT_HASH = "contentFromServerHash"
A_CONFLICT = "conflict"
A_MERGED = "merged"
#: cdelta (wire-string delta) that carries the *saver's* post-save
#: document to the merged revision — only present on merged acks
A_MERGE_PATCH = "mergePatch"

#: what the extension substitutes into Acks (SIV-A: empty string / 0)
NEUTRAL_CONTENT = ""
NEUTRAL_HASH = "0"


def content_hash(content: str) -> str:
    """The hash the server computes over its stored content."""
    return hashlib.sha1(content.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Ack:
    """Parsed server acknowledgement of a content update."""

    status: str
    rev: int
    content_from_server: str
    content_from_server_hash: str
    conflict: bool
    merged: bool = False
    merge_patch: str = ""

    @classmethod
    def from_response(cls, response: HttpResponse) -> "Ack":
        fields = response.form
        try:
            return cls(
                status=fields[A_STATUS],
                rev=int(fields[A_REV]),
                content_from_server=fields[A_CONTENT],
                content_from_server_hash=fields[A_CONTENT_HASH],
                conflict=fields.get(A_CONFLICT, "0") == "1",
                merged=fields.get(A_MERGED, "0") == "1",
                merge_patch=fields.get(A_MERGE_PATCH, ""),
            )
        except KeyError as exc:
            raise ProtocolError(f"Ack missing field {exc}") from None
        except ValueError as exc:
            # a mangled body can still parse as a form whose rev field
            # is garbage ('&' corrupted away merges adjacent pairs);
            # that is a malformed ack, not a crash
            raise ProtocolError(f"Ack field unparseable: {exc}") from None


def _doc_url(doc_id: str, **params: str) -> str:
    query = encode_form({"docID": doc_id, **params})
    return f"http://{HOST}{DOC_PATH}?{query}"


def open_request(doc_id: str) -> HttpRequest:
    """Start (or join) an edit session for ``doc_id``."""
    return HttpRequest("POST", _doc_url(doc_id), body="")


def full_save_request(doc_id: str, sid: str, rev: int,
                      content: str, idem: str | None = None) -> HttpRequest:
    """The first save of a session: whole contents in ``docContents``.

    ``idem`` attaches an idempotency key (resilient clients only; the
    wire stays byte-identical to the legacy protocol when omitted).
    """
    fields = {F_SID: sid, F_REV: str(rev), F_DOC_CONTENTS: content}
    if idem is not None:
        fields[F_IDEM] = idem
    return HttpRequest("POST", _doc_url(doc_id), body=encode_form(fields))


def delta_save_request(doc_id: str, sid: str, rev: int,
                       delta_text: str, idem: str | None = None,
                       ) -> HttpRequest:
    """A subsequent save: only the difference, in ``delta``.

    ``idem`` attaches an idempotency key, as for full saves.
    """
    fields = {F_SID: sid, F_REV: str(rev), F_DELTA: delta_text}
    if idem is not None:
        fields[F_IDEM] = idem
    return HttpRequest("POST", _doc_url(doc_id), body=encode_form(fields))


def fetch_request(doc_id: str) -> HttpRequest:
    """Download the stored document (document open / passive refresh)."""
    return HttpRequest("GET", _doc_url(doc_id))


def feature_request(doc_id: str, action: str, **fields: str) -> HttpRequest:
    """A server-side feature call (spellcheck, translate, export,
    drawing...) — the requests the extension must block."""
    body = encode_form(fields) if fields else ""
    return HttpRequest("POST", _doc_url(doc_id, action=action), body=body)
