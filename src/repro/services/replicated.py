"""Multi-provider replication (the availability extension).

The paper's introduction concedes: "a malicious or incompetent cloud
provider can easily prevent users from accessing their documents.  This
could be addressed using replication with multiple cloud providers, but
this is outside the scope of this paper."  This module builds that
replication — entirely client-side, requiring nothing from providers,
in the spirit of the rest of the system.

:class:`ReplicatedService` is itself an ``HttpRequest -> HttpResponse``
callable, so it slots in wherever one provider's server would: the
extension and client above it are unchanged and unaware.  It fans every
update out to N independent backends and reads with majority voting.
Everything provider-specific — how a request is classified, where the
document id lives, how per-provider session state is rewritten into a
fanned-out save, how raw stored bytes are copied for healing — goes
through a :class:`repro.services.backend.ServiceBackend`, so the facade
composes with *any* provider (gdocs sessions and revisions, Bespin
whole-file PUTs, Buzzword XML POSTs), not just Google Documents.

Mechanics worth noting:

* session-capable providers issue their own session ids and revision
  numbers, so the facade maintains per-backend ``sid``/``rev`` maps and
  rewrites them per backend through
  :meth:`~repro.services.backend.ServiceBackend.rewrite_session` — the
  client sees one logical session (sessionless providers need no
  rewriting and the hook is a no-op);
* a backend that errors or misses updates is marked **degraded** and is
  *healed* by copying the current (ciphertext!) stored bytes from a
  healthy backend — possible precisely because replication never needs
  to understand the data.  Incremental providers heal before the next
  delta fan-out (a delta applied to stale state would diverge);
  whole-file providers are healed by the very next full save, since
  every save rewrites the entire store;
* reads return the majority body; a provider that answers "missing"
  casts an empty-content vote (a brand-new document looks missing
  everywhere — that must not count as degradation); disagreeing
  minorities are logged in ``divergences`` (an actively mismatching
  provider is adversary behaviour the caller may want to know about);
* writes succeed iff at least ``quorum`` backends acknowledged.

:class:`FlakyServer` wraps any backend with scriptable outages for the
availability tests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.encoding.formenc import encode_form
from repro.errors import ProtocolError
from repro.net.http import HttpRequest, HttpResponse
from repro.services.backend import (
    GDOCS,
    KIND_OPEN,
    KIND_READ,
    KIND_SAVE_DELTA,
    KIND_SAVE_FULL,
    ServiceBackend,
)

__all__ = ["ReplicatedService", "FlakyServer"]

Backend = Callable[[HttpRequest], HttpResponse]


class FlakyServer:
    """Wraps a backend with scriptable unavailability."""

    def __init__(self, backend: Backend):
        self._backend = backend
        self._down_for = 0
        self.requests_refused = 0

    def outage(self, requests: int) -> None:
        """Refuse the next ``requests`` requests."""
        self._down_for += requests

    def __call__(self, request: HttpRequest) -> HttpResponse:
        if self._down_for > 0:
            self._down_for -= 1
            self.requests_refused += 1
            return HttpResponse(503, encode_form({
                "error": "service unavailable",
            }))
        return self._backend(request)


@dataclass
class _BackendDocState:
    sid: str | None = None
    rev: int = -1
    degraded: bool = False


@dataclass
class _BackendSlot:
    backend: Backend
    docs: dict[str, _BackendDocState] = field(default_factory=dict)

    def doc(self, doc_id: str) -> _BackendDocState:
        return self.docs.setdefault(doc_id, _BackendDocState())


class ReplicatedService:
    """One logical document service over N independent backends.

    ``service`` names the wire protocol all backends speak (they must
    agree — replicating a gdocs server alongside a Bespin one would
    fan one provider's requests to another's endpoints).
    """

    def __init__(self, backends: list[Backend], quorum: int | None = None,
                 service: ServiceBackend = GDOCS):
        if not backends:
            raise ValueError("need at least one backend")
        self._slots = [_BackendSlot(b) for b in backends]
        self.quorum = quorum if quorum is not None else len(backends) // 2 + 1
        self.service = service
        self.divergences: list[str] = []
        self.failures: list[str] = []

    # -- dispatch --------------------------------------------------------

    def __call__(self, request: HttpRequest) -> HttpResponse:
        try:
            kind = self.service.classify(request)
            if kind == KIND_READ:
                return self._read(request)
            if kind in (KIND_SAVE_FULL, KIND_SAVE_DELTA):
                return self._write(request, kind)
            if kind == KIND_OPEN:
                return self._open(request)
        except ProtocolError as exc:
            # e.g. a corrupt fault mangled the body beyond parsing; a
            # real provider answers 400 (GDocsServer does the same) —
            # the facade must not crash the whole simulated cloud
            return HttpResponse(400, encode_form({"error": str(exc)}))
        return HttpResponse(404, encode_form({
            "error": f"unroutable request {request.method} {request.path}",
        }))

    # -- session open -------------------------------------------------------

    def _open(self, request: HttpRequest) -> HttpResponse:
        doc_id = self.service.doc_id_of(request)
        alive: list[HttpResponse] = []
        sessions: list[tuple[str, int] | None] = []
        for index, slot in enumerate(self._slots):
            response = slot.backend(request)
            if response.ok or self.service.is_missing(response):
                state = slot.doc(doc_id)
                session = self.service.session_of_open(response)
                if session is not None:
                    state.sid, state.rev = session
                state.degraded = False
                alive.append(response)
                sessions.append(session)
            else:
                self._mark_degraded(index, doc_id, "open failed")
        if len(alive) < self.quorum:
            return HttpResponse(503, encode_form({
                "error": f"only {len(alive)} of {len(self._slots)} "
                         f"providers reachable (quorum {self.quorum})",
            }))
        # Logical session id: the facade's own token; content by majority.
        content = self._majority(
            [self.service.content_of_open(r) for r in alive], doc_id
        )
        first = next((s for s in sessions if s is not None), None)
        rev = first[1] if first is not None else -1
        return self.service.synthesize_open(
            doc_id, f"rep:{doc_id}", rev, content
        )

    # -- writes -----------------------------------------------------------

    def _write(self, request: HttpRequest, kind: str) -> HttpResponse:
        doc_id = self.service.doc_id_of(request)
        acks: list[HttpResponse] = []
        is_full = kind == KIND_SAVE_FULL
        if not is_full:
            # Heal stragglers *before* fanning out, while every healthy
            # replica still holds the pre-update content (healing after
            # an update would copy post-update bytes and then apply the
            # delta twice).  Full saves need none of this: they rewrite
            # the whole store, healing degraded replicas as they land.
            for index, slot in enumerate(self._slots):
                if slot.doc(doc_id).degraded:
                    self._heal(index, doc_id)
        for index, slot in enumerate(self._slots):
            state = slot.doc(doc_id)
            if state.degraded and not is_full:
                continue  # heal failed; try again next update
            if self.service.capabilities.sessions and state.sid is None:
                if not self._reopen(index, doc_id):
                    continue
                state = slot.doc(doc_id)
            rewritten = self.service.rewrite_session(
                request, state.sid, state.rev
            )
            response = slot.backend(rewritten)
            if response.ok:
                state.rev = self.service.rev_of_save(response, state.rev)
                if self.service.save_conflict(response):
                    # The backend diverged from the fleet; full saves heal.
                    self._mark_degraded(index, doc_id, "conflict")
                else:
                    state.degraded = False
                    acks.append(response)
            else:
                self._mark_degraded(index, doc_id,
                                    f"status {response.status}")
        if len(acks) < self.quorum:
            return HttpResponse(503, encode_form({
                "error": f"write acknowledged by {len(acks)} providers; "
                         f"quorum is {self.quorum}",
            }))
        return acks[0]

    # -- reads ------------------------------------------------------------

    def _read(self, request: HttpRequest) -> HttpResponse:
        doc_id = self.service.doc_id_of(request)
        votes: list[tuple[str, HttpResponse]] = []
        for index, slot in enumerate(self._slots):
            response = slot.backend(request)
            if response.ok:
                votes.append((response.body, response))
            elif self.service.is_missing(response):
                # "no such document" is a valid answer (empty vote), not
                # a provider failure — every replica starts that way.
                votes.append(("", response))
            else:
                self._mark_degraded(index, doc_id,
                                    f"read status {response.status}")
        if not votes:
            return HttpResponse(503, encode_form({
                "error": "no provider reachable",
            }))
        majority = self._majority([body for body, _ in votes], doc_id)
        winner = next(r for body, r in votes if body == majority)
        return winner

    # -- healing ------------------------------------------------------------

    def heal(self, doc_id: str) -> int:
        """Heal every degraded replica of ``doc_id`` now; returns how
        many were repaired.  (The write path calls :meth:`_heal` on its
        own schedule; this is the on-demand entry point for operators
        and tests.)"""
        healed = 0
        for index, slot in enumerate(self._slots):
            if slot.doc(doc_id).degraded and self._heal(index, doc_id):
                healed += 1
        return healed

    # -- internals ----------------------------------------------------------

    def _majority(self, bodies: list[str], doc_id: str) -> str:
        counts = Counter(bodies)
        winner, votes = counts.most_common(1)[0]
        if len(counts) > 1:
            self.divergences.append(
                f"{doc_id}: {len(counts)} distinct replicas "
                f"({votes}/{len(bodies)} agree)"
            )
        return winner

    def _mark_degraded(self, index: int, doc_id: str, reason: str) -> None:
        self._slots[index].doc(doc_id).degraded = True
        self.failures.append(f"backend {index} / {doc_id}: {reason}")

    def _reopen(self, index: int, doc_id: str) -> bool:
        if not self.service.capabilities.sessions:
            return True  # nothing to establish
        slot = self._slots[index]
        response = slot.backend(self.service.open_request(doc_id))
        session = (self.service.session_of_open(response)
                   if response.ok else None)
        if session is None:
            return False
        state = slot.doc(doc_id)
        state.sid, state.rev = session
        return True

    def _heal(self, index: int, doc_id: str) -> bool:
        """Copy the (ciphertext) stored bytes from a healthy replica.

        The copy goes through
        :meth:`~repro.services.backend.ServiceBackend.store_request`,
        which writes *raw stored bytes* — not through the client-facing
        full-save builder, which may re-frame content (Buzzword's XML
        mapping) and would double-encode an already-stored body.
        """
        content: str | None = None
        for other_index, slot in enumerate(self._slots):
            if other_index == index:
                continue
            if slot.doc(doc_id).degraded:
                continue
            response = slot.backend(self.service.fetch_request(doc_id))
            if response.ok:
                content = response.body
                break
        if content is None:
            return False
        if not self._reopen(index, doc_id):
            return False
        slot = self._slots[index]
        state = slot.doc(doc_id)
        response = slot.backend(self.service.store_request(
            doc_id, state.sid, state.rev, content
        ))
        if not response.ok:
            return False
        state.rev = self.service.rev_of_save(response, state.rev)
        state.degraded = False
        self.failures.append(f"backend {index} / {doc_id}: healed")
        return True

    # -- observability -------------------------------------------------------

    def backend_health(self, doc_id: str) -> list[bool]:
        """Per-backend health for ``doc_id`` (True = in sync)."""
        return [not slot.doc(doc_id).degraded for slot in self._slots]
