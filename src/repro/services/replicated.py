"""Multi-provider replication (the availability extension).

The paper's introduction concedes: "a malicious or incompetent cloud
provider can easily prevent users from accessing their documents.  This
could be addressed using replication with multiple cloud providers, but
this is outside the scope of this paper."  This module builds that
replication — entirely client-side, requiring nothing from providers,
in the spirit of the rest of the system.

:class:`ReplicatedService` is itself an ``HttpRequest -> HttpResponse``
callable, so it slots in wherever one Google-Documents server would:
the extension and client above it are unchanged and unaware.  It fans
every update out to N independent backends and reads with majority
voting.

Mechanics worth noting:

* each backend issues its own session ids and revision numbers, so the
  facade maintains per-backend ``sid``/``rev`` maps and rewrites those
  form fields per backend — the client sees one logical session;
* a backend that errors or misses updates is marked **degraded** and is
  *healed* on a later save by copying the current (ciphertext!) content
  from a healthy backend — possible precisely because replication never
  needs to understand the data;
* reads return the majority body; disagreeing minorities are logged in
  ``divergences`` (an actively mismatching provider is adversary
  behaviour the caller may want to know about);
* writes succeed iff at least ``quorum`` backends acknowledged.

:class:`FlakyServer` wraps any backend with scriptable outages for the
availability tests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.encoding.formenc import encode_form
from repro.net.http import HttpRequest, HttpResponse
from repro.services.gdocs import protocol

__all__ = ["ReplicatedService", "FlakyServer"]

Backend = Callable[[HttpRequest], HttpResponse]


class FlakyServer:
    """Wraps a backend with scriptable unavailability."""

    def __init__(self, backend: Backend):
        self._backend = backend
        self._down_for = 0
        self.requests_refused = 0

    def outage(self, requests: int) -> None:
        """Refuse the next ``requests`` requests."""
        self._down_for += requests

    def __call__(self, request: HttpRequest) -> HttpResponse:
        if self._down_for > 0:
            self._down_for -= 1
            self.requests_refused += 1
            return HttpResponse(503, encode_form({
                "error": "service unavailable",
            }))
        return self._backend(request)


@dataclass
class _BackendDocState:
    sid: str | None = None
    rev: int = -1
    degraded: bool = False


@dataclass
class _BackendSlot:
    backend: Backend
    docs: dict[str, _BackendDocState] = field(default_factory=dict)

    def doc(self, doc_id: str) -> _BackendDocState:
        return self.docs.setdefault(doc_id, _BackendDocState())


class ReplicatedService:
    """One logical document service over N independent backends."""

    def __init__(self, backends: list[Backend], quorum: int | None = None):
        if not backends:
            raise ValueError("need at least one backend")
        self._slots = [_BackendSlot(b) for b in backends]
        self.quorum = quorum if quorum is not None else len(backends) // 2 + 1
        self.divergences: list[str] = []
        self.failures: list[str] = []

    # -- dispatch --------------------------------------------------------

    def __call__(self, request: HttpRequest) -> HttpResponse:
        if request.method == "GET":
            return self._read(request)
        form = request.form if request.body else {}
        doc_id = request.query.get("docID", "")
        if protocol.F_DOC_CONTENTS in form or protocol.F_DELTA in form:
            return self._write(request, doc_id, form)
        return self._open(request, doc_id)

    # -- session open -------------------------------------------------------

    def _open(self, request: HttpRequest, doc_id: str) -> HttpResponse:
        responses: list[HttpResponse | None] = []
        for index, slot in enumerate(self._slots):
            response = slot.backend(request)
            if response.ok:
                fields = response.form
                state = slot.doc(doc_id)
                state.sid = fields[protocol.F_SID]
                state.rev = int(fields[protocol.A_REV])
                state.degraded = False
                responses.append(response)
            else:
                self._mark_degraded(index, doc_id, "open failed")
                responses.append(None)
        alive = [r for r in responses if r is not None]
        if len(alive) < self.quorum:
            return HttpResponse(503, encode_form({
                "error": f"only {len(alive)} of {len(self._slots)} "
                         f"providers reachable (quorum {self.quorum})",
            }))
        # Logical session id: the facade's own token; content by majority.
        content = self._majority(
            [r.form.get(protocol.A_CONTENT, "") for r in alive], doc_id
        )
        first = alive[0].form
        return HttpResponse(200, encode_form({
            protocol.F_SID: f"rep:{doc_id}",
            protocol.A_REV: first[protocol.A_REV],
            protocol.A_CONTENT: content,
        }))

    # -- writes -----------------------------------------------------------

    def _write(self, request: HttpRequest, doc_id: str,
               form: dict[str, str]) -> HttpResponse:
        acks: list[HttpResponse] = []
        is_full = protocol.F_DOC_CONTENTS in form
        if not is_full:
            # Heal stragglers *before* fanning out, while every healthy
            # replica still holds the pre-update content (healing after
            # an update would copy post-update bytes and then apply the
            # delta twice).
            for index, slot in enumerate(self._slots):
                if slot.doc(doc_id).degraded:
                    self._heal(index, doc_id)
        for index, slot in enumerate(self._slots):
            state = slot.doc(doc_id)
            if state.degraded and not is_full:
                continue  # heal failed; try again next update
            if state.sid is None:
                if not self._reopen(index, doc_id):
                    continue
                state = slot.doc(doc_id)
            rewritten = request.with_form({
                **form,
                protocol.F_SID: state.sid or "",
                protocol.F_REV: str(state.rev),
            })
            response = slot.backend(rewritten)
            if response.ok:
                ack = response.form
                state.rev = int(ack.get(protocol.A_REV, state.rev))
                if ack.get(protocol.A_CONFLICT) == "1":
                    # The backend diverged from the fleet; full saves heal.
                    self._mark_degraded(index, doc_id, "conflict")
                else:
                    state.degraded = False
                    acks.append(response)
            else:
                self._mark_degraded(index, doc_id,
                                    f"status {response.status}")
        if len(acks) < self.quorum:
            return HttpResponse(503, encode_form({
                "error": f"write acknowledged by {len(acks)} providers; "
                         f"quorum is {self.quorum}",
            }))
        return acks[0]

    # -- reads ------------------------------------------------------------

    def _read(self, request: HttpRequest) -> HttpResponse:
        doc_id = request.query.get("docID", "")
        bodies: list[str] = []
        responses: list[HttpResponse] = []
        for index, slot in enumerate(self._slots):
            response = slot.backend(request)
            if response.ok:
                bodies.append(response.body)
                responses.append(response)
            else:
                self._mark_degraded(index, doc_id,
                                    f"read status {response.status}")
        if not responses:
            return HttpResponse(503, encode_form({
                "error": "no provider reachable",
            }))
        majority = self._majority(bodies, doc_id)
        winner = next(r for r, b in zip(responses, bodies) if b == majority)
        return winner

    # -- internals ----------------------------------------------------------

    def _majority(self, bodies: list[str], doc_id: str) -> str:
        counts = Counter(bodies)
        winner, votes = counts.most_common(1)[0]
        if len(counts) > 1:
            self.divergences.append(
                f"{doc_id}: {len(counts)} distinct replicas "
                f"({votes}/{len(bodies)} agree)"
            )
        return winner

    def _mark_degraded(self, index: int, doc_id: str, reason: str) -> None:
        self._slots[index].doc(doc_id).degraded = True
        self.failures.append(f"backend {index} / {doc_id}: {reason}")

    def _reopen(self, index: int, doc_id: str) -> bool:
        slot = self._slots[index]
        response = slot.backend(protocol.open_request(doc_id))
        if not response.ok:
            return False
        fields = response.form
        state = slot.doc(doc_id)
        state.sid = fields[protocol.F_SID]
        state.rev = int(fields[protocol.A_REV])
        return True

    def _heal(self, index: int, doc_id: str) -> bool:
        """Copy the (ciphertext) content from a healthy replica."""
        content: str | None = None
        for other_index, slot in enumerate(self._slots):
            if other_index == index:
                continue
            if slot.doc(doc_id).degraded:
                continue
            response = slot.backend(protocol.fetch_request(doc_id))
            if response.ok:
                content = response.body
                break
        if content is None:
            return False
        if not self._reopen(index, doc_id):
            return False
        slot = self._slots[index]
        state = slot.doc(doc_id)
        response = slot.backend(protocol.full_save_request(
            doc_id, state.sid or "", state.rev, content
        ))
        if not response.ok:
            return False
        state.rev = int(response.form[protocol.A_REV])
        state.degraded = False
        self.failures.append(f"backend {index} / {doc_id}: healed")
        return True

    # -- observability -------------------------------------------------------

    def backend_health(self, doc_id: str) -> list[bool]:
        """Per-backend health for ``doc_id`` (True = in sync)."""
        return [not slot.doc(doc_id).degraded for slot in self._slots]
