"""Simulated cloud editing services: Google Documents, Mozilla Bespin,
Adobe Buzzword.  Each server is a plain ``HttpRequest -> HttpResponse``
callable that stores submitted content literally (the paper's server
assumption), suitable for plugging into :class:`repro.net.Channel`."""

from repro.services.bespin import BespinServer
from repro.services.buzzword import BuzzwordServer
from repro.services.gdocs.server import GDocsServer
from repro.services.gdocs.storage import (
    MAX_DOCUMENT_CHARS,
    DocumentStore,
    StoredDocument,
)
from repro.services.replicated import FlakyServer, ReplicatedService

__all__ = [
    "GDocsServer",
    "BespinServer",
    "BuzzwordServer",
    "DocumentStore",
    "StoredDocument",
    "MAX_DOCUMENT_CHARS",
    "ReplicatedService",
    "FlakyServer",
]
