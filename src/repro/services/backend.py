"""The provider-agnostic service protocol: one contract, many clouds.

The paper's mediation argument (§III) only holds if the client-side
machinery generalizes across untrusted services — Google Documents,
Bespin, and Buzzword are three *instances*, not three architectures.
This module is the seam that makes that true in code: a
:class:`ServiceBackend` describes everything provider-specific about
one cloud editor —

* **capability flags** (:class:`BackendCapabilities`): does the wire
  protocol carry incremental deltas?  revisions and conflicts?  edit
  sessions?  idempotency keys?
* **request builders**: how to phrase an open, a full save, a delta
  save, and a fetch as :class:`~repro.net.http.HttpRequest` objects;
* **response parsers**: how to read the provider's answers back into
  the neutral :class:`OpenState` / :class:`SaveAck` / :class:`FetchState`
  shapes the shared client core consumes;
* **replication helpers**: how a multi-provider facade
  (:class:`repro.services.replicated.ReplicatedService`) classifies a
  request, extracts its document id, rewrites per-provider session
  state, and copies raw stored bytes between replicas.

Everything above this seam — the resilient client core
(``repro.client.resilient``), the replication facade, the chaos matrix,
the fuzzer, the CLI — is written against the protocol and iterates over
backends instead of assuming Google Documents.

Layering note: this module builds and parses *messages* only.  The
simulated servers (``repro.services.gdocs.server``, the ``BespinServer``
and ``BuzzwordServer`` classes) stay out of it, so client and extension
code may import this module without reaching server internals
(enforced by ``tools/layering_check.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.encoding.formenc import encode_form
from repro.errors import ProtocolError
from repro.net.http import HttpRequest, HttpResponse
from repro.services import bespin, buzzword
from repro.services.gdocs import protocol

__all__ = [
    "KIND_OPEN",
    "KIND_SAVE_FULL",
    "KIND_SAVE_DELTA",
    "KIND_READ",
    "KIND_OTHER",
    "BackendCapabilities",
    "OpenState",
    "FetchState",
    "SaveAck",
    "ServiceBackend",
    "GDocsBackend",
    "BespinBackend",
    "BuzzwordBackend",
    "GDOCS",
    "BESPIN",
    "BUZZWORD",
    "split_paragraphs",
    "join_paragraphs",
]


@dataclass(frozen=True)
class BackendCapabilities:
    """What one provider's wire protocol can express.

    The shared client core keys every behavioural branch off these
    flags — a backend never needs to be *named* above the seam.
    """

    #: saves after the first may carry only a delta (vs whole document)
    incremental_updates: bool = False
    #: the server tracks revisions and can reject a stale save as a
    #: conflict (arming the client's resync-and-rebase machinery)
    revisioned: bool = False
    #: opening establishes an edit session (a ``sid`` the saves carry)
    sessions: bool = False
    #: the wire protocol accepts idempotency keys on saves
    idempotency_keys: bool = False
    #: a stale-revision save can come back *merged* — the server OT-
    #: rebases it over the intervening history (repro.services.ot) and
    #: acks with a ``mergePatch`` instead of a conflict.  Requires
    #: incremental updates and revisions; the whole-file providers
    #: (Bespin, Buzzword) have no delta language to merge in, so their
    #: protocol cannot express it.
    merges_stale_saves: bool = False
    #: save acks can carry the catalog's piggybacked maintenance — the
    #: encrypted-index ``idx`` records and the ``aud=1`` audit-trail
    #: opt-in of repro.services.catalog.  Every hosted service exposes
    #: the ``/Catalog`` endpoint itself (the wrapper delegates blind),
    #: but only an ack-shaped save protocol can mint chain links.
    catalog_acks: bool = False


@dataclass(frozen=True)
class OpenState:
    """What opening a document established."""

    content: str
    sid: str | None = None
    rev: int = -1


@dataclass(frozen=True)
class FetchState:
    """What a read-only fetch returned."""

    content: str
    rev: int = -1


@dataclass(frozen=True)
class SaveAck:
    """A provider's acknowledgement of a save, in neutral shape.

    Field names deliberately mirror :class:`repro.services.gdocs.protocol.Ack`
    — the richest instance — with ``rev=None`` meaning "this provider
    does not number revisions" (the client keeps its own counter
    unchanged).
    """

    rev: int | None = None
    conflict: bool = False
    merged: bool = False
    content_from_server: str = ""
    content_from_server_hash: str = ""
    #: on merged acks: the delta that carries the saver's post-save
    #: document to the merged revision (empty when not merged)
    merge_patch: str = ""


#: classification labels a replication facade dispatches on
KIND_OPEN = "open"
KIND_SAVE_FULL = "save_full"
KIND_SAVE_DELTA = "save_delta"
KIND_READ = "read"
KIND_OTHER = "other"


@runtime_checkable
class ServiceBackend(Protocol):
    """Everything provider-specific, behind one interface.

    The first block (builders + parsers) serves the client core; the
    second block (classification, session rewriting, raw-byte copies)
    serves the replication facade.  Implementations are stateless —
    all session state lives in the caller.
    """

    name: str
    capabilities: BackendCapabilities

    # -- client-side: building requests ---------------------------------

    def open_request(self, doc_id: str) -> HttpRequest:
        """The request that opens (or creates) ``doc_id``."""
        ...

    def fetch_request(self, doc_id: str) -> HttpRequest:
        """The read-only request for the stored document."""
        ...

    def full_save_request(self, doc_id: str, sid: str | None, rev: int,
                          content: str,
                          idem: str | None = None) -> HttpRequest:
        """A save carrying the whole document ``content``."""
        ...

    def delta_save_request(self, doc_id: str, sid: str | None, rev: int,
                           delta_text: str,
                           idem: str | None = None) -> HttpRequest:
        """A save carrying only ``delta_text`` (incremental backends;
        others raise — their protocol has no such message)."""
        ...

    # -- client-side: parsing responses ----------------------------------

    def parse_open(self, doc_id: str,
                   response: HttpResponse) -> OpenState:
        """Interpret the open response (raises
        :class:`~repro.errors.ProtocolError` on a hard failure)."""
        ...

    def parse_fetch(self, doc_id: str, response: HttpResponse,
                    fallback_rev: int) -> FetchState:
        """Interpret a fetch response (``fallback_rev`` when the wire
        carries no revision)."""
        ...

    def parse_save(self, response: HttpResponse) -> SaveAck:
        """Interpret a save acknowledgement (raises
        :class:`~repro.errors.ProtocolError` when unparseable)."""
        ...

    def ack_consistent(self, ack: SaveAck,
                       local_text: str) -> bool | None:
        """Does the ack agree with ``local_text``?  ``None`` = the
        protocol carries no consistency information (check abstains)."""
        ...

    # -- replication-side: routing raw stored traffic ---------------------

    def classify(self, request: HttpRequest) -> str:
        """One of the ``KIND_*`` labels for dispatching ``request``."""
        ...

    def doc_id_of(self, request: HttpRequest) -> str:
        """The document id ``request`` addresses."""
        ...

    def rewrite_session(self, request: HttpRequest, sid: str | None,
                        rev: int) -> HttpRequest:
        """``request`` with per-provider session state substituted
        (identity for sessionless protocols)."""
        ...

    def session_of_open(self,
                        response: HttpResponse) -> tuple[str, int] | None:
        """The ``(sid, rev)`` an open response established, or None."""
        ...

    def store_request(self, doc_id: str, sid: str | None, rev: int,
                      stored_body: str) -> HttpRequest:
        """A write placing *raw stored bytes* — for replica healing;
        unlike :meth:`full_save_request` this must not re-frame."""
        ...

    def is_missing(self, response: HttpResponse) -> bool:
        """Is this the protocol's "document does not exist" answer?"""
        ...

    def rev_of_save(self, response: HttpResponse, prev: int) -> int:
        """The revision a save response reports (``prev`` if none)."""
        ...

    def save_conflict(self, response: HttpResponse) -> bool:
        """Did this save response signal a revision conflict?"""
        ...

    def content_of_open(self, response: HttpResponse) -> str:
        """The document content an open response carries."""
        ...

    def synthesize_open(self, doc_id: str, sid: str, rev: int,
                        content: str) -> HttpResponse:
        """Fabricate the open response a facade answers with."""
        ...


# -- Google Documents ---------------------------------------------------------


class GDocsBackend:
    """The reverse-engineered Google Documents protocol (SIV-A)."""

    name = "gdocs"
    capabilities = BackendCapabilities(
        incremental_updates=True,
        revisioned=True,
        sessions=True,
        idempotency_keys=True,
        merges_stale_saves=True,
        catalog_acks=True,
    )

    # -- builders --------------------------------------------------------

    def open_request(self, doc_id: str) -> HttpRequest:
        """Session-opening POST (``/Doc?docID=...``, empty body)."""
        return protocol.open_request(doc_id)

    def fetch_request(self, doc_id: str) -> HttpRequest:
        """Document download GET."""
        return protocol.fetch_request(doc_id)

    def full_save_request(self, doc_id: str, sid: str | None, rev: int,
                          content: str,
                          idem: str | None = None) -> HttpRequest:
        """First-save POST: whole contents in ``docContents``."""
        return protocol.full_save_request(doc_id, sid or "", rev, content,
                                          idem=idem)

    def delta_save_request(self, doc_id: str, sid: str | None, rev: int,
                           delta_text: str,
                           idem: str | None = None) -> HttpRequest:
        """Subsequent-save POST: only the difference, in ``delta``."""
        return protocol.delta_save_request(doc_id, sid or "", rev,
                                           delta_text, idem=idem)

    # -- parsers ---------------------------------------------------------

    def parse_open(self, doc_id: str, response: HttpResponse) -> OpenState:
        """Read the open ack: session id, revision, current content."""
        if not response.ok:
            raise ProtocolError(f"open failed: {response.body}")
        fields = response.form
        try:
            return OpenState(
                content=fields.get(protocol.A_CONTENT, ""),
                sid=fields[protocol.F_SID],
                rev=int(fields[protocol.A_REV]),
            )
        except KeyError as exc:
            raise ProtocolError(f"open ack missing field {exc}") from None
        except ValueError as exc:
            raise ProtocolError(f"open ack unparseable: {exc}") from None

    def parse_fetch(self, doc_id: str, response: HttpResponse,
                    fallback_rev: int) -> FetchState:
        """Fetched body is the content; revision rides in a header."""
        try:
            rev = int(response.headers.get(protocol.A_REV, fallback_rev))
        except ValueError:
            rev = fallback_rev
        return FetchState(content=response.body, rev=rev)

    def parse_save(self, response: HttpResponse) -> SaveAck:
        """Parse the Ack (raises ProtocolError when mangled)."""
        ack = protocol.Ack.from_response(response)
        return SaveAck(
            rev=ack.rev,
            conflict=ack.conflict,
            merged=ack.merged,
            content_from_server=ack.content_from_server,
            content_from_server_hash=ack.content_from_server_hash,
            merge_patch=ack.merge_patch,
        )

    def ack_consistent(self, ack: SaveAck,
                       local_text: str) -> bool | None:
        """The ``contentFromServerHash`` check; a neutral hash ("0")
        carries no information (the blanking the paper relied on)."""
        if ack.content_from_server_hash == protocol.NEUTRAL_HASH:
            return None
        return ack.content_from_server_hash == \
            protocol.content_hash(local_text)

    # -- replication helpers ----------------------------------------------

    def classify(self, request: HttpRequest) -> str:
        """GET = read; save field present = save; other POSTs open."""
        if request.method == "GET":
            return KIND_READ
        form = request.form if request.body else {}
        if protocol.F_DOC_CONTENTS in form:
            return KIND_SAVE_FULL
        if protocol.F_DELTA in form:
            return KIND_SAVE_DELTA
        return KIND_OPEN

    def doc_id_of(self, request: HttpRequest) -> str:
        """The ``docID`` query parameter."""
        return request.query.get("docID", "")

    def rewrite_session(self, request: HttpRequest, sid: str | None,
                        rev: int) -> HttpRequest:
        """Substitute this provider's ``sid``/``rev`` form fields."""
        form = request.form if request.body else {}
        return request.with_form({
            **form,
            protocol.F_SID: sid or "",
            protocol.F_REV: str(rev),
        })

    def session_of_open(self,
                        response: HttpResponse) -> tuple[str, int] | None:
        """The sid/rev pair of a successful open ack."""
        fields = response.form
        try:
            return fields[protocol.F_SID], int(fields[protocol.A_REV])
        except (KeyError, ValueError):
            return None

    def store_request(self, doc_id: str, sid: str | None, rev: int,
                      stored_body: str) -> HttpRequest:
        """Stored bytes ARE the ``docContents`` payload here."""
        return protocol.full_save_request(doc_id, sid or "", rev,
                                          stored_body)

    def is_missing(self, response: HttpResponse) -> bool:
        """404 (the simulated server auto-creates, so rarely seen)."""
        return response.status == 404

    def rev_of_save(self, response: HttpResponse, prev: int) -> int:
        """The Ack's ``rev`` field, tolerating its absence."""
        try:
            return int(response.form.get(protocol.A_REV, prev))
        except ValueError:
            return prev

    def save_conflict(self, response: HttpResponse) -> bool:
        """The Ack's ``conflict`` flag."""
        return response.form.get(protocol.A_CONFLICT) == "1"

    def content_of_open(self, response: HttpResponse) -> str:
        """The open ack's ``contentFromServer`` field."""
        return response.form.get(protocol.A_CONTENT, "")

    def synthesize_open(self, doc_id: str, sid: str, rev: int,
                        content: str) -> HttpResponse:
        """An open ack in the provider's form encoding."""
        return HttpResponse(200, encode_form({
            protocol.F_SID: sid,
            protocol.A_REV: str(rev),
            protocol.A_CONTENT: content,
        }))


# -- Mozilla Bespin -----------------------------------------------------------


class BespinBackend:
    """Whole-file HTTP PUTs; no sessions, revisions, or deltas (SIII)."""

    name = "bespin"
    capabilities = BackendCapabilities()

    # -- builders --------------------------------------------------------

    def open_request(self, doc_id: str) -> HttpRequest:
        """Opening is just a GET (there are no sessions)."""
        return bespin.get_request(doc_id)

    def fetch_request(self, doc_id: str) -> HttpRequest:
        """File GET."""
        return bespin.get_request(doc_id)

    def full_save_request(self, doc_id: str, sid: str | None, rev: int,
                          content: str,
                          idem: str | None = None) -> HttpRequest:
        """Whole-file PUT (Bespin's only write; sid/rev/idem unused)."""
        return bespin.put_request(doc_id, content)

    def delta_save_request(self, doc_id: str, sid: str | None, rev: int,
                           delta_text: str,
                           idem: str | None = None) -> HttpRequest:
        """Unsupported: SIII found no incremental update mechanism."""
        raise ProtocolError("Bespin has no incremental update mechanism")

    # -- parsers ---------------------------------------------------------

    def parse_open(self, doc_id: str, response: HttpResponse) -> OpenState:
        """File body; a 404 means "not created yet" (empty buffer)."""
        if response.status == 404:
            return OpenState(content="")
        if not response.ok:
            raise ProtocolError(f"open failed: {response.body}")
        return OpenState(content=response.body)

    def parse_fetch(self, doc_id: str, response: HttpResponse,
                    fallback_rev: int) -> FetchState:
        """File body; missing file reads as empty."""
        if response.status == 404:
            return FetchState(content="", rev=fallback_rev)
        return FetchState(content=response.body, rev=fallback_rev)

    def parse_save(self, response: HttpResponse) -> SaveAck:
        """Bespin acks carry nothing; a neutral SaveAck."""
        return SaveAck()

    def ack_consistent(self, ack: SaveAck,
                       local_text: str) -> bool | None:
        """No content information in acks — always abstains."""
        return None

    # -- replication helpers ----------------------------------------------

    def classify(self, request: HttpRequest) -> str:
        """PUT/DELETE mutate whole files; GETs (file or listing) read."""
        if request.path.startswith("/file/at/"):
            if request.method in ("PUT", "DELETE"):
                return KIND_SAVE_FULL
            if request.method == "GET":
                return KIND_READ
        if request.path.startswith("/file/list/"):
            return KIND_READ
        return KIND_OTHER

    def doc_id_of(self, request: HttpRequest) -> str:
        """The file path after the endpoint prefix."""
        for prefix in ("/file/at/", "/file/list/"):
            if request.path.startswith(prefix):
                return request.path[len(prefix):]
        return request.path

    def rewrite_session(self, request: HttpRequest, sid: str | None,
                        rev: int) -> HttpRequest:
        """Identity: no per-provider session state exists."""
        return request

    def session_of_open(self,
                        response: HttpResponse) -> tuple[str, int] | None:
        """Never a session."""
        return None

    def store_request(self, doc_id: str, sid: str | None, rev: int,
                      stored_body: str) -> HttpRequest:
        """A PUT already writes raw bytes."""
        return bespin.put_request(doc_id, stored_body)

    def is_missing(self, response: HttpResponse) -> bool:
        """404 = no such file."""
        return response.status == 404

    def rev_of_save(self, response: HttpResponse, prev: int) -> int:
        """Bespin does not number revisions."""
        return prev

    def save_conflict(self, response: HttpResponse) -> bool:
        """Last writer wins; conflicts cannot be expressed."""
        return False

    def content_of_open(self, response: HttpResponse) -> str:
        """The file body ("" for a file that does not exist yet)."""
        return "" if response.status == 404 else response.body

    def synthesize_open(self, doc_id: str, sid: str, rev: int,
                        content: str) -> HttpResponse:
        """An open answer is just the file content."""
        return HttpResponse(200, content)


# -- Adobe Buzzword -----------------------------------------------------------


def split_paragraphs(text: str) -> list[str]:
    """The client text ↔ paragraph-list mapping (inverse of join)."""
    return text.split("\n") if text else []


def join_paragraphs(paragraphs: list[str]) -> str:
    """Paragraphs as one editor text (newline-joined)."""
    return "\n".join(paragraphs)


class BuzzwordBackend:
    """Whole-document XML POSTs; paragraphs ride in ``<textRun>`` tags."""

    name = "buzzword"
    capabilities = BackendCapabilities()

    # -- builders --------------------------------------------------------

    def open_request(self, doc_id: str) -> HttpRequest:
        """Opening is just a document GET (no sessions)."""
        return buzzword.get_request(doc_id)

    def fetch_request(self, doc_id: str) -> HttpRequest:
        """Document GET."""
        return buzzword.get_request(doc_id)

    def full_save_request(self, doc_id: str, sid: str | None, rev: int,
                          content: str,
                          idem: str | None = None) -> HttpRequest:
        """Whole-document XML POST; the newline-joined ``content`` is
        split back into one ``<textRun>`` per paragraph."""
        xml = buzzword.document_xml(split_paragraphs(content))
        return buzzword.post_request(doc_id, xml)

    def delta_save_request(self, doc_id: str, sid: str | None, rev: int,
                           delta_text: str,
                           idem: str | None = None) -> HttpRequest:
        """Unsupported: Buzzword re-sends everything on every save."""
        raise ProtocolError("Buzzword re-sends the whole document XML")

    # -- parsers ---------------------------------------------------------

    def parse_open(self, doc_id: str, response: HttpResponse) -> OpenState:
        """Text runs joined to one text; 404 = not created yet."""
        if response.status == 404:
            return OpenState(content="")
        if not response.ok:
            raise ProtocolError(f"open failed: {response.body}")
        return OpenState(
            content=join_paragraphs(buzzword.text_runs(response.body))
        )

    def parse_fetch(self, doc_id: str, response: HttpResponse,
                    fallback_rev: int) -> FetchState:
        """Same framing as opens; missing document reads as empty."""
        if response.status == 404:
            return FetchState(content="", rev=fallback_rev)
        return FetchState(
            content=join_paragraphs(buzzword.text_runs(response.body)),
            rev=fallback_rev,
        )

    def parse_save(self, response: HttpResponse) -> SaveAck:
        """Buzzword acks carry nothing; a neutral SaveAck."""
        return SaveAck()

    def ack_consistent(self, ack: SaveAck,
                       local_text: str) -> bool | None:
        """No content information in acks — always abstains."""
        return None

    # -- replication helpers ----------------------------------------------

    def classify(self, request: HttpRequest) -> str:
        """POSTs to ``/doc/`` save whole documents; GETs read."""
        if not request.path.startswith("/doc/"):
            return KIND_OTHER
        if request.method == "POST":
            return KIND_SAVE_FULL
        if request.method == "GET":
            return KIND_READ
        return KIND_OTHER

    def doc_id_of(self, request: HttpRequest) -> str:
        """The document id after ``/doc/``."""
        if request.path.startswith("/doc/"):
            return request.path[len("/doc/"):]
        return request.path

    def rewrite_session(self, request: HttpRequest, sid: str | None,
                        rev: int) -> HttpRequest:
        """Identity: no per-provider session state exists."""
        return request

    def session_of_open(self,
                        response: HttpResponse) -> tuple[str, int] | None:
        """Never a session."""
        return None

    def store_request(self, doc_id: str, sid: str | None, rev: int,
                      stored_body: str) -> HttpRequest:
        """POST the raw stored XML as-is (no paragraph re-framing —
        the bytes are already a stored document)."""
        return buzzword.post_request(doc_id, stored_body)

    def is_missing(self, response: HttpResponse) -> bool:
        """404 = no such document."""
        return response.status == 404

    def rev_of_save(self, response: HttpResponse, prev: int) -> int:
        """Buzzword does not number revisions."""
        return prev

    def save_conflict(self, response: HttpResponse) -> bool:
        """Last writer wins; conflicts cannot be expressed."""
        return False

    def content_of_open(self, response: HttpResponse) -> str:
        """The stored XML ("" for a document that does not exist)."""
        if response.status == 404:
            return ""
        return response.body

    def synthesize_open(self, doc_id: str, sid: str, rev: int,
                        content: str) -> HttpResponse:
        """An open answer is just the stored document body."""
        return HttpResponse(200, content)


#: shared singleton instances (backends are stateless)
GDOCS = GDocsBackend()
BESPIN = BespinBackend()
BUZZWORD = BuzzwordBackend()
