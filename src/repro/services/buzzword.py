"""Simulated Adobe Buzzword: whole-document XML POSTs.

SIII: "On every update, the client sends back the whole document content
as a XML file encapsulated in a HTTP POST request.  By encrypting the
text embedded in ``<textRun>`` tags, we keep submitted document content
secure."  The server stores the XML literally and serves it back; a
word-count endpoint demonstrates a server feature that reads the text
runs (and therefore breaks under encryption).

A tiny XML helper layer (escape/unescape + textRun splicing) lives here
too; both the server and the Buzzword extension use it, so they agree
on the exact framing.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.encoding.formenc import encode_form
from repro.net.http import HttpRequest, HttpResponse

__all__ = [
    "BuzzwordServer", "HOST",
    "xml_escape", "xml_unescape",
    "document_xml", "text_runs", "map_text_runs",
    "post_request", "get_request",
]

HOST = "buzzword.acrobat.com"
_DOC_PREFIX = "/doc/"
_TEXTRUN = re.compile(r"<textRun>(.*?)</textRun>", re.DOTALL)

_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]


def xml_escape(text: str) -> str:
    """Escape ``& < >`` for embedding text in XML."""
    for char, entity in _ESCAPES:
        text = text.replace(char, entity)
    return text


def xml_unescape(text: str) -> str:
    """Invert :func:`xml_escape`."""
    for char, entity in reversed(_ESCAPES):
        text = text.replace(entity, char)
    return text


def document_xml(paragraphs: list[str]) -> str:
    """Render paragraphs as the Buzzword document body."""
    runs = "".join(
        f"<p><textRun>{xml_escape(p)}</textRun></p>" for p in paragraphs
    )
    return f"<doc>{runs}</doc>"


def text_runs(xml: str) -> list[str]:
    """Extract the (unescaped) text of every ``<textRun>``."""
    return [xml_unescape(m.group(1)) for m in _TEXTRUN.finditer(xml)]


def map_text_runs(xml: str, transform: Callable[[str], str]) -> str:
    """Rewrite every ``<textRun>`` body through ``transform``.

    ``transform`` receives and returns *unescaped* text; the structure
    of the document (tags, attributes, ordering) is untouched — exactly
    the extension's contract.
    """
    def replace(match: re.Match[str]) -> str:
        inner = xml_unescape(match.group(1))
        return f"<textRun>{xml_escape(transform(inner))}</textRun>"

    return _TEXTRUN.sub(replace, xml)


def post_request(doc_id: str, xml: str) -> HttpRequest:
    """Save the whole document (Buzzword's only update operation)."""
    return HttpRequest("POST", f"http://{HOST}{_DOC_PREFIX}{doc_id}",
                       body=xml)


def get_request(doc_id: str) -> HttpRequest:
    """Fetch a document."""
    return HttpRequest("GET", f"http://{HOST}{_DOC_PREFIX}{doc_id}")


class BuzzwordServer:
    """Callable endpoint storing document XML literally."""

    def __init__(self) -> None:
        self.documents: dict[str, str] = {}

    def __call__(self, request: HttpRequest) -> HttpResponse:
        path = request.path
        if not path.startswith(_DOC_PREFIX):
            return HttpResponse(404, f"unknown endpoint {path}")
        doc_id = path[len(_DOC_PREFIX):]
        if request.method == "POST":
            if "<doc>" not in request.body:
                # A malformed body (e.g. truncated in flight) is the
                # sender's problem, reported on the wire — raising here
                # would crash the simulated service instead of letting
                # a resilient client observe the failure and recover.
                return HttpResponse(
                    400, "Buzzword save must carry a <doc> body"
                )
            self.documents[doc_id] = request.body
            return HttpResponse(200, "")
        if request.method == "GET":
            if doc_id.endswith("/wordcount"):
                real_id = doc_id[: -len("/wordcount")]
                xml = self.documents.get(real_id, "")
                words = sum(len(run.split()) for run in text_runs(xml))
                return HttpResponse(200, encode_form({"words": str(words)}))
            if doc_id not in self.documents:
                return HttpResponse(404, "no such document")
            return HttpResponse(200, self.documents[doc_id])
        return HttpResponse(405, f"method {request.method} not allowed")
