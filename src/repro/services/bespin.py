"""Simulated Mozilla Bespin: cloud code editing with whole-file PUTs.

SIII: "It simply uses HTTP PUT requests to send user content back to
the server stored as a file.  No incremental update mechanisms are
found in Bespin."  The open server API stores files under
``/file/at/<project>/<path>``; GET retrieves, PUT stores, and a listing
endpoint enumerates a project — that is the entire surface the
extension must cover.
"""

from __future__ import annotations

from repro.encoding.formenc import encode_form
from repro.net.http import HttpRequest, HttpResponse

__all__ = ["BespinServer", "HOST", "file_url", "put_request", "get_request"]

HOST = "bespin.mozilla.com"
_FILE_PREFIX = "/file/at/"
_LIST_PREFIX = "/file/list/"


def file_url(path: str) -> str:
    """Absolute URL of a Bespin file path."""
    return f"http://{HOST}{_FILE_PREFIX}{path}"


def put_request(path: str, content: str) -> HttpRequest:
    """Save a file (the only write operation in the Bespin protocol)."""
    return HttpRequest("PUT", file_url(path), body=content)


def get_request(path: str) -> HttpRequest:
    """Fetch a file."""
    return HttpRequest("GET", file_url(path))


class BespinServer:
    """Callable endpoint storing files literally."""

    def __init__(self) -> None:
        self.files: dict[str, str] = {}

    def __call__(self, request: HttpRequest) -> HttpResponse:
        path = request.path
        if path.startswith(_FILE_PREFIX):
            name = path[len(_FILE_PREFIX):]
            if request.method == "PUT":
                self.files[name] = request.body
                return HttpResponse(200, "")
            if request.method == "GET":
                if name not in self.files:
                    return HttpResponse(404, "no such file")
                return HttpResponse(200, self.files[name])
            if request.method == "DELETE":
                self.files.pop(name, None)
                return HttpResponse(200, "")
        if path.startswith(_LIST_PREFIX) and request.method == "GET":
            prefix = path[len(_LIST_PREFIX):]
            names = sorted(n for n in self.files if n.startswith(prefix))
            return HttpResponse(200, encode_form({"files": "\n".join(names)}))
        return HttpResponse(404, f"unknown endpoint {request.method} {path}")
