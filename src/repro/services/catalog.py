"""The tenant catalog: doc listing, encrypted search index, audit trail.

PR 7 made the server multi-tenant and document-sharded; this module is
the *service side* of the multi-document workspace story.  A
:class:`CatalogService` wraps any registry server callable and adds,
without touching a byte of the wrapped protocol:

* ``POST /Catalog?op=list`` — the document ids this tenant has touched;
* ``POST /Catalog?op=store`` — apply encrypted index records directly;
* ``POST /Catalog?op=lookup`` — the posting blobs filed under one
  opaque trapdoor (the server cannot tell which word it serves);
* ``POST /Catalog?op=chain`` — the audit chain for one document;
* piggybacked maintenance: a save request may carry ``idx`` (encrypted
  index delta records, emitted by the workspace indexer as a side
  effect of IncE) and ``aud=1`` (opt into the hash-chained audit
  trail, :mod:`repro.core.auditchain`).  On an acknowledged save the
  records are applied and a chain link over ``(rev, contentHash)`` is
  minted; audited acks gain an ``auditLink`` field.

Privacy: everything the catalog stores is opaque.  A search token is
``HMAC(k_search, word)`` — the server never sees a word; a posting
blob is the doc id encrypted under a key derived from ``k_blob`` and
the trapdoor — the server can serve and dedup blobs but not read them.
The whole scheme is the deterministic-trapdoor construction of the
encrypted-search literature (PAPERS.md: *Global Heuristic Search on
Encrypted Data*), grafted onto the paper's mediation architecture.

Wire-compatibility is load-bearing: a request that carries neither
``/Catalog`` path nor opt-in fields passes through byte-identically
(the fuzz digests and the chaos parity matrix pin this), so every
single-document baseline is untouched.

Layering: this module is provider territory.  It must not import the
trusted layer and — like the OT engine — must never hold key material
(``tools/layering_check.py`` enforces both): a catalog that could
decrypt its own postings would be a provider that can read.
"""

from __future__ import annotations

import threading

from repro.core.auditchain import AuditChain, encode_entries
from repro.encoding.formenc import encode_form
from repro.errors import ProtocolError
from repro.net.http import HttpRequest, HttpResponse
from repro.obs import counter, gauge
from repro.services.gdocs import protocol

__all__ = [
    "CATALOG_PATH",
    "F_INDEX",
    "F_AUDIT",
    "A_AUDIT_LINK",
    "encode_records",
    "decode_records",
    "catalog_list_request",
    "catalog_store_request",
    "catalog_lookup_request",
    "catalog_chain_request",
    "CatalogStore",
    "CatalogService",
]

#: the catalog endpoint (same host as the document protocol; the
#: extension's mediator does not understand it, so workspace catalog
#: traffic rides its own unmediated channel)
CATALOG_PATH = "/Catalog"

#: save-request form field carrying encrypted index delta records
F_INDEX = "idx"
#: save-request form field opting the save into the audit trail
F_AUDIT = "aud"
#: ack response field carrying the current audit chain head link
A_AUDIT_LINK = "auditLink"

_REQUESTS = counter("services.catalog.requests")
_RECORDS = counter("services.catalog.records_applied")
_LOOKUPS = counter("services.catalog.lookups")
_CHAIN_APPENDS = counter("services.catalog.chain_appends")
_POSTINGS = gauge("services.catalog.postings")


# -- the record codec --------------------------------------------------------
#
# One index delta record is ("+" | "-", trapdoor, blob): add or remove
# one posting blob under one trapdoor.  All components are hex, so the
# wire form needs no escaping: "op:trapdoor:blob" joined by ";".


def encode_records(records) -> str:
    """Wire form of a list of ``(op, trapdoor, blob)`` records."""
    return ";".join(f"{op}:{trap}:{blob}" for op, trap, blob in records)


def decode_records(text: str) -> list[tuple[str, str, str]]:
    """Parse :func:`encode_records` output (raises
    :class:`~repro.errors.ProtocolError` on malformed records)."""
    records: list[tuple[str, str, str]] = []
    if not text:
        return records
    for part in text.split(";"):
        try:
            op, trap, blob = part.split(":")
        except ValueError:
            raise ProtocolError(
                f"malformed index record {part!r}") from None
        if op not in ("+", "-"):
            raise ProtocolError(f"unknown index record op {op!r}")
        records.append((op, trap, blob))
    return records


# -- request builders --------------------------------------------------------


def _catalog_url(op: str) -> str:
    return f"http://{protocol.HOST}{CATALOG_PATH}?{encode_form({'op': op})}"


def catalog_list_request() -> HttpRequest:
    """All document ids the tenant's catalog has seen."""
    return HttpRequest("POST", _catalog_url("list"), body="")


def catalog_store_request(records) -> HttpRequest:
    """Apply index delta records out of band (bulk rebuild path)."""
    return HttpRequest("POST", _catalog_url("store"),
                       body=encode_form({F_INDEX: encode_records(records)}))


def catalog_lookup_request(trapdoor: str) -> HttpRequest:
    """The posting blobs filed under one opaque trapdoor."""
    return HttpRequest("POST", _catalog_url("lookup"),
                       body=encode_form({"tok": trapdoor}))


def catalog_chain_request(doc_id: str) -> HttpRequest:
    """The audit chain recorded for ``doc_id``."""
    return HttpRequest("POST", _catalog_url("chain"),
                       body=encode_form({"doc": doc_id}))


# -- the store ---------------------------------------------------------------


class CatalogStore:
    """Per-tenant catalog state: doc ids, postings, audit chains.

    One instance is shared by every shard of a (service, tenant) pair
    in :class:`repro.net.server.ReproServer` — searches and listings
    are tenant-global while document state stays sharded — so all
    mutators take the internal lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._doc_ids: set[str] = set()
        # trapdoor -> insertion-ordered set of posting blobs (dict keys)
        self._postings: dict[str, dict[str, None]] = {}
        self._chains: dict[str, AuditChain] = {}
        # doc_id -> newest revision whose piggybacked records/audit were
        # applied; an idempotent replay answers from the wrapped
        # server's cache with the same rev, so it must not re-apply
        self._applied_rev: dict[str, int] = {}

    # -- doc catalog ----------------------------------------------------

    def note_doc(self, doc_id: str) -> None:
        """Record that the tenant touched ``doc_id``."""
        with self._lock:
            self._doc_ids.add(doc_id)

    def doc_ids(self) -> list[str]:
        """Every document id this tenant's catalog has seen, sorted."""
        with self._lock:
            return sorted(self._doc_ids)

    # -- encrypted index ------------------------------------------------

    def apply_records(self, records) -> int:
        """Apply ``(op, trapdoor, blob)`` records; returns how many."""
        with self._lock:
            return self._apply_locked(records)

    def _apply_locked(self, records) -> int:
        applied = 0
        for op, trap, blob in records:
            postings = self._postings.setdefault(trap, {})
            if op == "+":
                if blob not in postings:
                    postings[blob] = None
                    _POSTINGS.add(1)
            else:
                if postings.pop(blob, 0) is None:
                    _POSTINGS.add(-1)
            applied += 1
        _RECORDS.inc(applied)
        return applied

    def lookup(self, trapdoor: str) -> list[str]:
        """The posting blobs under ``trapdoor`` (insertion order)."""
        _LOOKUPS.inc()
        with self._lock:
            return list(self._postings.get(trapdoor, ()))

    @property
    def posting_count(self) -> int:
        with self._lock:
            return sum(len(blobs) for blobs in self._postings.values())

    # -- audit chains ---------------------------------------------------

    def chain(self, doc_id: str) -> AuditChain:
        """The audit chain for ``doc_id`` (created empty on first use)."""
        with self._lock:
            chain = self._chains.get(doc_id)
            if chain is None:
                chain = self._chains[doc_id] = AuditChain()
            return chain

    def commit(self, doc_id: str, rev: int, content_hash: str,
               records=(), audit: bool = False) -> bool:
        """Apply one acknowledged save's piggybacked catalog work.

        Returns False (a no-op) when ``rev`` does not advance past the
        newest applied revision — the idempotent-replay and
        deduplicated-full-save cases, where the wrapped server answered
        without storing anything new.
        """
        with self._lock:
            self._doc_ids.add(doc_id)
            if rev <= self._applied_rev.get(doc_id, -1):
                return False
            self._applied_rev[doc_id] = rev
            if records:
                self._apply_locked(records)
            if audit:
                chain = self._chains.setdefault(doc_id, AuditChain())
                chain.append(rev, content_hash)
                _CHAIN_APPENDS.inc()
            return True

    def head_link(self, doc_id: str) -> str | None:
        """The newest audit link for ``doc_id`` (None: never audited)."""
        with self._lock:
            chain = self._chains.get(doc_id)
            head = chain.head if chain is not None else None
            return head.link if head is not None else None


# -- the service wrapper -----------------------------------------------------


class CatalogService:
    """Wrap any registry server callable with the catalog endpoint.

    Requests for :data:`CATALOG_PATH` are answered from the
    :class:`CatalogStore`; everything else is delegated to the wrapped
    server untouched (attribute access delegates too, so
    ``registry.server_view`` and the test helpers keep working against
    the wrapped instance).  Only requests that opt in — ``idx`` index
    records or ``aud=1`` — trigger any post-processing of the wrapped
    server's answer, which is what keeps every pre-existing wire byte
    identical.
    """

    def __init__(self, inner, store: CatalogStore | None = None):
        self.inner = inner
        self.catalog = store if store is not None else CatalogStore()

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def __call__(self, request: HttpRequest) -> HttpResponse:
        if request.path == CATALOG_PATH:
            return self._serve_catalog(request)
        response = self.inner(request)
        return self._post_process(request, response)

    # -- the catalog endpoint -------------------------------------------

    def _serve_catalog(self, request: HttpRequest) -> HttpResponse:
        _REQUESTS.inc()
        op = request.query.get("op", "")
        try:
            form = request.form if request.body else {}
        except ProtocolError as exc:
            return self._error(400, f"malformed catalog request: {exc}")
        if op == "list":
            return HttpResponse(
                status=200, body=",".join(self.catalog.doc_ids()))
        if op == "store":
            try:
                records = decode_records(form.get(F_INDEX, ""))
            except ProtocolError as exc:
                return self._error(400, str(exc))
            applied = self.catalog.apply_records(records)
            return HttpResponse(status=200, body=str(applied))
        if op == "lookup":
            trapdoor = form.get("tok", "")
            if not trapdoor:
                return self._error(400, "lookup without a trapdoor")
            return HttpResponse(
                status=200, body=",".join(self.catalog.lookup(trapdoor)))
        if op == "chain":
            doc_id = form.get("doc", "")
            if not doc_id:
                return self._error(400, "chain request without a doc id")
            entries = self.catalog.chain(doc_id).entries
            return HttpResponse(status=200, body=encode_entries(entries))
        return self._error(400, f"unknown catalog op {op!r}")

    @staticmethod
    def _error(status: int, message: str) -> HttpResponse:
        return HttpResponse(status=status,
                            body=encode_form({"error": message}))

    # -- piggybacked maintenance ----------------------------------------

    def _post_process(self, request: HttpRequest,
                      response: HttpResponse) -> HttpResponse:
        doc_id = request.query.get("docID", "")
        if doc_id:
            self.catalog.note_doc(doc_id)
        if not response.ok or request.method != "POST" or not request.body:
            return response
        try:
            form = request.form
        except ProtocolError:
            return response
        audited = form.get(F_AUDIT) == "1"
        raw_records = form.get(F_INDEX, "")
        if not audited and not raw_records:
            return response  # the entire single-doc legacy wire
        try:
            fields = response.form
        except ProtocolError:
            return response
        if fields.get(protocol.A_STATUS) != "ok" or \
                fields.get(protocol.A_CONFLICT) == "1":
            return response
        try:
            rev = int(fields.get(protocol.A_REV, ""))
        except ValueError:
            return response
        try:
            records = decode_records(raw_records)
        except ProtocolError:
            records = ()
        self.catalog.commit(
            doc_id, rev, fields.get(protocol.A_CONTENT_HASH, ""),
            records=records, audit=audited,
        )
        if audited:
            head = self.catalog.head_link(doc_id)
            if head is not None:
                return response.with_form({**fields, A_AUDIT_LINK: head})
        return response
