"""Server-side operational transformation over cdelta quanta.

PR 3 taught the *client* to rebase its pending edit over fetched
history after a conflict; this module moves the same algebra to the
**untrusted** side so the server can merge a stale-revision save
against the intervening history instead of answering conflict.  The
server never learns what the deltas mean — a cdelta is just a delta
over the wire string, and transform/compose are plaintext-blind
coordinate arithmetic — so merging costs the provider nothing in
trust (the layering lint pins that this module imports no client,
extension, or crypto code).

The merge itself is the working-state rebase: walk the intervening
history bottom-up, carrying the incoming delta forward over each
committed delta while accumulating the mirror-image *patch* that
carries the saver's own state forward over the history:

    rebased = incoming;  patch = identity
    for committed in history:
        patch   = compose(patch, transform(committed, rebased, "left"))
        rebased = transform(rebased, committed, "right")

TP1 gives the loop invariant ``base∘incoming∘patch ==
base∘history[:i]∘rebased`` at every step, so after the walk

* ``rebased`` applies cleanly to the server's head (that is what the
  store commits), and
* ``patch`` applies cleanly to the *saver's* post-save state — the
  trusted side uses it to fast-forward its ciphertext mirror to the
  merged document without a fetch round-trip.

History wins insert-position ties (``priority="right"`` for the
incoming delta), matching the first-writer-wins rule the conflict
path's client-side rebase already used.

Quanta: rECB cdeltas only ever splice whole fixed-width records after
the header, so every genuine cdelta is *grid-aligned* — all its edit
positions and extents are multiples of the record width, offset by the
header length.  Transform and compose preserve that alignment (edits
only shift by whole-record amounts and deletes only split at other
edits' grid boundaries), which makes :func:`grid_aligned` a cheap
client-side sanity gate before a merge patch is let anywhere near the
mirror.  ``tests/property/test_prop_ot.py`` pins both the rebase/patch
duality and alignment preservation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.delta import Delta, Insert, Retain
from repro.core.ot import compose as _compose
from repro.core.ot import transform as _transform
from repro.obs import counter, histogram

__all__ = ["MergeResult", "transform", "compose", "rebase",
           "grid_aligned"]

_TRANSFORMS = counter("services.ot.transforms")
_COMPOSES = counter("services.ot.composes")
_MERGES = counter("services.ot.merges")
_REJECTS = counter("services.ot.rejects")
_DEPTH = histogram("services.ot.history_depth")


def transform(a: Delta, b: Delta, priority: str) -> Delta:
    """Counted :func:`repro.core.ot.transform` (a' such that applying
    ``b`` then ``a'`` equals applying ``a`` then ``transform(b, a)``)."""
    _TRANSFORMS.inc()
    return _transform(a, b, priority)


def compose(first: Delta, second: Delta) -> Delta:
    """Counted :func:`repro.core.ot.compose` (one delta with the effect
    of ``first`` then ``second``)."""
    _COMPOSES.inc()
    return _compose(first, second)


@dataclass(frozen=True)
class MergeResult:
    """Outcome of rebasing one stale save over committed history.

    ``rebased`` applies to the server's current head; ``patch`` applies
    to the saver's post-save document and produces the same merged
    text.  ``depth`` is how many committed deltas were walked.
    """

    rebased: Delta
    patch: Delta
    depth: int


def rebase(incoming: Delta,
           history: Iterable[Delta | str]) -> MergeResult:
    """Rebase ``incoming`` (built against a stale revision) over the
    committed ``history`` deltas that followed that revision.

    ``history`` entries may be :class:`Delta` objects or wire strings
    (the store's ops log keeps wire strings).  Raises whatever the
    underlying parse/transform raises on malformed input — callers
    (the merging server) map that to a conflict answer and count it
    under ``services.ot.rejects`` via :func:`reject`.
    """
    rebased = incoming
    patch = Delta(())
    depth = 0
    for committed in history:
        if isinstance(committed, str):
            committed = Delta.parse(committed)
        patch = compose(patch, transform(committed, rebased, "left"))
        rebased = transform(rebased, committed, "right")
        depth += 1
    _MERGES.inc()
    _DEPTH.observe(depth)
    return MergeResult(rebased=rebased, patch=patch, depth=depth)


def reject() -> None:
    """Count a merge attempt that had to fall back to conflict."""
    _REJECTS.inc()


def grid_aligned(delta: Delta, offset: int, step: int) -> bool:
    """Does every edit in ``delta`` respect the record grid?

    The grid is the set of positions ``offset + k*step`` (``k >= 0``)
    — for rECB, ``offset`` is the header wire length and ``step`` the
    encoded record width.  An aligned delta only inserts/deletes whole
    records at record boundaries at or after the header; genuine rECB
    cdeltas are aligned by construction and transform/compose keep
    them that way, so a merge patch that is *not* aligned cannot have
    come from merging honest cdeltas.
    """
    if step <= 0:
        raise ValueError(f"grid step must be positive, got {step}")

    def on_grid(pos: int) -> bool:
        return pos >= offset and (pos - offset) % step == 0

    cursor = 0
    for op in delta.ops:
        if isinstance(op, Retain):
            cursor += op.count
        elif isinstance(op, Insert):
            if len(op.text) % step or not on_grid(cursor):
                return False
        else:  # Delete
            if op.count % step or not on_grid(cursor):
                return False
            cursor += op.count
    return True
