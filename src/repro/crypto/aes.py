"""AES block cipher implemented from scratch (FIPS-197).

The 2011 prototype used the Stanford JavaScript AES library [33]; no
third-party crypto package is assumed here, so this module provides the
cipher the incremental-encryption schemes are built on.

Implementation notes
--------------------
* The S-box is *derived* (multiplicative inverse in GF(2^8) followed by
  the affine transform) rather than pasted in, and is checked against
  known values by ``repro.crypto.selftest``.
* Encryption and decryption use the classic four "T-table" formulation:
  each round is 16 table lookups and 16 XORs, which is the fastest
  arrangement available to pure Python.
* Key sizes 128/192/256 are supported; the schemes default to AES-128
  exactly as the paper assumes a 2^128 key search space.

For bulk jobs (encrypting a whole document at once) prefer
:mod:`repro.crypto.aes_batch`, which evaluates the same T-tables over
NumPy arrays of blocks.
"""

from __future__ import annotations

from repro.errors import BlockSizeError, KeySizeError
from repro.obs import counter

BLOCK_SIZE = 16
_ROUNDS_BY_KEYLEN = {16: 10, 24: 12, 32: 14}

#: total block-cipher invocations (scalar + batched), the sub-linearity
#: tests' primary observable
_AES_CALLS = counter("crypto.aes.calls")
_AES_ENCRYPTS = counter("crypto.aes.encrypt_calls")
_AES_DECRYPTS = counter("crypto.aes.decrypt_calls")
_KEY_SCHEDULES = counter("crypto.aes.key_schedules")

# ---------------------------------------------------------------------------
# GF(2^8) arithmetic and S-box construction
# ---------------------------------------------------------------------------


def _xtime(a: int) -> int:
    """Multiply by x (i.e. 0x02) in GF(2^8) modulo x^8+x^4+x^3+x+1."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) (Rijndael's field)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> tuple[list[int], list[int]]:
    """Construct the AES S-box and its inverse.

    Uses the fact that 0x03 generates the multiplicative group of
    GF(2^8): walking powers of the generator yields every nonzero element
    together with its inverse without any division routine.
    """
    # exp/log tables over generator 3
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = gf_mul(x, 3)
    exp[255] = exp[0]

    def inverse(a: int) -> int:
        if a == 0:
            return 0
        return exp[255 - log[a]]

    sbox = [0] * 256
    for value in range(256):
        inv = inverse(value)
        # Affine transform: s = inv ^ rotl1 ^ rotl2 ^ rotl3 ^ rotl4 ^ 0x63
        s = inv
        for shift in range(1, 5):
            s ^= ((inv << shift) | (inv >> (8 - shift))) & 0xFF
        sbox[value] = s ^ 0x63

    inv_sbox = [0] * 256
    for value, s in enumerate(sbox):
        inv_sbox[s] = value
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

# ---------------------------------------------------------------------------
# T-tables
# ---------------------------------------------------------------------------


def _rotr32(word: int, bits: int) -> int:
    return ((word >> bits) | (word << (32 - bits))) & 0xFFFFFFFF


def _build_encrypt_tables() -> list[list[int]]:
    te0 = [0] * 256
    for value in range(256):
        s = SBOX[value]
        s2 = _xtime(s)
        s3 = s2 ^ s
        te0[value] = (s2 << 24) | (s << 16) | (s << 8) | s3
    return [te0] + [[_rotr32(w, 8 * i) for w in te0] for i in range(1, 4)]


def _build_decrypt_tables() -> list[list[int]]:
    td0 = [0] * 256
    for value in range(256):
        s = INV_SBOX[value]
        td0[value] = (
            (gf_mul(s, 0x0E) << 24)
            | (gf_mul(s, 0x09) << 16)
            | (gf_mul(s, 0x0D) << 8)
            | gf_mul(s, 0x0B)
        )
    return [td0] + [[_rotr32(w, 8 * i) for w in td0] for i in range(1, 4)]


TE = _build_encrypt_tables()
TD = _build_decrypt_tables()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

# ---------------------------------------------------------------------------
# Key schedule
# ---------------------------------------------------------------------------


def expand_key(key: bytes) -> list[int]:
    """Expand ``key`` into the encryption round-key words (big-endian)."""
    if len(key) not in _ROUNDS_BY_KEYLEN:
        raise KeySizeError(
            f"AES key must be 16, 24 or 32 bytes, got {len(key)}"
        )
    nk = len(key) // 4
    rounds = _ROUNDS_BY_KEYLEN[len(key)]
    words = [
        int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(nk)
    ]
    for i in range(nk, 4 * (rounds + 1)):
        temp = words[i - 1]
        if i % nk == 0:
            temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
            temp = (
                (SBOX[(temp >> 24) & 0xFF] << 24)
                | (SBOX[(temp >> 16) & 0xFF] << 16)
                | (SBOX[(temp >> 8) & 0xFF] << 8)
                | SBOX[temp & 0xFF]
            )
            temp ^= _RCON[i // nk - 1] << 24
        elif nk > 6 and i % nk == 4:
            temp = (
                (SBOX[(temp >> 24) & 0xFF] << 24)
                | (SBOX[(temp >> 16) & 0xFF] << 16)
                | (SBOX[(temp >> 8) & 0xFF] << 8)
                | SBOX[temp & 0xFF]
            )
        words.append(words[i - nk] ^ temp)
    return words


def _inv_mix_word(word: int) -> int:
    """Apply InvMixColumns to a single 32-bit column."""
    b = [(word >> 24) & 0xFF, (word >> 16) & 0xFF, (word >> 8) & 0xFF, word & 0xFF]
    return (
        (gf_mul(b[0], 0x0E) ^ gf_mul(b[1], 0x0B) ^ gf_mul(b[2], 0x0D) ^ gf_mul(b[3], 0x09)) << 24
        | (gf_mul(b[0], 0x09) ^ gf_mul(b[1], 0x0E) ^ gf_mul(b[2], 0x0B) ^ gf_mul(b[3], 0x0D)) << 16
        | (gf_mul(b[0], 0x0D) ^ gf_mul(b[1], 0x09) ^ gf_mul(b[2], 0x0E) ^ gf_mul(b[3], 0x0B)) << 8
        | (gf_mul(b[0], 0x0B) ^ gf_mul(b[1], 0x0D) ^ gf_mul(b[2], 0x09) ^ gf_mul(b[3], 0x0E))
    )


def expand_key_decrypt(round_keys: list[int]) -> list[int]:
    """Derive the decryption ("equivalent inverse cipher") key schedule.

    The decryption rounds apply InvMixColumns before AddRoundKey, so all
    round keys except the first and last must be passed through
    InvMixColumns, and the whole schedule is used in reverse order.
    """
    rounds = len(round_keys) // 4 - 1
    out: list[int] = []
    for rnd in range(rounds, -1, -1):
        chunk = round_keys[4 * rnd : 4 * rnd + 4]
        if 0 < rnd < rounds:
            chunk = [_inv_mix_word(w) for w in chunk]
        out.extend(chunk)
    return out


# ---------------------------------------------------------------------------
# The cipher
# ---------------------------------------------------------------------------


class AES:
    """AES in raw block (ECB-of-one-block) form.

    This object is deliberately low level: it encrypts exactly one
    16-byte block at a time.  Modes of operation live in the incremental
    encryption schemes themselves (rECB and RPC build their own block
    layouts) and in :mod:`repro.crypto.blockcipher`.
    """

    def __init__(self, key: bytes):
        self._ek = expand_key(key)
        self._dk = expand_key_decrypt(self._ek)
        self._rounds = len(self._ek) // 4 - 1
        self.key_size = len(key)
        _KEY_SCHEDULES.inc()

    # -- encryption ---------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise BlockSizeError(
                f"AES block must be 16 bytes, got {len(block)}"
            )
        _AES_CALLS.inc()
        _AES_ENCRYPTS.inc()
        ek = self._ek
        te0, te1, te2, te3 = TE
        sbox = SBOX

        t0 = int.from_bytes(block[0:4], "big") ^ ek[0]
        t1 = int.from_bytes(block[4:8], "big") ^ ek[1]
        t2 = int.from_bytes(block[8:12], "big") ^ ek[2]
        t3 = int.from_bytes(block[12:16], "big") ^ ek[3]

        base = 4
        for _ in range(self._rounds - 1):
            s0 = (te0[t0 >> 24] ^ te1[(t1 >> 16) & 0xFF]
                  ^ te2[(t2 >> 8) & 0xFF] ^ te3[t3 & 0xFF] ^ ek[base])
            s1 = (te0[t1 >> 24] ^ te1[(t2 >> 16) & 0xFF]
                  ^ te2[(t3 >> 8) & 0xFF] ^ te3[t0 & 0xFF] ^ ek[base + 1])
            s2 = (te0[t2 >> 24] ^ te1[(t3 >> 16) & 0xFF]
                  ^ te2[(t0 >> 8) & 0xFF] ^ te3[t1 & 0xFF] ^ ek[base + 2])
            s3 = (te0[t3 >> 24] ^ te1[(t0 >> 16) & 0xFF]
                  ^ te2[(t1 >> 8) & 0xFF] ^ te3[t2 & 0xFF] ^ ek[base + 3])
            t0, t1, t2, t3 = s0, s1, s2, s3
            base += 4

        # Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns)
        s0 = ((sbox[t0 >> 24] << 24) | (sbox[(t1 >> 16) & 0xFF] << 16)
              | (sbox[(t2 >> 8) & 0xFF] << 8) | sbox[t3 & 0xFF]) ^ ek[base]
        s1 = ((sbox[t1 >> 24] << 24) | (sbox[(t2 >> 16) & 0xFF] << 16)
              | (sbox[(t3 >> 8) & 0xFF] << 8) | sbox[t0 & 0xFF]) ^ ek[base + 1]
        s2 = ((sbox[t2 >> 24] << 24) | (sbox[(t3 >> 16) & 0xFF] << 16)
              | (sbox[(t0 >> 8) & 0xFF] << 8) | sbox[t1 & 0xFF]) ^ ek[base + 2]
        s3 = ((sbox[t3 >> 24] << 24) | (sbox[(t0 >> 16) & 0xFF] << 16)
              | (sbox[(t1 >> 8) & 0xFF] << 8) | sbox[t2 & 0xFF]) ^ ek[base + 3]

        return b"".join(s.to_bytes(4, "big") for s in (s0, s1, s2, s3))

    # -- decryption ---------------------------------------------------

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise BlockSizeError(
                f"AES block must be 16 bytes, got {len(block)}"
            )
        _AES_CALLS.inc()
        _AES_DECRYPTS.inc()
        dk = self._dk
        td0, td1, td2, td3 = TD
        inv = INV_SBOX

        t0 = int.from_bytes(block[0:4], "big") ^ dk[0]
        t1 = int.from_bytes(block[4:8], "big") ^ dk[1]
        t2 = int.from_bytes(block[8:12], "big") ^ dk[2]
        t3 = int.from_bytes(block[12:16], "big") ^ dk[3]

        base = 4
        for _ in range(self._rounds - 1):
            s0 = (td0[t0 >> 24] ^ td1[(t3 >> 16) & 0xFF]
                  ^ td2[(t2 >> 8) & 0xFF] ^ td3[t1 & 0xFF] ^ dk[base])
            s1 = (td0[t1 >> 24] ^ td1[(t0 >> 16) & 0xFF]
                  ^ td2[(t3 >> 8) & 0xFF] ^ td3[t2 & 0xFF] ^ dk[base + 1])
            s2 = (td0[t2 >> 24] ^ td1[(t1 >> 16) & 0xFF]
                  ^ td2[(t0 >> 8) & 0xFF] ^ td3[t3 & 0xFF] ^ dk[base + 2])
            s3 = (td0[t3 >> 24] ^ td1[(t2 >> 16) & 0xFF]
                  ^ td2[(t1 >> 8) & 0xFF] ^ td3[t0 & 0xFF] ^ dk[base + 3])
            t0, t1, t2, t3 = s0, s1, s2, s3
            base += 4

        s0 = ((inv[t0 >> 24] << 24) | (inv[(t3 >> 16) & 0xFF] << 16)
              | (inv[(t2 >> 8) & 0xFF] << 8) | inv[t1 & 0xFF]) ^ dk[base]
        s1 = ((inv[t1 >> 24] << 24) | (inv[(t0 >> 16) & 0xFF] << 16)
              | (inv[(t3 >> 8) & 0xFF] << 8) | inv[t2 & 0xFF]) ^ dk[base + 1]
        s2 = ((inv[t2 >> 24] << 24) | (inv[(t1 >> 16) & 0xFF] << 16)
              | (inv[(t0 >> 8) & 0xFF] << 8) | inv[t3 & 0xFF]) ^ dk[base + 2]
        s3 = ((inv[t3 >> 24] << 24) | (inv[(t2 >> 16) & 0xFF] << 16)
              | (inv[(t1 >> 8) & 0xFF] << 8) | inv[t0 & 0xFF]) ^ dk[base + 3]

        return b"".join(s.to_bytes(4, "big") for s in (s0, s1, s2, s3))
