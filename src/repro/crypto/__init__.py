"""Cryptographic substrate: AES from scratch, batch ECB, random sources.

The incremental encryption schemes (:mod:`repro.core`) sit on top of
this package.  A known-answer self-test runs once at import time so a
mis-built cipher fails loudly rather than silently producing garbage
ciphertext.
"""

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.blockcipher import AesCipher, BlockCipher
from repro.crypto.random import (
    DeterministicRandomSource,
    RandomSource,
    SystemRandomSource,
)
from repro.crypto.selftest import run_selftest

run_selftest()

__all__ = [
    "AES",
    "BLOCK_SIZE",
    "AesCipher",
    "BlockCipher",
    "RandomSource",
    "SystemRandomSource",
    "DeterministicRandomSource",
    "run_selftest",
]
