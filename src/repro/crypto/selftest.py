"""Known-answer self-tests for the cipher core.

Run automatically on first import of :mod:`repro.crypto` (cheap — a
handful of blocks) so no scheme can silently run on a mis-built S-box or
T-table.  The same vectors are exercised, much more broadly, in the unit
tests.
"""

from __future__ import annotations

import binascii

from repro.crypto import aes_batch
from repro.crypto.aes import AES, INV_SBOX, SBOX
from repro.errors import CryptoError

_h = binascii.unhexlify

#: FIPS-197 Appendix C known-answer vectors (key hex, ciphertext hex) for
#: plaintext 00112233445566778899aabbccddeeff.
FIPS_197_VECTORS = [
    ("000102030405060708090a0b0c0d0e0f",
     "69c4e0d86a7b0430d8cdb78070b4c55a"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617",
     "dda97ca4864cdfe06eaf70a0ec0d7191"),
    ("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
     "8ea2b7ca516745bfeafc49904b496089"),
]

_FIPS_PLAINTEXT = _h("00112233445566778899aabbccddeeff")


def run_selftest() -> None:
    """Raise :class:`CryptoError` if the cipher core is mis-built."""
    # Spot-check the derived S-box against FIPS-197 Figure 7.
    if SBOX[0x00] != 0x63 or SBOX[0x53] != 0xED or SBOX[0xFF] != 0x16:
        raise CryptoError("derived S-box does not match FIPS-197")
    if any(INV_SBOX[SBOX[i]] != i for i in range(256)):
        raise CryptoError("inverse S-box is not the inverse of the S-box")

    for key_hex, ct_hex in FIPS_197_VECTORS:
        cipher = AES(_h(key_hex))
        ct = cipher.encrypt_block(_FIPS_PLAINTEXT)
        if ct != _h(ct_hex):
            raise CryptoError(f"AES-{len(key_hex) * 4} known-answer failure")
        if cipher.decrypt_block(ct) != _FIPS_PLAINTEXT:
            raise CryptoError(f"AES-{len(key_hex) * 4} decrypt failure")
        # Batched path must agree with the scalar path.
        doubled = _FIPS_PLAINTEXT * 2
        if aes_batch.encrypt_blocks(cipher, doubled) != ct * 2:
            raise CryptoError("batched AES disagrees with scalar AES")
        if aes_batch.decrypt_blocks(cipher, ct * 2) != doubled:
            raise CryptoError("batched AES decrypt disagrees with scalar")
