"""Random sources for nonce generation.

The schemes draw their per-block nonces from a :class:`RandomSource`.
Two implementations are provided:

* :class:`SystemRandomSource` — wraps ``os.urandom``; what a deployment
  uses ("we assume ... a good source of cryptographic random numbers",
  SVI-A).
* :class:`DeterministicRandomSource` — an AES-CTR DRBG built on our own
  cipher.  Seeded runs make every experiment, test, and attack scenario
  exactly reproducible, which the benchmarks and the security harness
  rely on.
"""

from __future__ import annotations

import os
from typing import Protocol, runtime_checkable

from repro.crypto.aes import AES, BLOCK_SIZE


@runtime_checkable
class RandomSource(Protocol):
    """Supplier of cryptographic-quality random bytes."""

    def token(self, nbytes: int) -> bytes:  # pragma: no cover
        """Return ``nbytes`` fresh random bytes."""
        ...


class SystemRandomSource:
    """OS-backed randomness (``os.urandom``)."""

    def token(self, nbytes: int) -> bytes:
        """Return ``nbytes`` from the operating system's CSPRNG."""
        return os.urandom(nbytes)


class DeterministicRandomSource:
    """AES-CTR deterministic random bit generator.

    The generator key is derived from the seed by encrypting two fixed
    blocks under an all-seed key; output is the AES-CTR keystream.  This
    is a test/benchmark facility — it is deterministic *by design* and
    must never back a real deployment's nonces.
    """

    def __init__(self, seed: int | bytes = 0):
        if isinstance(seed, int):
            seed = seed.to_bytes(16, "big", signed=False) if seed >= 0 else (
                (-seed).to_bytes(16, "big")
            )
        seed = (seed * (BLOCK_SIZE // len(seed) + 1))[:BLOCK_SIZE] if seed else bytes(BLOCK_SIZE)
        bootstrap = AES(seed)
        key = bootstrap.encrypt_block(bytes(BLOCK_SIZE))
        self._aes = AES(key)
        self._counter = 0
        self._buffer = b""

    def token(self, nbytes: int) -> bytes:
        """Return the next ``nbytes`` of the AES-CTR keystream."""
        missing = nbytes - len(self._buffer)
        if missing > 0:
            nblocks = (missing + BLOCK_SIZE - 1) // BLOCK_SIZE
            counters = b"".join(
                (self._counter + i).to_bytes(BLOCK_SIZE, "big")
                for i in range(nblocks)
            )
            self._counter += nblocks
            if nblocks >= 16:
                from repro.crypto import aes_batch
                keystream = aes_batch.encrypt_blocks(self._aes, counters)
            else:
                keystream = b"".join(
                    self._aes.encrypt_block(counters[i : i + BLOCK_SIZE])
                    for i in range(0, len(counters), BLOCK_SIZE)
                )
            self._buffer += keystream
        out, self._buffer = self._buffer[:nbytes], self._buffer[nbytes:]
        return out

    def fork(self, label: bytes) -> "DeterministicRandomSource":
        """Derive an independent child stream (stable under reordering).

        Experiments that need several independent deterministic streams
        (one per simulated client, say) fork children by label so adding
        a consumer never perturbs another consumer's draws.
        """
        material = label.ljust(BLOCK_SIZE, b"\x00")[:BLOCK_SIZE]
        child_seed = self._aes.encrypt_block(material)
        return DeterministicRandomSource(child_seed)
