"""Block-cipher abstraction used by the incremental encryption schemes.

The schemes in :mod:`repro.core` only require a width-16 pseudorandom
permutation.  They accept anything satisfying :class:`BlockCipher`, which
lets the tests substitute a recorded/fake permutation and lets future
work drop in a different primitive (the paper notes "with a block cipher
of a different width, other block sizes might be desirable").
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.crypto import aes_batch
from repro.crypto.aes import AES, BLOCK_SIZE

__all__ = ["BlockCipher", "AesCipher", "BLOCK_SIZE"]


@runtime_checkable
class BlockCipher(Protocol):
    """A 128-bit block cipher: one block in, one block out."""

    block_size: int

    def encrypt_block(self, block: bytes) -> bytes:  # pragma: no cover
        """Encrypt one 16-byte block."""
        ...

    def decrypt_block(self, block: bytes) -> bytes:  # pragma: no cover
        """Decrypt one 16-byte block."""
        ...

    def encrypt_many(self, data: bytes) -> bytes:  # pragma: no cover
        """ECB-encrypt a concatenation of whole blocks."""
        ...

    def decrypt_many(self, data: bytes) -> bytes:  # pragma: no cover
        """ECB-decrypt a concatenation of whole blocks."""
        ...


class AesCipher:
    """The default :class:`BlockCipher`: AES with batched bulk paths.

    ``encrypt_block``/``decrypt_block`` use the scalar T-table core (best
    for the one-or-two-block work of an incremental update), while
    ``encrypt_many``/``decrypt_many`` switch to the NumPy path once the
    job is large enough to amortize array setup.
    """

    #: below this many blocks the scalar loop beats NumPy's fixed costs.
    #: Measured crossover (CPython 3.11, this container): the NumPy path
    #: carries ~520-580us of fixed array setup while the scalar loop
    #: costs ~23us/block, so the ratio crosses 1.0 around 24-32 blocks;
    #: 28 splits that band.  The old value of 16 sent 16-27-block jobs
    #: (the most common coalesced-burst sizes) down the slower path.
    _BATCH_THRESHOLD_BLOCKS = 28

    block_size = BLOCK_SIZE

    def __init__(self, key: bytes):
        self._aes = AES(key)
        self.key_size = self._aes.key_size

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block (scalar T-table path)."""
        return self._aes.encrypt_block(block)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block (scalar T-table path)."""
        return self._aes.decrypt_block(block)

    def encrypt_many(self, data: bytes) -> bytes:
        """ECB-encrypt a concatenation of whole blocks."""
        if len(data) // BLOCK_SIZE < self._BATCH_THRESHOLD_BLOCKS:
            return b"".join(
                self._aes.encrypt_block(data[i : i + BLOCK_SIZE])
                for i in range(0, len(data), BLOCK_SIZE)
            )
        return aes_batch.encrypt_blocks(self._aes, data)

    def decrypt_many(self, data: bytes) -> bytes:
        """ECB-decrypt a concatenation of whole blocks."""
        if len(data) // BLOCK_SIZE < self._BATCH_THRESHOLD_BLOCKS:
            return b"".join(
                self._aes.decrypt_block(data[i : i + BLOCK_SIZE])
                for i in range(0, len(data), BLOCK_SIZE)
            )
        return aes_batch.decrypt_blocks(self._aes, data)
