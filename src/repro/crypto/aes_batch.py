"""Vectorized AES-ECB over arrays of blocks (NumPy).

Whole-document operations (the initial ``docContents`` save, a full
decrypt on document load, the CoClo re-encryption baseline) encrypt
thousands of independent 16-byte blocks with one key.  Evaluating the
scalar T-table cipher block-by-block costs ~15 us per block in CPython;
this module evaluates the *same* T-tables with NumPy gathers so each
round is 16 vector lookups over all blocks at once.

The scalar and batched paths are cross-checked against each other and
against FIPS-197 vectors in ``repro.crypto.selftest`` and the unit
tests.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import aes as _aes
from repro.errors import BlockSizeError
from repro.obs import counter, histogram

#: batched invocations also count into crypto.aes.calls (one per block),
#: so the sub-linearity bound holds whichever path a span takes
_BATCH_CALLS = counter("crypto.aes.batch_calls")
_BATCH_BLOCKS = histogram("crypto.aes.batch_blocks")

_TE = [np.array(t, dtype=np.uint32) for t in _aes.TE]
_TD = [np.array(t, dtype=np.uint32) for t in _aes.TD]
_SBOX = np.array(_aes.SBOX, dtype=np.uint32)
_INV_SBOX = np.array(_aes.INV_SBOX, dtype=np.uint32)


def _to_words(data: bytes) -> np.ndarray:
    """View ``data`` (N*16 bytes) as an (N, 4) array of big-endian words."""
    if len(data) % _aes.BLOCK_SIZE:
        raise BlockSizeError(
            f"batched input must be a multiple of 16 bytes, got {len(data)}"
        )
    return (
        np.frombuffer(data, dtype=">u4")
        .reshape(-1, 4)
        .astype(np.uint32)
    )


def _to_bytes(words: np.ndarray) -> bytes:
    return words.astype(">u4").tobytes()


def encrypt_blocks(cipher: _aes.AES, data: bytes) -> bytes:
    """ECB-encrypt every 16-byte block of ``data`` with ``cipher``'s key."""
    words = _to_words(data)
    if words.shape[0] == 0:
        return b""
    _aes._AES_CALLS.inc(words.shape[0])
    _aes._AES_ENCRYPTS.inc(words.shape[0])
    _BATCH_CALLS.inc()
    _BATCH_BLOCKS.observe(words.shape[0])
    ek = cipher._ek
    rounds = cipher._rounds
    te0, te1, te2, te3 = _TE

    t0 = words[:, 0] ^ np.uint32(ek[0])
    t1 = words[:, 1] ^ np.uint32(ek[1])
    t2 = words[:, 2] ^ np.uint32(ek[2])
    t3 = words[:, 3] ^ np.uint32(ek[3])

    base = 4
    for _ in range(rounds - 1):
        s0 = (te0[t0 >> 24] ^ te1[(t1 >> 16) & 0xFF]
              ^ te2[(t2 >> 8) & 0xFF] ^ te3[t3 & 0xFF] ^ np.uint32(ek[base]))
        s1 = (te0[t1 >> 24] ^ te1[(t2 >> 16) & 0xFF]
              ^ te2[(t3 >> 8) & 0xFF] ^ te3[t0 & 0xFF] ^ np.uint32(ek[base + 1]))
        s2 = (te0[t2 >> 24] ^ te1[(t3 >> 16) & 0xFF]
              ^ te2[(t0 >> 8) & 0xFF] ^ te3[t1 & 0xFF] ^ np.uint32(ek[base + 2]))
        s3 = (te0[t3 >> 24] ^ te1[(t0 >> 16) & 0xFF]
              ^ te2[(t1 >> 8) & 0xFF] ^ te3[t2 & 0xFF] ^ np.uint32(ek[base + 3]))
        t0, t1, t2, t3 = s0, s1, s2, s3
        base += 4

    sbox = _SBOX
    s0 = ((sbox[t0 >> 24] << 24) | (sbox[(t1 >> 16) & 0xFF] << 16)
          | (sbox[(t2 >> 8) & 0xFF] << 8) | sbox[t3 & 0xFF]) ^ np.uint32(ek[base])
    s1 = ((sbox[t1 >> 24] << 24) | (sbox[(t2 >> 16) & 0xFF] << 16)
          | (sbox[(t3 >> 8) & 0xFF] << 8) | sbox[t0 & 0xFF]) ^ np.uint32(ek[base + 1])
    s2 = ((sbox[t2 >> 24] << 24) | (sbox[(t3 >> 16) & 0xFF] << 16)
          | (sbox[(t0 >> 8) & 0xFF] << 8) | sbox[t1 & 0xFF]) ^ np.uint32(ek[base + 2])
    s3 = ((sbox[t3 >> 24] << 24) | (sbox[(t0 >> 16) & 0xFF] << 16)
          | (sbox[(t1 >> 8) & 0xFF] << 8) | sbox[t2 & 0xFF]) ^ np.uint32(ek[base + 3])

    return _to_bytes(np.stack([s0, s1, s2, s3], axis=1))


def decrypt_blocks(cipher: _aes.AES, data: bytes) -> bytes:
    """ECB-decrypt every 16-byte block of ``data`` with ``cipher``'s key."""
    words = _to_words(data)
    if words.shape[0] == 0:
        return b""
    _aes._AES_CALLS.inc(words.shape[0])
    _aes._AES_DECRYPTS.inc(words.shape[0])
    _BATCH_CALLS.inc()
    _BATCH_BLOCKS.observe(words.shape[0])
    dk = cipher._dk
    rounds = cipher._rounds
    td0, td1, td2, td3 = _TD

    t0 = words[:, 0] ^ np.uint32(dk[0])
    t1 = words[:, 1] ^ np.uint32(dk[1])
    t2 = words[:, 2] ^ np.uint32(dk[2])
    t3 = words[:, 3] ^ np.uint32(dk[3])

    base = 4
    for _ in range(rounds - 1):
        s0 = (td0[t0 >> 24] ^ td1[(t3 >> 16) & 0xFF]
              ^ td2[(t2 >> 8) & 0xFF] ^ td3[t1 & 0xFF] ^ np.uint32(dk[base]))
        s1 = (td0[t1 >> 24] ^ td1[(t0 >> 16) & 0xFF]
              ^ td2[(t3 >> 8) & 0xFF] ^ td3[t2 & 0xFF] ^ np.uint32(dk[base + 1]))
        s2 = (td0[t2 >> 24] ^ td1[(t1 >> 16) & 0xFF]
              ^ td2[(t0 >> 8) & 0xFF] ^ td3[t3 & 0xFF] ^ np.uint32(dk[base + 2]))
        s3 = (td0[t3 >> 24] ^ td1[(t2 >> 16) & 0xFF]
              ^ td2[(t1 >> 8) & 0xFF] ^ td3[t0 & 0xFF] ^ np.uint32(dk[base + 3]))
        t0, t1, t2, t3 = s0, s1, s2, s3
        base += 4

    inv = _INV_SBOX
    s0 = ((inv[t0 >> 24] << 24) | (inv[(t3 >> 16) & 0xFF] << 16)
          | (inv[(t2 >> 8) & 0xFF] << 8) | inv[t1 & 0xFF]) ^ np.uint32(dk[base])
    s1 = ((inv[t1 >> 24] << 24) | (inv[(t0 >> 16) & 0xFF] << 16)
          | (inv[(t3 >> 8) & 0xFF] << 8) | inv[t2 & 0xFF]) ^ np.uint32(dk[base + 1])
    s2 = ((inv[t2 >> 24] << 24) | (inv[(t1 >> 16) & 0xFF] << 16)
          | (inv[(t0 >> 8) & 0xFF] << 8) | inv[t3 & 0xFF]) ^ np.uint32(dk[base + 2])
    s3 = ((inv[t3 >> 24] << 24) | (inv[(t2 >> 16) & 0xFF] << 16)
          | (inv[(t1 >> 8) & 0xFF] << 8) | inv[t0 & 0xFF]) ^ np.uint32(dk[base + 3])

    return _to_bytes(np.stack([s0, s1, s2, s3], axis=1))
