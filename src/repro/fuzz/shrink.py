"""Delta-debugging trace reduction.

A raw failing trace can carry dozens of ops, a long initial document,
and a multi-spec fault schedule — most of it irrelevant to the bug.
:func:`shrink_trace` greedily minimizes it while preserving the
*failure identity*: a candidate counts as still-failing only if
re-running it raises an :class:`InvariantViolation` with the same
``kind`` as the original, so the shrinker cannot drift from the bug it
is chasing onto a different one.

Strategies, applied in rounds until a fixed point (classic ddmin
flavor, tuned for short traces):

1. **op-chunk removal** — drop halves, then quarters, ... then single
   ops;
2. **fault-spec removal** — drop the whole schedule, then single specs;
3. **init-text reduction** — empty, then repeated halving;
4. **insert-text reduction** — shorten each op's inserted text (halve,
   then first char);
5. **scalar simplification** — positions to 0, delete counts to 1.

Every candidate execution increments the ``fuzz.shrink_steps`` counter;
``max_attempts`` bounds the whole search so a pathological case cannot
stall a CI run.
"""

from __future__ import annotations

from repro.fuzz.generators import Trace
from repro.fuzz.model import InvariantViolation, Violation
from repro.obs.metrics import counter

__all__ = ["shrink_trace"]

#: candidate re-executions performed while minimizing failures
_SHRINK_STEPS = counter("fuzz.shrink_steps")


def _still_fails(trace: Trace, kind: str) -> bool:
    # imported here: runner imports shrink_trace, so a module-level
    # import back into runner would be circular
    from repro.fuzz.runner import execute_trace

    _SHRINK_STEPS.inc()
    try:
        execute_trace(trace)
    except InvariantViolation as exc:
        return exc.violation.kind == kind
    return False


def _op_subsets(ops: tuple) -> list[tuple]:
    """Candidate op lists, largest removals first."""
    n = len(ops)
    candidates: list[tuple] = []
    chunk = max(1, n // 2)
    while chunk >= 1:
        for start in range(0, n, chunk):
            candidate = ops[:start] + ops[start + chunk:]
            if len(candidate) < n:
                candidates.append(candidate)
        if chunk == 1:
            break
        chunk //= 2
    return candidates


def _text_reductions(text: str) -> list[str]:
    out: list[str] = []
    if text:
        out.append("")
    size = len(text) // 2
    while size >= 1:
        out.append(text[:size])
        size //= 2
    return out


def _simplified_ops(ops: tuple) -> list[tuple]:
    """One-op-at-a-time simplifications (texts, positions, counts)."""
    candidates: list[tuple] = []
    for i, op in enumerate(ops):
        variants: list[tuple] = []
        if op[0] == "i":
            for smaller in _text_reductions(op[2]):
                variants.append(("i", op[1], smaller, op[3]))
        elif op[0] == "d":
            if op[2] > 1:
                variants.append(("d", op[1], 1, op[3]))
        elif op[0] == "r":
            for smaller in _text_reductions(op[3]):
                variants.append(("r", op[1], op[2], smaller, op[4]))
            if op[2] > 1:
                variants.append(("r", op[1], 1, op[3], op[4]))
        if op[0] != "s" and op[1] != 0:
            variants.append((op[0], 0) + tuple(op[2:]))
        for variant in variants:
            if variant != op:
                candidates.append(ops[:i] + (variant,) + ops[i + 1:])
    return candidates


def shrink_trace(trace: Trace, violation: Violation,
                 max_attempts: int = 400) -> Trace:
    """The smallest trace found that still fails with
    ``violation.kind`` (returns ``trace`` unchanged if nothing smaller
    fails the same way)."""
    kind = violation.kind
    best = trace
    attempts = 0

    def attempt(candidate: Trace) -> bool:
        nonlocal attempts, best
        if attempts >= max_attempts:
            return False
        attempts += 1
        if _still_fails(candidate, kind):
            best = candidate
            return True
        return False

    progress = True
    while progress and attempts < max_attempts:
        progress = False

        # 1. remove op chunks (restart scan after every success so the
        #    subsets are computed against the new, smaller trace)
        removed = True
        while removed and attempts < max_attempts:
            removed = False
            for ops in _op_subsets(best.ops):
                if attempt(best.replaced(ops=ops)):
                    removed = progress = True
                    break

        # 2. drop the fault schedule, then individual specs
        if best.faults:
            if attempt(best.replaced(faults=None)):
                progress = True
            else:
                specs = best.faults.get("specs", [])
                for i in range(len(specs)):
                    if len(specs) <= 1:
                        break
                    smaller = dict(best.faults)
                    smaller["specs"] = specs[:i] + specs[i + 1:]
                    if attempt(best.replaced(faults=smaller)):
                        progress = True
                        break

        # 3. shrink the initial document
        for smaller in _text_reductions(best.init):
            if attempt(best.replaced(init=smaller)):
                progress = True
                break

        # 4 + 5. per-op simplifications
        for ops in _simplified_ops(best.ops):
            if attempt(best.replaced(ops=ops)):
                progress = True
                break

    return best
