"""repro.fuzz — differential fuzzing and invariant checking.

The paper's correctness story is algebraic — decrypt round-trips, the
Wang–Kao–Yeh length-bound checksum, index-by-position equivalence,
cdelta fidelity — and the enumerated test suite checks those laws only
at hand-picked points.  This package model-checks them: a seeded
generator (:mod:`repro.fuzz.generators`) produces random edit *traces*
(insert/delete/replace, unicode, degenerate sizes, fault schedules,
two-client interleavings); a runner (:mod:`repro.fuzz.runner`) drives
each trace through the full stack — ``EncryptedDocument`` over
{rECB, RPC} × {skiplist, AVL, reference} × server {piece-table, flat} —
while the oracle (:mod:`repro.fuzz.model`) re-applies every edit to a
plain Python string and checks the invariants step by step; a shrinker
(:mod:`repro.fuzz.shrink`) reduces any failing trace to a minimal one
and the runner serializes it as a replay file under ``tests/corpus/``
that re-runs as an ordinary pytest case.

Everything is dependency-free and deterministic: all randomness flows
from one seed, so an identical seed produces a byte-identical trace and
an identical run.  ``tools/mutation_smoke.py`` proves the oracle has
teeth by flipping a known-load-bearing crypto line under a temp copy of
the tree and asserting the harness catches it.
"""

from repro.fuzz.generators import PROFILES, Trace, generate_trace
from repro.fuzz.model import InvariantViolation, Violation
from repro.fuzz.runner import FuzzReport, FuzzRunner, run_trace
from repro.fuzz.shrink import shrink_trace

__all__ = [
    "PROFILES",
    "Trace",
    "generate_trace",
    "InvariantViolation",
    "Violation",
    "FuzzReport",
    "FuzzRunner",
    "run_trace",
    "shrink_trace",
]
