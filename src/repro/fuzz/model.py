"""The plaintext oracle and the invariant checks it anchors.

The differential idea: every trace op is interpreted twice — once by
the system under test (EncryptedDocument / PrivateEditingSession) and
once by :func:`apply_op`, which edits a plain Python string with slice
arithmetic.  The string *is* the specification; any divergence between
it and what decrypts out of the encrypted pipeline is a bug by
definition, no matter which layer introduced it.

Checks raise :class:`InvariantViolation` carrying a :class:`Violation`
record (kind, step, detail).  The ``kind`` string doubles as the
failure identity during shrinking: a candidate smaller trace only
counts as "still failing" if it fails with the *same* kind, so the
shrinker cannot wander from one bug to a different one.

Invariant catalogue (the names used in ``Violation.kind``):

``oracle-divergence``
    ``doc.text != oracle`` — decrypt(state) no longer equals the
    plaintext the user typed.
``length-mismatch``
    ``doc.char_length`` disagrees with the oracle length.
``index-checkrep``
    the BlockIndex's own representation invariant failed (skip-list
    widths, AVL balance, ...).
``index-widths``
    block widths no longer sum to ``total_chars`` — the paper's
    skip-count law.
``roundtrip``
    re-loading ``doc.wire()`` fresh (full parse + decrypt + RPC
    checksum verify) failed or produced different plaintext.
``cdelta-divergence``
    the ciphertext delta applied server-side (flat string and/or
    piece table) does not reproduce the client's rewritten wire.
``coalesce-divergence``
    a coalesced keystroke burst encrypted with one batched cipher
    call produced different bytes (cdelta wire or full ciphertext)
    than the sequential per-cluster reference path.
``convergence``
    after faults quiesce, client text and decrypted server state (or
    two merging clients) disagree.
``save-failed``
    a save that must succeed (post-quiesce) returned a typed failure.
``plaintext-leak``
    a plaintext sentinel appeared in bytes that crossed the Channel.
``search-mismatch``
    the encrypted search index answered a trapdoor lookup with a
    document set different from the plaintext word oracle's.
``audit-false-alarm``
    an untampered audit chain failed verification (integrity checking
    must not cry wolf).
``audit-miss``
    a rollback-attacking server — stale chain or forged
    self-consistent chain — went undetected by ``verify_history``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.delta import Delta
from repro.core.document import EncryptedDocument, load_document
from repro.errors import ReproError
from repro.fuzz.generators import POS_SCALE

__all__ = [
    "Violation",
    "InvariantViolation",
    "resolve_pos",
    "apply_op",
    "op_delta",
    "check_document",
    "check_roundtrip",
    "check_store",
    "check_equal",
    "check_no_leak",
]


@dataclass
class Violation:
    """One invariant failure, serializable alongside its trace."""

    kind: str
    step: int = -1          #: op index in the trace (-1: end-of-trace check)
    detail: str = ""

    def to_dict(self) -> dict:
        """The violation as a plain dict for corpus serialization."""
        return {"kind": self.kind, "step": self.step, "detail": self.detail}


class InvariantViolation(ReproError):
    """Raised by the checks below; ``.violation`` has the record."""

    def __init__(self, violation: Violation):
        self.violation = violation
        super().__init__(
            f"[{violation.kind}] step {violation.step}: {violation.detail}"
        )


def _fail(kind: str, step: int, detail: str) -> None:
    raise InvariantViolation(Violation(kind=kind, step=step, detail=detail))


def _clip(text: str, limit: int = 80) -> str:
    return text if len(text) <= limit else text[:limit] + f"...(+{len(text) - limit})"


# -- oracle ------------------------------------------------------------------


def resolve_pos(posq: int, length: int) -> int:
    """Map a position quantum (0..POS_SCALE) onto ``0..length``."""
    if length <= 0:
        return 0
    return min(length, posq * (length + 1) // (POS_SCALE + 1))


def op_delta(op: tuple, length: int) -> Delta | None:
    """The :class:`Delta` an edit op denotes against a document of
    ``length`` chars, or None when it resolves to a no-op."""
    kind = op[0]
    if kind == "i":
        _, posq, text = op[0], op[1], op[2]
        if not text:
            return None
        return Delta.insertion(resolve_pos(posq, length), text)
    if kind == "d":
        pos = resolve_pos(op[1], length)
        count = min(op[2], length - pos)
        if count <= 0:
            return None
        return Delta.deletion(pos, count)
    if kind == "r":
        pos = resolve_pos(op[1], length)
        count = min(op[2], length - pos)
        text = op[3]
        if count <= 0 and not text:
            return None
        if count <= 0:
            return Delta.insertion(pos, text)
        if not text:
            return Delta.deletion(pos, count)
        return Delta.replacement(pos, count, text)
    raise ValueError(f"not an edit op: {op!r}")


def apply_op(text: str, op: tuple) -> str:
    """The specification: apply an edit op to a plain string."""
    kind = op[0]
    pos = resolve_pos(op[1], len(text))
    if kind == "i":
        return text[:pos] + op[2] + text[pos:]
    if kind == "d":
        return text[:pos] + text[pos + op[2]:] if op[2] > 0 else text
    if kind == "r":
        return text[:pos] + op[3] + text[pos + op[2]:]
    raise ValueError(f"not an edit op: {op!r}")


# -- checks ------------------------------------------------------------------


def check_document(doc: EncryptedDocument, oracle: str, step: int) -> None:
    """Per-step document laws: text, length, index rep, width sums."""
    got = doc.text
    if got != oracle:
        _fail("oracle-divergence", step,
              f"doc.text={_clip(got)!r} oracle={_clip(oracle)!r}")
    if doc.char_length != len(oracle):
        _fail("length-mismatch", step,
              f"char_length={doc.char_length} oracle={len(oracle)}")
    index = doc._index
    try:
        index.checkrep()
    except Exception as exc:  # checkrep uses bare AssertionError too
        _fail("index-checkrep", step, f"{type(exc).__name__}: {exc}")
    widths = sum(width for _, width in index.items())
    if widths != index.total_chars:
        _fail("index-widths", step,
              f"sum(widths)={widths} total_chars={index.total_chars}")


def check_roundtrip(doc: EncryptedDocument, oracle: str, step: int) -> None:
    """Full parse + decrypt (+ RPC checksum verify) of ``doc.wire()``."""
    try:
        fresh = load_document(doc.wire(), key_material=doc.key_material)
    except ReproError as exc:
        _fail("roundtrip", step, f"reload failed: {type(exc).__name__}: {exc}")
        return
    if fresh.text != oracle:
        _fail("roundtrip", step,
              f"reload={_clip(fresh.text)!r} oracle={_clip(oracle)!r}")


def check_store(store_name: str, stored_wire: str,
                doc: EncryptedDocument, step: int) -> None:
    """cdelta fidelity: the server's copy equals the client rewrite."""
    want = doc.wire()
    if stored_wire != want:
        _fail("cdelta-divergence", step,
              f"{store_name} store diverged from client wire "
              f"(server {len(stored_wire)} chars, client {len(want)})")


def check_equal(kind: str, a: str, b: str, step: int, what: str) -> None:
    """Generic convergence assertion with clipped diagnostics."""
    if a != b:
        _fail(kind, step, f"{what}: {_clip(a)!r} != {_clip(b)!r}")


def check_no_leak(blobs, sentinel: str, step: int = -1) -> None:
    """No plaintext sentinel in anything that crossed the Channel."""
    needle = sentinel.encode()
    for blob in blobs:
        data = blob if isinstance(blob, bytes) else str(blob).encode()
        if needle in data:
            _fail("plaintext-leak", step,
                  f"sentinel {sentinel!r} found in channel bytes")
