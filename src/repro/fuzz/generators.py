"""Seeded trace generation: the fuzzer's input language.

A *trace* is a complete, JSON-serializable description of one fuzz
case: which stack configuration to build (scheme × index × store ×
block capacity), the initial plaintext, a list of edit operations, an
optional fault schedule, and how many clients interleave.  Traces are
pure data — the runner interprets them — which is what makes failures
replayable (``tests/corpus/*.json``) and shrinkable (drop an op, rerun).

Determinism is the load-bearing property: :func:`generate_trace` draws
every choice from one ``random.Random(seed)``, so an identical seed
yields a byte-identical trace (``Trace.to_json`` is canonical JSON),
and the runner resolves the trace with integer arithmetic only.

Edit positions are stored in *position quanta* (``0..POS_SCALE``, a
fraction of the current document length) rather than absolute offsets:
under faults and concurrent merges a client's text at step *k* is not
predictable at generation time, so absolute positions could go out of
range.  Quanta always resolve to a valid position — 0 and POS_SCALE
hit the exact start/end boundaries — and resolution is deterministic.

The string corpus mixes plain ASCII words, multi-byte unicode (two- to
four-byte UTF-8, combining marks), delta/form metacharacters (tabs,
``%``, ``+``, ``&``, ``=``) and degenerate shapes (empty, single char,
long runs), because each of those classes has broken a real codec
somewhere in this stack's history.  :func:`corpus_strings` exposes the
same corpus to the encoder property tests so they stay in sync with
what the fuzzer feeds the full pipeline.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, fields

__all__ = [
    "TRACE_FORMAT",
    "POS_SCALE",
    "SCHEMES",
    "INDEXES",
    "STORES",
    "MODES",
    "SERVICES",
    "Profile",
    "PROFILES",
    "Trace",
    "generate_trace",
    "gen_text",
    "corpus_strings",
]

#: corpus/replay file format marker
TRACE_FORMAT = "repro.fuzz/v1"

#: positions are fractions of the live document length in units of
#: 1/POS_SCALE (integer math keeps JSON byte-stable across platforms)
POS_SCALE = 10_000

SCHEMES = ("recb", "rpc")
INDEXES = ("skiplist", "avl", "reference")
#: which server store the cdelta is checked against ("both" cross-checks
#: the flat string and the piece table every step)
STORES = ("both", "flat", "pieces")
MODES = ("engine", "session", "concurrent", "workspace")
#: services a networked trace may target (mirrors
#: repro.services.registry.SERVICE_NAMES; kept literal so a corpus file
#: is readable without imports).  engine mode has no service at all and
#: concurrent mode stays gdocs — OT merging is a gdocs-protocol notion.
SERVICES = ("gdocs", "bespin", "buzzword", "replicated")

#: session-mode service draw, gdocs-weighted: the richest protocol gets
#: the most fuzz, but every backend sees regular traffic
_SESSION_SERVICES = (
    "gdocs", "gdocs", "gdocs", "bespin", "buzzword", "replicated",
)

#: fault kinds a generated schedule may draw from (mirrors
#: repro.net.faults.FAULT_KINDS; kept literal so a corpus file is
#: readable without imports)
FAULT_KINDS = (
    "drop", "blackhole", "delay", "dup", "reorder",
    "truncate", "corrupt", "http_5xx", "http_429",
)

# -- the string corpus -------------------------------------------------------

_WORDS = (
    "lorem ipsum dolor sit amet editor cloud private delta block cipher "
    "nonce index skip list splice record checksum oracle shrink replay"
).split()

#: multi-byte UTF-8: 2-byte (é, ñ), 3-byte (CJK, arrows), 4-byte
#: (emoji, gothic), plus combining marks — each stresses the 8-byte
#: payload packing differently
_UNICODE = (
    "é", "ñ", "ü", "ß", "λ", "Ω", "ж", "ق",
    "文", "書", "編", "集", "→", "∑", "€",
    "😀", "🔐", "𐍈",
    "é", "ä́",
)

#: metacharacters of the delta wire form (%-escapes, tabs) and the
#: form codec (&, =, +, %), plus whitespace shapes
_SPECIALS = ("\t", "%", "+", "&", "=", "\n", " ", "%09", "%25", "~", "*")


def gen_text(rng: random.Random, max_chars: int) -> str:
    """One corpus string of at most ``max_chars`` characters."""
    if max_chars <= 0:
        return ""
    style = rng.randrange(8)
    if style == 0:
        return ""  # degenerate: empty
    if style == 1:
        return rng.choice(rng.choice((_WORDS, _UNICODE, _SPECIALS)))[:max_chars]
    if style == 2:  # degenerate: one atom repeated across block boundaries
        atom = rng.choice(("a", "é", "文", "😀", "\t", " "))
        return (atom * rng.randint(1, max_chars))[:max_chars]
    parts: list[str] = []
    size = 0
    unicode_bias = style >= 6  # two styles lean heavily non-ASCII
    while size < max_chars and len(parts) < 4 * max_chars:
        roll = rng.random()
        if roll < (0.55 if unicode_bias else 0.12):
            piece = rng.choice(_UNICODE)
        elif roll < 0.70 if unicode_bias else roll < 0.22:
            piece = rng.choice(_SPECIALS)
        else:
            piece = rng.choice(_WORDS) + (" " if rng.random() < 0.8 else "")
        parts.append(piece)
        size += len(piece)
    return "".join(parts)[:max_chars]


def corpus_strings(seed: int, count: int, max_chars: int = 120) -> list[str]:
    """The shared string corpus, as the encoder property tests use it.

    Deterministic in ``seed``; always includes the degenerate shapes
    (empty, single char, block-boundary lengths) before random draws.
    """
    rng = random.Random(seed)
    fixed = ["", "a", "é", "😀", "a" * 8, "b" * 9, "文" * 8,
             "\t%+&= \n", "x" * max_chars]
    return fixed + [gen_text(rng, max_chars) for _ in range(count)]


# -- trace data model --------------------------------------------------------


@dataclass(frozen=True)
class Trace:
    """One fuzz case, fully describing a deterministic run.

    ``ops`` entries are JSON-shaped lists:

    * ``["i", posq, text, client]`` — insert ``text`` at position
      quantum ``posq``;
    * ``["d", posq, count, client]`` — delete up to ``count`` chars;
    * ``["r", posq, count, text, client]`` — replace;
    * ``["s", client]`` — save checkpoint (session/concurrent modes).

    ``faults`` is either None or a dict ``{"seed", "timeout", "specs":
    [{"kind", "rate", "at", "limit", "where", "updates_only"}]}``
    mirroring :class:`repro.net.faults.FaultSpec`.
    """

    seed: int
    mode: str = "engine"
    scheme: str = "recb"
    index: str = "skiplist"
    store: str = "both"
    block_chars: int = 8
    init: str = ""
    ops: tuple = ()
    faults: dict | None = None
    clients: int = 1
    #: which cloud service a networked trace runs against (``engine``
    #: mode ignores it; ``concurrent`` mode requires "gdocs")
    service: str = "gdocs"

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.service not in SERVICES:
            raise ValueError(f"unknown service {self.service!r}")
        if self.mode == "concurrent" and self.service != "gdocs":
            raise ValueError(
                "concurrent traces run against gdocs only (OT merging "
                "is a gdocs-protocol notion)"
            )
        if self.mode == "workspace" and self.service != "gdocs":
            raise ValueError(
                "workspace traces run against gdocs only (the catalog's "
                "piggybacked maintenance rides the gdocs save protocol)"
            )
        if self.scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r}")
        if self.index not in INDEXES:
            raise ValueError(f"unknown index {self.index!r}")
        if self.store not in STORES:
            raise ValueError(f"unknown store {self.store!r}")
        # ops arrive as lists from JSON; freeze for hashing/equality
        object.__setattr__(
            self, "ops", tuple(tuple(op) for op in self.ops)
        )

    def replaced(self, **changes) -> "Trace":
        """A copy with ``changes`` applied (shrink steps use this)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data.update(changes)
        return Trace(**data)

    def to_dict(self) -> dict:
        """The trace as a plain dict, ``format``-stamped for replay."""
        return {
            "format": TRACE_FORMAT,
            "seed": self.seed,
            "mode": self.mode,
            "scheme": self.scheme,
            "index": self.index,
            "store": self.store,
            "block_chars": self.block_chars,
            "init": self.init,
            "ops": [list(op) for op in self.ops],
            "faults": self.faults,
            "clients": self.clients,
            "service": self.service,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        if data.get("format", TRACE_FORMAT) != TRACE_FORMAT:
            raise ValueError(
                f"unsupported trace format {data.get('format')!r}"
            )
        return cls(
            seed=data["seed"],
            mode=data.get("mode", "engine"),
            scheme=data.get("scheme", "recb"),
            index=data.get("index", "skiplist"),
            store=data.get("store", "both"),
            block_chars=data.get("block_chars", 8),
            init=data.get("init", ""),
            ops=data.get("ops", ()),
            faults=data.get("faults"),
            clients=data.get("clients", 1),
            service=data.get("service", "gdocs"),
        )

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace variance, ASCII
        escapes — byte-identical for equal traces on every platform."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"), ensure_ascii=True)

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        return cls.from_dict(json.loads(text))


# -- profiles ----------------------------------------------------------------


@dataclass(frozen=True)
class Profile:
    """Iteration-shape knobs: how big, how chaotic, which modes."""

    name: str
    #: cumulative mode thresholds drawn against random(); order matches
    #: MODES.  Pre-workspace profiles carry 3-tuples: zip() against the
    #: 4-entry MODES truncates, so their draws (and every recorded
    #: digest) stay byte-identical — workspace traces come only from
    #: profiles that weight the fourth slot explicitly.
    mode_weights: tuple = (0.60, 0.25, 0.15)
    max_init: int = 120
    max_ops: int = 12
    max_insert: int = 24
    max_delete: int = 48
    #: probability a session/concurrent trace carries a fault schedule
    fault_prob: float = 0.7
    max_fault_specs: int = 2
    rate_range: tuple = (0.10, 0.40)
    save_prob: float = 0.35
    block_chars_choices: tuple = (8, 8, 8, 4, 1)
    #: concurrent traces draw their writer count from [2, max_clients];
    #: the default keeps the draw out of the rng stream entirely so
    #: every pre-existing profile's traces stay byte-identical
    max_clients: int = 2


PROFILES = {
    "ci": Profile(name="ci"),
    "quick": Profile(
        name="quick", mode_weights=(1.0, 0.0, 0.0), max_init=64,
        max_ops=8, max_insert=16, fault_prob=0.0,
    ),
    "engine": Profile(
        name="engine", mode_weights=(1.0, 0.0, 0.0), fault_prob=0.0,
    ),
    # long keystroke runs for the edit-coalescing differential: engine
    # mode only (the oracle drives the document directly), no faults,
    # enough ops per trace that bursts of every size hit the cap paths
    "burst": Profile(
        name="burst", mode_weights=(1.0, 0.0, 0.0), max_ops=24,
        max_insert=32, fault_prob=0.0,
    ),
    "deep": Profile(
        name="deep", mode_weights=(0.45, 0.30, 0.25), max_init=600,
        max_ops=32, max_insert=64, max_delete=160, fault_prob=0.8,
        max_fault_specs=3, rate_range=(0.10, 0.50),
    ),
    # the N-writer collaboration profile: every trace is concurrent,
    # 2–16 writers on one document, moderate fault pressure — the
    # many-writer merge path under the same plaintext-oracle judge
    "collab": Profile(
        name="collab", mode_weights=(0.0, 0.0, 1.0), max_ops=20,
        max_insert=24, fault_prob=0.4, max_fault_specs=2,
        rate_range=(0.05, 0.25), max_clients=16,
    ),
    # the multi-document tenant profile: every trace opens a workspace
    # of 2–4 documents, edits across them, and judges the encrypted
    # search index plus the audit chain against ground truth (including
    # a rollback-attacking server).  Fault-free: the catalog's save
    # piggyback rides acknowledged saves, so chaos belongs to the other
    # profiles.  max_clients doubles as the document count here.
    "workspace": Profile(
        name="workspace", mode_weights=(0.0, 0.0, 0.0, 1.0),
        max_ops=16, max_insert=24, fault_prob=0.0, max_clients=4,
    ),
}


# -- generation --------------------------------------------------------------


def _gen_edit_op(rng: random.Random, profile: Profile,
                 client: int) -> list:
    posq = rng.choice((0, POS_SCALE, rng.randrange(POS_SCALE + 1),
                       rng.randrange(POS_SCALE + 1)))
    kind = rng.random()
    if kind < 0.45:
        return ["i", posq, gen_text(rng, profile.max_insert), client]
    if kind < 0.75:
        return ["d", posq, rng.randint(1, profile.max_delete), client]
    return ["r", posq, rng.randint(0, profile.max_delete),
            gen_text(rng, profile.max_insert), client]


def _gen_faults(rng: random.Random, profile: Profile) -> dict | None:
    if rng.random() >= profile.fault_prob:
        return None
    lo, hi = profile.rate_range
    specs = []
    for _ in range(rng.randint(1, profile.max_fault_specs)):
        kind = rng.choice(FAULT_KINDS)
        if rng.random() < 0.75:  # rate-driven chaos
            specs.append({
                "kind": kind,
                "rate": round(rng.uniform(lo, hi), 3),
                "at": [],
                "limit": None,
                "where": rng.choice(("request", "response")),
                "updates_only": True,
            })
        else:  # deterministically scheduled strike on an early save
            specs.append({
                "kind": kind,
                "rate": 0.0,
                "at": [rng.randint(1, 4)],
                "limit": 1,
                "where": rng.choice(("request", "response")),
                "updates_only": False,
            })
    return {
        "seed": rng.randrange(2 ** 31),
        "timeout": 2.0,
        "specs": specs,
    }


def _pick_mode(rng: random.Random, profile: Profile) -> str:
    roll = rng.random()
    acc = 0.0
    for mode, weight in zip(MODES, profile.mode_weights):
        acc += weight
        if roll < acc:
            return mode
    return MODES[0]


def generate_trace(
    seed: int,
    profile: str | Profile = "ci",
    mode: str | None = None,
    scheme: str | None = None,
    index: str | None = None,
    service: str | None = None,
) -> Trace:
    """Generate the trace for ``seed`` (pure function of its inputs).

    ``service`` pins the cloud backend for session-mode traces; left
    None, session traces draw one (gdocs-weighted) and engine /
    concurrent traces stay on gdocs.  Pinning a non-gdocs service
    forces session mode — the other modes don't speak those protocols.
    """
    prof = PROFILES[profile] if isinstance(profile, str) else profile
    rng = random.Random(seed)
    if service is not None and service != "gdocs":
        mode = "session"
    mode = mode or _pick_mode(rng, prof)
    scheme = scheme or rng.choice(SCHEMES)
    index = index or rng.choice(INDEXES)
    if service is None:
        service = (rng.choice(_SESSION_SERVICES)
                   if mode == "session" else "gdocs")
    if mode not in ("concurrent", "workspace"):
        clients = 1
    elif prof.max_clients > 2:
        clients = rng.randint(2, prof.max_clients)
    else:
        # no rng draw: keeps pre-existing profiles' streams (and their
        # corpus replay digests) byte-identical
        clients = 2

    init = gen_text(rng, rng.choice((0, 1, prof.max_init // 8,
                                     prof.max_init)))
    ops: list[list] = []
    for _ in range(rng.randint(1, prof.max_ops)):
        client = rng.randrange(clients)
        ops.append(_gen_edit_op(rng, prof, client))
        if mode != "engine" and rng.random() < prof.save_prob:
            ops.append(["s", client])

    faults = _gen_faults(rng, prof) if mode != "engine" else None
    return Trace(
        seed=seed,
        mode=mode,
        scheme=scheme,
        index=index,
        store="both",
        block_chars=rng.choice(prof.block_chars_choices),
        init=init,
        ops=tuple(tuple(op) for op in ops),
        faults=faults,
        clients=clients,
        service=service,
    )
