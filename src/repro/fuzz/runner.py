"""Trace execution: drive the real stack and check it every step.

Three execution modes, selected by ``Trace.mode``:

``engine``
    The core pipeline with no network: an :class:`EncryptedDocument`
    built over the trace's scheme × index, with the resulting cdeltas
    applied to a *flat wire string* and a :class:`PieceTable` — the two
    server storage models — which must stay byte-equal to the client's
    own rewrite.  Checks run after every op; the trace ends with a
    fresh ``load_document`` round-trip (full parse + decrypt + RPC
    checksum verification).

``session``
    A resilient :class:`PrivateEditingSession` against the trace's
    ``service`` (any name in ``repro.services.registry.SERVICE_NAMES``
    — gdocs, bespin, buzzword, or the replicated facade) with the
    trace's fault schedule on the Channel.  Mid-trace saves may fail
    (typed ``SaveOutcome``), but after ``FaultPlan.quiesce()`` one
    clean save must land, the stored bytes must decrypt to the
    client's text (``registry.decrypt_view`` states the oracle
    uniformly across providers), and a lowercase plaintext sentinel
    must never appear in anything that crossed the wire (lowercase
    cannot occur in Base32 ciphertext).

``concurrent``
    Two sessions sharing one server.  rECB runs the merging server
    (``merge_concurrent=True`` + ``decrypt_acks``); RPC runs the
    rejecting server, exercising the conflict → OT-resync path.  After
    faults quiesce, a bounded drain (save both until quiescent) plus a
    re-open must leave both clients and the decrypted server state
    identical — the OT convergence obligation.

``workspace``
    One :class:`repro.client.workspace.Workspace` over several
    documents on a catalog-wrapped server.  On top of per-document
    convergence and the leak check, the encrypted search index is
    judged against a plaintext word oracle and the audit chains are
    judged twice: honest histories must verify clean, and an
    :class:`~repro.security.adversary.ActiveServerAdversary` mounting
    a plain rollback and a forged self-consistent chain must both be
    detected.

:class:`FuzzRunner` iterates seeds, hashes every (trace, fingerprint)
pair into a run digest — identical seed ⇒ byte-identical digest — and
on failure shrinks the trace and serializes a replay file under the
corpus directory.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.client.coalesce import EditCoalescer
from repro.client.workspace import Workspace
from repro.core.document import create_document
from repro.core.keys import KeyMaterial
from repro.core.transform import EncryptionEngine
from repro.crypto.random import DeterministicRandomSource
from repro.datastructures import IndexedAVL, IndexedSkipList, ReferenceIndex
from repro.errors import ReproError
from repro.extension.catalog import extract_words
from repro.extension.session import PrivateEditingSession
from repro.fuzz.generators import PROFILES, SERVICES, Trace, generate_trace
from repro.fuzz.model import (
    InvariantViolation,
    Violation,
    apply_op,
    check_document,
    check_equal,
    check_no_leak,
    check_roundtrip,
    check_store,
    op_delta,
    resolve_pos,
)
from repro.net.faults import FaultPlan, FaultSpec, updates_only
from repro.net.policy import RetryPolicy
from repro.obs.metrics import counter
from repro.security.adversary import ActiveServerAdversary
from repro.services import registry
from repro.services.gdocs import protocol as gdocs_protocol
from repro.services.gdocs.pieces import PieceTable
from repro.services.gdocs.server import GDocsServer

__all__ = ["SENTINEL", "FuzzReport", "FuzzRunner", "run_trace", "execute_trace"]

#: lowercase sentinel typed into every networked trace; Base32
#: ciphertext is uppercase-only, so seeing it on the wire is a leak
SENTINEL = "leakcheck sentinel kilimanjaro"

_PASSWORD = "fuzz-password"

_INDEX_FACTORIES = {
    "skiplist": IndexedSkipList,
    "avl": IndexedAVL,
    "reference": ReferenceIndex,
}

#: traces executed (each counted once, pass or fail)
_CASES = counter("fuzz.cases")
#: edit operations interpreted across all traces
_OPS = counter("fuzz.ops")
#: invariant violations observed (pre-shrink)
_VIOLATIONS = counter("fuzz.violations")


@functools.lru_cache(maxsize=1)
def _engine_keys() -> KeyMaterial:
    """One cached key for engine mode (derivation dominates otherwise)."""
    return KeyMaterial.from_password(
        _PASSWORD, rng=DeterministicRandomSource(0xF0)
    )


def _plan_from_dict(data: dict | None) -> FaultPlan | None:
    if not data:
        return None
    specs = [
        FaultSpec(
            kind=s["kind"],
            rate=s.get("rate", 0.0),
            at=tuple(s.get("at") or ()),
            limit=s.get("limit"),
            match=updates_only if s.get("updates_only") else None,
            where=s.get("where", "request"),
        )
        for s in data.get("specs", ())
    ]
    if not specs:
        return None
    return FaultPlan(specs, seed=data.get("seed", 0),
                     timeout_seconds=data.get("timeout", 2.0))


# -- engine mode -------------------------------------------------------------


def _run_engine(trace: Trace) -> str:
    doc = create_document(
        trace.init,
        key_material=_engine_keys(),
        scheme=trace.scheme,
        block_chars=trace.block_chars,
        rng=DeterministicRandomSource(trace.seed or 1),
        index_factory=_INDEX_FACTORIES[trace.index],
    )
    oracle = trace.init
    flat = doc.wire() if trace.store in ("both", "flat") else None
    pieces = (PieceTable(doc.wire())
              if trace.store in ("both", "pieces") else None)

    for step, op in enumerate(trace.ops):
        if op[0] == "s":
            continue  # engine mode has no network; saves are no-ops
        _OPS.inc()
        delta = op_delta(op, len(oracle))
        oracle = apply_op(oracle, op)
        if delta is None:
            continue
        cdelta = doc.apply_delta(delta)
        if flat is not None:
            flat = cdelta.apply(flat)
            check_store("flat", flat, doc, step)
        if pieces is not None:
            cdelta.apply(pieces)
            check_store("pieces", pieces.materialize(), doc, step)
        check_document(doc, oracle, step)

    check_roundtrip(doc, oracle, -1)
    _check_coalescing(trace)
    return doc.wire()


#: burst cap for the coalescing differential — small enough that a
#: typical trace flushes several bursts through the cap path
_COALESCE_DIFF_MAX_OPS = 8


def _check_coalescing(trace: Trace) -> None:
    """Differential oracle for the coalesced cipher path.

    The tentpole safety obligation: folding a burst of keystroke deltas
    into one composed delta and encrypting every touched cluster in a
    single batched cipher call must be *wire-identical* — same cdelta,
    same full ciphertext — to the sequential reference path that issues
    one cipher call per cluster (``_coalesce_ciphers = False``).  Both
    documents share the trace's seed, so any byte of divergence is a
    real bug in the coalescing layer, never nonce noise.
    """

    def build(coalesce: bool):
        doc = create_document(
            trace.init,
            key_material=_engine_keys(),
            scheme=trace.scheme,
            block_chars=trace.block_chars,
            rng=DeterministicRandomSource(trace.seed or 1),
            index_factory=_INDEX_FACTORIES[trace.index],
        )
        doc._coalesce_ciphers = coalesce
        return doc

    batched, sequential = build(True), build(False)
    text = trace.init
    journal = EditCoalescer(max_ops=_COALESCE_DIFF_MAX_OPS)

    def apply_burst(burst, step: int) -> None:
        if burst is None:
            return
        wire_b = batched.apply_delta(burst).serialize()
        wire_s = sequential.apply_delta(burst).serialize()
        check_equal("coalesce-divergence", wire_b, wire_s, step,
                    "cdelta wire, batched vs per-cluster ciphers")
        check_equal("coalesce-divergence", batched.wire(),
                    sequential.wire(), step,
                    "ciphertext, batched vs per-cluster ciphers")

    for step, op in enumerate(trace.ops):
        if op[0] == "s":
            apply_burst(journal.flush("save"), step)
            continue
        delta = op_delta(op, len(text))
        text = apply_op(text, op)
        if delta is None:
            continue
        apply_burst(journal.add(delta), step)
    apply_burst(journal.flush("drain"), len(trace.ops))
    check_document(batched, text, -1)
    check_roundtrip(batched, text, -1)


# -- session mode ------------------------------------------------------------


def _session(trace: Trace, *, server=None, seed_salt: int = 0,
             faults=None, decrypt_acks: bool = False) -> PrivateEditingSession:
    return PrivateEditingSession(
        f"fuzz-{trace.seed}",
        _PASSWORD,
        server=server,
        scheme=trace.scheme,
        block_chars=trace.block_chars,
        rng=DeterministicRandomSource((trace.seed << 4) + seed_salt + 1),
        index_factory=_INDEX_FACTORIES[trace.index],
        faults=faults,
        retry_policy=RetryPolicy(seed=trace.seed + seed_salt),
        verify_acks=True,
        decrypt_acks=decrypt_acks,
        service=trace.service,
    )


def _apply_session_op(session: PrivateEditingSession, op: tuple) -> None:
    kind = op[0]
    length = len(session.text)
    pos = resolve_pos(op[1], length)
    if kind == "i":
        if op[2]:
            session.type_text(pos, op[2])
    elif kind == "d":
        count = min(op[2], length - pos)
        if count > 0:
            session.delete_text(pos, count)
    elif kind == "r":
        count = min(op[2], length - pos)
        if count > 0:
            session.delete_text(pos, count)
        if op[3]:
            session.type_text(pos, op[3])


def _leak_blobs(plan: FaultPlan | None, *sessions) -> list[str]:
    blobs: list[str] = []
    if plan is not None:
        for request in plan.observed:
            blobs.append(request.url)
            blobs.append(request.body)
    for session in sessions:
        for exchange in session.channel.exchange_log:
            blobs.append(exchange.request.body)
            blobs.append(exchange.response.body)
    return blobs


def _run_session(trace: Trace) -> str:
    plan = _plan_from_dict(trace.faults)
    session = _session(trace, faults=plan)
    session.open()
    session.type_text(0, SENTINEL + " " + trace.init)
    session.save()  # may fail mid-faults; typed outcome, never a raise

    for step, op in enumerate(trace.ops):
        if op[0] == "s":
            session.save()
            continue
        _OPS.inc()
        _apply_session_op(session, op)

    if plan is not None:
        plan.quiesce()
    # the recovery paths legitimately need extra rounds: a garbled
    # store takes one probe save to *detect* the damage before a full
    # save repairs it, and a conflict resync leaves the rebased local
    # edits pending for the next save (by design).  Keep saving until
    # one comes back clean — ok, no conflict, no resync — within a
    # small budget; anything more persistent is a liveness violation.
    outcome = session.save()
    for _ in range(5):
        if outcome.ok and not outcome.conflict and not outcome.resynced:
            break
        outcome = session.save()
    if not (outcome.ok and not outcome.conflict
            and not outcome.resynced):
        raise InvariantViolation(Violation(
            "save-failed", -1,
            f"post-quiesce saves never came back clean: "
            f"ok={outcome.ok} conflict={outcome.conflict} "
            f"resynced={outcome.resynced} {outcome.error}"))

    capabilities = registry.backend_for(trace.service).capabilities
    if not capabilities.revisioned:
        # Un-revisioned whole-file stores have no defence against a
        # reorder fault's *late flush*: a stale save held pre-quiesce
        # is released during the exchange that produced the clean save
        # above, landing after it (gdocs rejects it by revision).  One
        # more save — whole-file saves always retransmit everything —
        # lands last with nothing left in flight to overtake it.
        outcome = session.save()
        if not outcome.ok:
            raise InvariantViolation(Violation(
                "save-failed", -1,
                f"post-quiesce settle save failed: {outcome.error}"))

    recovered = registry.decrypt_view(
        trace.service, session.server_view(), _PASSWORD, trace.scheme
    )
    check_equal("convergence", recovered, session.text, -1,
                "decrypt(server) vs client text")
    check_no_leak(_leak_blobs(plan, session), SENTINEL)
    return session.server_view() + "\n--\n" + session.text


# -- concurrent mode ---------------------------------------------------------

_DRAIN_ROUNDS = 12


def _run_concurrent(trace: Trace) -> str:
    merging = trace.scheme == "recb"
    server = GDocsServer(merge_concurrent=merging)
    plan = _plan_from_dict(trace.faults)
    n = max(2, trace.clients)
    # faults ride on client 0's channel only: one flaky link is enough
    # chaos, and keeps held-request replay within a single channel
    sessions = tuple(
        _session(trace, server=server, seed_salt=7 * i,
                 faults=plan if i == 0 else None,
                 decrypt_acks=merging)
        for i in range(n)
    )
    one = sessions[0]

    one.open()
    one.type_text(0, SENTINEL + " " + trace.init)
    one.save()
    for other in sessions[1:]:
        other.open()
        other.save()

    for step, op in enumerate(trace.ops):
        session = sessions[op[-1] % len(sessions)]
        if op[0] == "s":
            session.save()
            continue
        _OPS.inc()
        _apply_session_op(session, op)

    if plan is not None:
        plan.quiesce()

    # drain: round-robin saves until every session is quiescent (noop).
    # A conflict-mode round lands at most one writer, so the budget
    # grows with the number of extra writers.
    rounds = _DRAIN_ROUNDS + 2 * (n - 2)
    for _ in range(rounds):
        outcomes = [s.save() for s in sessions]
        if all(o.ok and o.kind == "noop" for o in outcomes):
            break
        if any(o.error and "http 413" in o.error for o in outcomes):
            # A stable quota refusal is the contract's other legal
            # terminal state: a typed SaveOutcome, not convergence.
            # (Reachable for real: a save corrupted in flight leaves
            # the store garbled; a second client opening before the
            # repair sees raw ciphertext — refusing to forge plaintext
            # is the extension's job — and edits typed into that view
            # re-encrypt ciphertext, exploding past the server quota.)
            check_no_leak(_leak_blobs(plan, *sessions), SENTINEL)
            return "quota-refused\n--\n" + one.server_view()
    else:
        last = " ".join(f"{o.kind}/{o.ok}" for o in outcomes)
        raise InvariantViolation(Violation(
            "convergence", -1,
            f"drain did not quiesce in {rounds} rounds "
            f"(last: {last})"))

    # refresh every editor from the server and require agreement
    texts = [s.open() for s in sessions]
    for i, text in enumerate(texts[1:], start=1):
        check_equal("convergence", texts[0], text, -1,
                    "client texts after drain + re-open")
    recovered = EncryptionEngine(
        password=_PASSWORD, scheme=trace.scheme
    ).decrypt(one.server_view())
    check_equal("convergence", recovered, texts[0], -1,
                "decrypt(server) vs refreshed clients")
    check_no_leak(_leak_blobs(plan, *sessions), SENTINEL)
    return one.server_view() + "\n--\n" + texts[0]


# -- workspace mode -----------------------------------------------------------

#: at most this many distinct words are search-checked per trace (they
#: are drawn sorted, so the sample is deterministic); the cap keeps a
#: wordy trace from turning one case into hundreds of lookups
_SEARCH_SAMPLE = 24


def _run_workspace(trace: Trace) -> str:
    """One tenant, several documents, and three oracles on top of the
    usual convergence/leak checks:

    * *search*: for a sample of words from the final texts, the
      encrypted index must return exactly the documents whose plaintext
      contains the word (and nothing for an absent probe word);
    * *audit (honest)*: every document's chain must verify clean;
    * *audit (malicious)*: an :class:`ActiveServerAdversary` then rolls
      one document back (chain left stale) and forges a self-consistent
      replacement chain over rolled-back content on another — both must
      raise alerts, else ``audit-miss``.
    """
    n_docs = max(2, trace.clients)
    doc_ids = [f"ws-{trace.seed}-{i}" for i in range(n_docs)]
    server = registry.make_server("gdocs", catalog=True)
    ws = Workspace(
        f"tenant-{trace.seed}",
        server=server,
        scheme=trace.scheme,
        block_chars=trace.block_chars,
        index_factory=_INDEX_FACTORIES[trace.index],
        rng_seed=trace.seed,
    )
    for doc_id in doc_ids:
        ws.open(doc_id)
    ws.type_text(doc_ids[0], 0, SENTINEL + " " + trace.init)
    ws.save(doc_ids[0])

    for op in trace.ops:
        doc_id = doc_ids[op[-1] % n_docs]
        if op[0] == "s":
            ws.save(doc_id)
            continue
        _OPS.inc()
        _apply_session_op(ws.session(doc_id), op)

    # two more edited saves per document: every audit chain ends at
    # least two links deep and the store holds real version history for
    # the rollback attacks below
    for i, doc_id in enumerate(doc_ids):
        for depth in range(2):
            ws.type_text(doc_id, 0, f"depth{depth} marker{i} ")
            ws.save(doc_id)
    ws.save_all()

    # oracle: per-document convergence through the catalog wrapper
    truth: dict[str, str] = {}
    for doc_id in doc_ids:
        recovered = registry.decrypt_view(
            "gdocs", ws.session(doc_id).server_view(),
            ws.password_for(doc_id), trace.scheme)
        check_equal("convergence", recovered, ws.text(doc_id), -1,
                    f"decrypt(server) vs client text for {doc_id}")
        truth[doc_id] = ws.text(doc_id)

    listed = set(ws.list_docs())
    missing = [d for d in doc_ids if d not in listed]
    if missing:
        raise InvariantViolation(Violation(
            "search-mismatch", -1, f"catalog listing missing {missing}"))

    # oracle: encrypted search vs the plaintext ground truth
    indexed = {d: set(extract_words(text)) for d, text in truth.items()}
    words = sorted({w for ws_words in indexed.values() for w in ws_words})
    for word in words[:_SEARCH_SAMPLE]:
        expected = sorted(d for d in doc_ids if word in indexed[d])
        check_equal("search-mismatch", ",".join(ws.search(word)),
                    ",".join(expected), -1, f"search({word!r})")
    probe = f"zzzabsent{trace.seed}"
    check_equal("search-mismatch", ",".join(ws.search(probe)), "",
                -1, f"search({probe!r}) (word in no document)")

    # oracle: honest histories verify clean
    for doc_id in doc_ids:
        alerts = ws.verify_history(doc_id)
        if alerts:
            raise InvariantViolation(Violation(
                "audit-false-alarm", -1,
                f"clean history of {doc_id} raised {alerts[0]!r}"))

    blobs = _leak_blobs(None, *(ws.session(d) for d in doc_ids))
    for exchange in ws.catalog_channel.exchange_log:
        blobs.append(exchange.request.url)
        blobs.append(exchange.request.body)
        blobs.append(exchange.response.body)
    check_no_leak(blobs, SENTINEL)

    # attack 1: plain rollback — stored content rewound, chain left
    # stale.  The audited head no longer matches the store.
    adv = ActiveServerAdversary(server.store)
    victim = doc_ids[0]
    adv.rollback(victim, 1)
    if not ws.verify_history(victim):
        raise InvariantViolation(Violation(
            "audit-miss", -1,
            f"rolled-back {victim} verified clean (stale chain)"))

    # attack 2: forged chain — roll back *and* rebuild a
    # self-consistent chain over the stale content.  Every link
    # recomputes and the head matches the store, so only the client's
    # remembered (rev, link) anchor can refute it.
    target = doc_ids[1]
    stored = server.store.get(target)
    old = stored.history[0] if stored.history else stored.content
    adv.overwrite(target, old)
    rev_now = ws.session(target).client.revision
    history = [(rev, gdocs_protocol.content_hash(f"forged-{rev}"))
               for rev in range(1, rev_now)]
    history.append((rev_now, gdocs_protocol.content_hash(old)))
    adv.forge_chain(server.catalog, target, history)
    if not ws.verify_history(target):
        raise InvariantViolation(Violation(
            "audit-miss", -1,
            f"forged self-consistent chain over rolled-back {target} "
            f"verified clean"))

    return "\n--\n".join([truth[d] for d in doc_ids]
                         + [",".join(sorted(listed))])


_MODES = {
    "engine": _run_engine,
    "session": _run_session,
    "concurrent": _run_concurrent,
    "workspace": _run_workspace,
}


def execute_trace(trace: Trace) -> str:
    """Run ``trace``; return its fingerprint or raise
    :class:`InvariantViolation`.  Any other exception escaping the
    stack is itself a finding and is wrapped as a ``crash-*``
    violation."""
    _CASES.inc()
    try:
        return _MODES[trace.mode](trace)
    except InvariantViolation:
        raise
    except (ReproError, AssertionError, RecursionError, ArithmeticError,
            LookupError, TypeError, ValueError, AttributeError) as exc:
        raise InvariantViolation(Violation(
            f"crash-{type(exc).__name__}", -1, str(exc)[:200])) from exc


def run_trace(trace: Trace) -> Violation | None:
    """Non-raising wrapper: the violation for ``trace``, or None."""
    try:
        execute_trace(trace)
        return None
    except InvariantViolation as exc:
        _VIOLATIONS.inc()
        return exc.violation


# -- the runner --------------------------------------------------------------


@dataclass
class FuzzReport:
    """What one :meth:`FuzzRunner.run` did."""

    iterations: int = 0
    seed: int = 0
    profile: str = "ci"
    digest: str = ""               #: sha256 over every (trace, fingerprint)
    failures: list[dict] = field(default_factory=list)
    corpus_files: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        """The report as a plain dict (CLI ``--metrics-json`` style)."""
        return {
            "iterations": self.iterations,
            "seed": self.seed,
            "profile": self.profile,
            "digest": self.digest,
            "failures": self.failures,
            "corpus_files": self.corpus_files,
            "ok": self.ok,
        }


class FuzzRunner:
    """Iterate seeded traces; shrink and serialize any failure.

    ``seed`` anchors the whole run: case *i* uses trace seed
    ``seed + i``, so any failing case can be replayed alone by seed.
    """

    def __init__(
        self,
        seed: int = 0,
        iters: int = 100,
        profile: str = "ci",
        mode: str | None = None,
        scheme: str | None = None,
        service: str | None = None,
        corpus_dir: str | Path | None = None,
        shrink: bool = True,
        max_failures: int = 5,
    ):
        if profile not in PROFILES:
            raise ValueError(
                f"unknown profile {profile!r}; have {sorted(PROFILES)}")
        if service is not None and service not in SERVICES:
            raise ValueError(
                f"unknown service {service!r}; have {SERVICES}")
        self.seed = seed
        self.iters = iters
        self.profile = profile
        self.mode = mode
        self.scheme = scheme
        self.service = service
        self.corpus_dir = Path(corpus_dir) if corpus_dir else None
        self.shrink = shrink
        self.max_failures = max_failures

    def run(self, progress=None) -> FuzzReport:
        """Execute the configured campaign and return its report.

        Generates ``iters`` traces from consecutive seeds, runs each,
        folds every ``(trace, fingerprint)`` pair into the replay
        digest, and — on failure — shrinks the trace and writes a
        corpus file.  ``progress`` (if given) is called as
        ``progress(done, total)`` every few hundred cases.  Stops
        early after ``max_failures`` distinct failures.
        """
        from repro.fuzz.shrink import shrink_trace

        report = FuzzReport(seed=self.seed, profile=self.profile)
        hasher = hashlib.sha256()
        for i in range(self.iters):
            trace = generate_trace(
                self.seed + i, self.profile,
                mode=self.mode, scheme=self.scheme,
                service=self.service,
            )
            violation = None
            try:
                fingerprint = execute_trace(trace)
            except InvariantViolation as exc:
                _VIOLATIONS.inc()
                violation = exc.violation
                fingerprint = "VIOLATION:" + violation.kind
            hasher.update(trace.to_json().encode())
            hasher.update(b"\x00")
            hasher.update(fingerprint.encode())
            hasher.update(b"\x01")
            report.iterations += 1

            if violation is not None:
                small = (shrink_trace(trace, violation)
                         if self.shrink else trace)
                entry = {
                    "seed": trace.seed,
                    "iteration": i,
                    "violation": violation.to_dict(),
                    "trace": small.to_dict(),
                }
                report.failures.append(entry)
                if self.corpus_dir is not None:
                    path = self._write_corpus(small, violation)
                    entry["corpus_file"] = str(path)
                    report.corpus_files.append(str(path))
                if len(report.failures) >= self.max_failures:
                    break
            if progress is not None and (i + 1) % 500 == 0:
                progress(i + 1, self.iters)

        report.digest = hasher.hexdigest()
        return report

    def _write_corpus(self, trace: Trace, violation: Violation) -> Path:
        self.corpus_dir.mkdir(parents=True, exist_ok=True)
        name = f"shrunk-{violation.kind}-seed{trace.seed}.json"
        path = self.corpus_dir / name
        payload = {
            "violation": violation.to_dict(),
            "trace": trace.to_dict(),
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True,
                                   ensure_ascii=True) + "\n")
        return path
