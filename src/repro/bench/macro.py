"""The macro-benchmark harness (SVII-C).

A macro test case is an editing session against the simulated Google
Documents service: open the document, perform the session's first full
save, then a series of sentence-level edits each followed by a save.
Latency of an operation is **real wall-clock crypto/processing time plus
simulated network/server time** (the latency model advances the
channel's clock; EXPERIMENTS.md records the calibration).

Runs come in pairs — identical workload and latency draws with the
extension enabled and disabled — and the reported figure is the paper's
*performance degradation*: ``(t_ext − t_plain) / t_plain`` per
operation, summarized as mean and deviation over all edits of all
trials, exactly the shape of Fig. 5 / Fig. 8.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.bench.timing import Sample
from repro.crypto.random import DeterministicRandomSource
from repro.extension import PrivateEditingSession
from repro.net.latency import WAN_2011, LatencyModel
from repro.workloads.documents import document_of_length
from repro.workloads.edits import edit_stream

__all__ = ["MacroCase", "MacroReport", "run_macro_case"]


@dataclass(frozen=True)
class MacroCase:
    """One (file size x workload x scheme x block size) configuration."""

    file_chars: int
    category: str            #: one of repro.workloads.CATEGORIES
    scheme: str              #: "recb" | "rpc"
    block_chars: int
    edits_per_session: int = 8
    trials: int = 3


@dataclass
class MacroReport:
    """Degradation statistics for one case (the paper's table row)."""

    case: MacroCase
    initial_load: Sample
    edit_ops: Sample


def _timed(session: PrivateEditingSession, action) -> float:
    """Wall time of ``action`` plus the simulated latency it incurred."""
    clock_before = session.channel.clock.now()
    start = time.perf_counter()
    action()
    elapsed = time.perf_counter() - start
    return elapsed + (session.channel.clock.now() - clock_before)


def _run_session(
    case: MacroCase,
    enabled: bool,
    seed: int,
    latency_factory=WAN_2011,
) -> tuple[float, list[float]]:
    """One session; returns (initial-load latency, per-edit latencies)."""
    text = document_of_length(case.file_chars, seed)
    latency: LatencyModel = latency_factory(seed)
    session = PrivateEditingSession(
        f"doc{seed}", "pw",
        scheme=case.scheme,
        block_chars=case.block_chars,
        latency=latency,
        extension_enabled=enabled,
        rng=DeterministicRandomSource(seed),
    )

    def initial_load() -> None:
        session.open()
        session.client.editor.set_text(text)  # paste the whole document
        session.save()                         # session's first, full save

    load_latency = _timed(session, initial_load)

    edit_latencies: list[float] = []
    workload_rng = random.Random(seed * 1000 + 17)
    current = text
    for delta in edit_stream(text, case.category, workload_rng,
                             case.edits_per_session):
        current = delta.apply(current)

        def one_edit(delta=delta) -> None:
            session.client.apply_delta(delta)
            session.save()

        edit_latencies.append(_timed(session, one_edit))
    session.close()
    return load_latency, edit_latencies


def run_macro_case(case: MacroCase, latency_factory=WAN_2011) -> MacroReport:
    """Run paired sessions and report per-operation degradation."""
    load_overhead = Sample()
    edit_overhead = Sample()
    for trial in range(case.trials):
        seed = trial + 1
        plain_load, plain_edits = _run_session(
            case, enabled=False, seed=seed, latency_factory=latency_factory
        )
        ext_load, ext_edits = _run_session(
            case, enabled=True, seed=seed, latency_factory=latency_factory
        )
        load_overhead.add((ext_load - plain_load) / plain_load)
        for plain, ext in zip(plain_edits, ext_edits):
            edit_overhead.add((ext - plain) / plain)
    return MacroReport(case=case, initial_load=load_overhead,
                       edit_ops=edit_overhead)
