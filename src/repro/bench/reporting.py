"""Paper-style table rendering for benchmark output.

Every figure-reproducing benchmark prints its rows in the same layout
the paper uses, so EXPERIMENTS.md can place them side by side.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_table", "pct", "banner", "metrics_cell"]


def pct(fraction: float) -> str:
    """Format a fraction as the paper formats degradation percentages."""
    value = fraction * 100.0
    if value >= 10:
        return f"{value:.0f}%"
    return f"{value:.1f}%"


def banner(title: str) -> str:
    """Render a section banner around ``title``."""
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table.

    Every row must have exactly ``len(headers)`` cells; a ragged row
    raises ``ValueError`` naming the offender (instead of the
    ``IndexError`` deep in column sizing it used to produce).
    """
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)} "
                f"(headers: {list(headers)!r}, row: {list(row)!r})"
            )
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells)
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(banner(title))
    header_line = "  ".join(
        cells[0][col].ljust(widths[col]) for col in range(len(headers))
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append(
            "  ".join(row[col].ljust(widths[col]) for col in range(len(headers)))
        )
    return "\n".join(lines)


def metrics_cell(deltas: Mapping[str, float],
                 names: Mapping[str, str] | None = None) -> str:
    """Format counter deltas as one compact table cell.

    ``names`` maps metric name -> short label (defaults to the last
    dotted component): ``{"crypto.aes.calls": "aes"}`` renders
    ``aes=123``.  Used for the metrics column of benchmark tables.
    """
    parts = []
    for name, value in deltas.items():
        label = (names or {}).get(name, name.rsplit(".", 1)[-1])
        parts.append(f"{label}={int(value)}")
    return " ".join(parts)
