"""Timing utilities shared by the benchmark harnesses."""

from __future__ import annotations

import statistics
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.obs import value_of

__all__ = ["Stopwatch", "Sample", "ms_per_char"]


class Stopwatch:
    """Accumulates wall-clock time across ``measure()`` blocks.

    Pass ``track`` (metric names from the global registry, e.g.
    ``("crypto.aes.calls", "index.node_visits")``) and each lap also
    records those counters' deltas into :attr:`lap_metrics` — the
    benchmark tables' metrics column reads from there.
    """

    def __init__(self, track: Sequence[str] = ()) -> None:
        self.elapsed = 0.0
        self.laps: list[float] = []
        self._track = tuple(track)
        self.lap_metrics: list[dict[str, float]] = []

    @contextmanager
    def measure(self) -> Iterator[None]:
        """Context manager timing one lap into :attr:`laps`."""
        before = {name: value_of(name) for name in self._track}
        start = time.perf_counter()
        try:
            yield
        finally:
            lap = time.perf_counter() - start
            self.elapsed += lap
            self.laps.append(lap)
            if self._track:
                self.lap_metrics.append({
                    name: value_of(name) - before[name]
                    for name in self._track
                })

    def metric_total(self, name: str) -> float:
        """Sum of a tracked metric's deltas across all laps."""
        return sum(lap.get(name, 0) for lap in self.lap_metrics)


@dataclass
class Sample:
    """A set of scalar observations with paper-style summary stats."""

    values: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        """Record one observation."""
        self.values.append(value)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.values) if self.values else 0.0

    @property
    def dev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        return statistics.stdev(self.values)

    def __len__(self) -> int:
        return len(self.values)


def ms_per_char(seconds: float, chars: int) -> float:
    """The paper's Fig. 4 normalization: milliseconds per character."""
    if chars == 0:
        return 0.0
    return seconds * 1000.0 / chars
