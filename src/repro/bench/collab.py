"""The collaboration bench: N writers, one document, conflict vs merge.

``benchmarks/bench_collab.py`` (and ``make bench-collab``) drive this
module.  One *cell* = :func:`run_collab`: ``writers`` encrypted
:class:`~repro.extension.session.PrivateEditingSession`\\ s share **one**
document (same password — collaborators by construction), interleave
``rounds`` edit+save rounds each, then drain to quiescence and judge
convergence with the plaintext oracle
(:func:`repro.services.registry.decrypt_view`).  The cell reports

* **conflict rate** — conflicted saves per non-noop save attempt, the
  number the server-side OT merge path exists to collapse;
* **merges** — stale saves the server rebased instead of rejecting;
* **drain rounds** and **convergence time** — how long after the last
  edit until every writer is quiescent on the same document
  (wall-clock over the socket, simulated clock deltas in-process);
* the zero-leak tap: a lowercase sentinel typed by writer 0 must never
  appear in any exchanged request/response body (Base32 ciphertext is
  uppercase-only, so a single lowercase leak is loud).

Cells run with the merge path on (``merge=True``, gdocs only) or off —
the off cells are the conflict/resync baseline every headline ratio is
stated against.  Whole-file backends (bespin) have no delta language to
merge; their cells measure the same workload riding full-document
re-uploads, with the repo-wide settle-save rule standing in for a
drain-to-noop (a whole-file save is never a noop).

Both transports run: ``inprocess`` shares one simulated clock across
the writers; ``socket`` drives real pooled TCP frames against a
:class:`repro.net.server.ReproServer` hosted with
``merge_concurrent`` matching the cell.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.crypto.random import DeterministicRandomSource
from repro.extension.session import PrivateEditingSession
from repro.net.faults import FaultPlan, updates_only
from repro.net.latency import SharedLink, SimClock, WAN_2011
from repro.net.policy import RetryPolicy
from repro.services import registry

__all__ = ["CollabCell", "run_collab", "SEED", "SENTINEL"]

SEED = 20110613  # same fixed seed as every other bench in this repo

#: lowercase canary typed by writer 0 — Base32 ciphertext is uppercase,
#: so any lowercase appearance in exchanged bytes is a leak
SENTINEL = "collabsentinel kilimanjaro"

DOC_ID = "shared-collab-doc"
PASSWORD = "collab-password"


@dataclass
class CollabCell:
    """One measured cell of the collaboration matrix."""

    service: str
    transport: str
    merge: bool
    writers: int
    rounds: int
    fault_rate: float
    saves: int               # non-noop save attempts (edit + drain)
    conflicts: int
    merges: int              # server-side OT merges performed
    save_failures: int
    conflict_rate: float     # conflicts / saves
    drain_rounds: int
    converged: bool
    convergence_s: float     # drain duration (wall or simulated)
    latency_source: str      # "wall" or "simulated"
    leak_clean: bool
    counters: dict[str, float] = field(default_factory=dict)

    def row(self) -> dict:
        """The sidecar/JSON shape of this cell."""
        return {
            "service": self.service,
            "transport": self.transport,
            "merge": self.merge,
            "writers": self.writers,
            "rounds": self.rounds,
            "fault_rate": self.fault_rate,
            "saves": self.saves,
            "conflicts": self.conflicts,
            "merges": self.merges,
            "save_failures": self.save_failures,
            "conflict_rate": self.conflict_rate,
            "drain_rounds": self.drain_rounds,
            "converged": self.converged,
            "convergence_s": self.convergence_s,
            "latency_source": self.latency_source,
            "leak_clean": self.leak_clean,
            "counters": self.counters,
        }


class _Writer:
    """One collaborating session plus its edit RNG and tallies."""

    def __init__(self, index: int, service: str, scheme: str,
                 fault_rate: float, seed: int, server=None,
                 transport=None, clock=None, latency=None):
        import random

        self.index = index
        self.plan = (
            FaultPlan.uniform(fault_rate, seed=seed + index,
                              match=updates_only)
            if fault_rate > 0 else None
        )
        self.rng = random.Random(seed ^ (index * 2654435761))
        self.session = PrivateEditingSession(
            DOC_ID, PASSWORD, scheme=scheme, server=server,
            rng=DeterministicRandomSource((seed << 4) + index + 1),
            faults=self.plan, retry_policy=RetryPolicy(seed=seed + index),
            verify_acks=True, service=service, transport=transport,
            latency=latency, clock=clock, max_log=16,
        )
        self.saves = 0
        self.conflicts = 0
        self.save_failures = 0

    def _track(self, outcome) -> None:
        if outcome.kind == "noop":
            return
        self.saves += 1
        if outcome.conflict:
            self.conflicts += 1
        if not outcome.ok:
            self.save_failures += 1

    def save(self):
        outcome = self.session.save()
        self._track(outcome)
        return outcome

    def edit_and_save(self) -> None:
        """One small edit at a writer-local position, then a save."""
        session, rng = self.session, self.rng
        length = len(session.text)
        pos = rng.randrange(max(1, length))
        session.type_text(pos, f"w{self.index}x" * rng.randint(1, 3))
        if length > 40 and rng.random() < 0.25:
            cut = rng.randint(1, 3)
            session.delete_text(rng.randrange(length - cut), cut)
        self.save()

    def quiesce(self) -> None:
        if self.plan is not None:
            self.plan.quiesce()

    def leak_blobs(self) -> list[str]:
        blobs = []
        for exchange in self.session.channel.exchange_log:
            blobs.append(exchange.request.body)
            blobs.append(exchange.response.body)
        if self.plan is not None:
            for request in self.plan.observed:
                blobs.append(request.url)
                blobs.append(request.body)
        return blobs


def _drain(writers: list[_Writer], revisioned: bool) -> int:
    """Round-robin saves until every writer's save is a clean noop.

    Returns the number of rounds taken.  Conflict-mode drains land at
    most one writer per round, so the budget grows linearly with the
    writer count.  Whole-file backends never answer noop — for them
    one settle round (the repo-wide rule) re-asserts each writer's
    text and the *last* writer's save wins (LWW), which the callers
    then reconcile by re-opening.
    """
    if not revisioned:
        for writer in writers:
            writer.save()
        return 1
    budget = 4 + 2 * len(writers)
    for landed in range(1, budget + 1):
        outcomes = [w.save() for w in writers]
        if all(o.ok and o.kind == "noop" for o in outcomes):
            return landed
    return budget


def run_collab(writers: int = 8, rounds: int = 3, *,
               service: str = "gdocs", merge: bool = True,
               transport: str = "inprocess", scheme: str = "recb",
               fault_rate: float = 0.0, seed: int = SEED,
               address: tuple[str, int] | None = None,
               service_time: float = 0.0) -> CollabCell:
    """One collaboration cell: ``writers`` sessions on one document.

    ``merge`` selects the server-side OT merge path (rejected with
    ``ValueError`` by the registry for backends that cannot express
    it); ``merge=False`` on gdocs is the conflict/resync baseline.
    """
    if transport not in ("socket", "inprocess"):
        raise ValueError(f"unknown transport {transport!r}")
    if transport == "socket":
        return _run_socket(writers, rounds, service, merge, scheme,
                           fault_rate, seed, address, service_time)
    return _run_inprocess(writers, rounds, service, merge, scheme,
                          fault_rate, seed)


def _workload(crew: list[_Writer], rounds: int,
              now) -> tuple[int, float, bool]:
    """The shared cell body: seed, edit rounds, drain, converge-check.

    ``now`` is a zero-arg callable for the cell's notion of time.
    Returns (drain_rounds, convergence_s, converged).
    """
    first = crew[0]
    first.session.open()
    first.session.type_text(0, SENTINEL + " the quick brown fox. ")
    first.save()
    for writer in crew[1:]:
        writer.session.open()
        writer.save()  # session-opening save (deduped on gdocs)

    for _ in range(rounds):
        for writer in crew:
            writer.edit_and_save()

    for writer in crew:
        writer.quiesce()
    revisioned = registry.backend_for(
        crew[0].session.service).capabilities.revisioned
    t0 = now()
    drain_rounds = _drain(crew, revisioned)

    # the convergence judge: every editor re-opens to the same text.
    # The re-open is inside the timed window — convergence means every
    # writer is *looking at* the merged document, not just quiescent.
    texts = [w.session.open() for w in crew]
    convergence_s = now() - t0
    converged = all(t == texts[0] for t in texts[1:])
    return drain_rounds, convergence_s, converged


def _finish(crew: list[_Writer], service: str, scheme: str,
            converged: bool) -> tuple[bool, bool]:
    """Oracle + leak checks shared by both transports."""
    # plaintext oracle: the stored bytes decrypt to what writers see
    stored = crew[0].session.server_view()
    recovered = registry.decrypt_view(service, stored, PASSWORD, scheme)
    converged = converged and recovered == crew[0].session.text
    leak_clean = not any(
        SENTINEL.split()[0] in blob
        for writer in crew for blob in writer.leak_blobs()
    )
    return converged, leak_clean


def _counters(cap) -> dict[str, float]:
    """The merge-path counters each cell reports (read after the
    capture context has closed — values finalize on exit)."""
    return {
        name: cap[name] for name in (
            "services.ot.transforms", "services.ot.composes",
            "services.ot.merges", "services.ot.rejects",
            "extension.merge_follows", "extension.merge_downgrades",
            "client.resyncs", "client.retries.attempts",
        )
    }


def _cell(service, transport, merge, writers, rounds, fault_rate, crew,
          drain_rounds, convergence_s, converged, leak_clean, counters,
          latency_source) -> CollabCell:
    saves = sum(w.saves for w in crew)
    conflicts = sum(w.conflicts for w in crew)
    return CollabCell(
        service=service, transport=transport, merge=merge,
        writers=writers, rounds=rounds, fault_rate=fault_rate,
        saves=saves, conflicts=conflicts,
        merges=int(counters.get("services.ot.merges", 0)),
        save_failures=sum(w.save_failures for w in crew),
        conflict_rate=round(conflicts / saves, 4) if saves else 0.0,
        drain_rounds=drain_rounds, converged=converged,
        convergence_s=round(convergence_s, 4),
        latency_source=latency_source, leak_clean=leak_clean,
        counters=counters,
    )


def _run_inprocess(writers, rounds, service, merge, scheme, fault_rate,
                   seed) -> CollabCell:
    from repro.obs import capture

    clock = SimClock()
    link = SharedLink(bytes_per_second=4_000_000.0)
    server = registry.make_server(service, merge_concurrent=merge)

    def writer(i: int) -> _Writer:
        latency = WAN_2011(seed=seed + i)
        latency.link = link
        return _Writer(i, service, scheme, fault_rate, seed,
                       server=server, clock=clock, latency=latency)

    with capture() as cap:
        crew = [writer(i) for i in range(writers)]
        drain_rounds, convergence_s, converged = _workload(
            crew, rounds, clock.now)
        converged, leak_clean = _finish(crew, service, scheme, converged)
    return _cell(service, "inprocess", merge, writers, rounds,
                 fault_rate, crew, drain_rounds, convergence_s,
                 converged, leak_clean, _counters(cap), "simulated")


def _run_socket(writers, rounds, service, merge, scheme, fault_rate,
                seed, address, service_time) -> CollabCell:
    from repro.net.pool import ConnectionPool
    from repro.net.server import ServerThread
    from repro.net.transport import AsyncioSocketTransport
    from repro.obs import capture

    hosted = None
    if address is None:
        hosted = ServerThread(shards=4, service_time=service_time,
                              merge_concurrent=merge)
        address = hosted.start()
    host, port = address
    pool = ConnectionPool(host, port, size=4, window=64, timeout=30.0)
    try:
        with capture() as cap:
            crew = [
                _Writer(i, service, scheme, fault_rate, seed,
                        transport=AsyncioSocketTransport(
                            host, port, service=service, pool=pool))
                for i in range(writers)
            ]
            drain_rounds, convergence_s, converged = _workload(
                crew, rounds, time.perf_counter)
            converged, leak_clean = _finish(crew, service, scheme,
                                            converged)
    finally:
        pool.close()
        if hosted is not None:
            hosted.stop()
    return _cell(service, "socket", merge, writers, rounds, fault_rate,
                 crew, drain_rounds, convergence_s, converged,
                 leak_clean, _counters(cap), "wall")
