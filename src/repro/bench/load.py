"""The load generator: N concurrent private-editing sessions, measured.

``benchmarks/bench_load.py`` (and ``repro loadgen``) drive this module.
One *cell* = :func:`run_load`: construct ``sessions`` independent
:class:`~repro.extension.session.PrivateEditingSession`\\ s against one
backend, open them all, run ``rounds`` edit+save rounds per session
with fault injection on, then quiesce and sample convergence.  The cell
reports aggregate **edits/s** (edit+save rounds completed per second)
and **p50/p99 save latency** — the two numbers the scaling story is
told in.

Two transports, two latency sources:

* ``transport="socket"`` — every session speaks pooled, pipelined TCP
  frames (:class:`repro.net.transport.AsyncioSocketTransport`) to a
  :class:`repro.net.server.ReproServer`, self-hosted on a background
  thread unless ``address`` points at a running one.  Latencies are
  **wall-clock**.  A pool of worker threads drives the sessions (each
  worker owns a fixed partition, so one session is never driven from
  two threads); the server's non-blocking ``service_time`` is where
  concurrency pays — a thousand sessions overlap their waits, one
  session cannot.  This is the cell the ≥10x scaling criterion is
  stated against.
* ``transport="inprocess"`` — the classic simulated stack, every
  session sharing one :class:`~repro.net.latency.SimClock` and one
  :class:`~repro.net.latency.SharedLink` (so 10k sessions do *not*
  each get a private 4 MB/s — see ``net/latency.py``).  Sessions are
  driven round-robin on one thread (simulated waits cost no wall time,
  so threads would add nothing but races).  Latencies are **simulated**
  clock deltas; the cell exists to keep simulated and socket numbers
  on one comparable chart.

Faults ride on top of either transport unchanged — the client-side
:class:`~repro.net.faults.FaultPlan` wraps delivery below the mediator,
which is the point of the transport seam.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.extension.session import PrivateEditingSession
from repro.net.faults import FaultPlan, updates_only
from repro.net.latency import SharedLink, SimClock, WAN_2011
from repro.net.policy import RetryPolicy
from repro.services import registry

__all__ = ["LoadCell", "run_load", "percentile", "SEED"]

SEED = 20110613  # same fixed seed as every other bench in this repo

#: how many sessions get a full convergence check after quiesce
SAMPLE = 8


def percentile(values: list[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``values`` by nearest-rank."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class LoadCell:
    """One measured cell of the load matrix."""

    service: str
    transport: str
    sessions: int
    rounds: int
    fault_rate: float
    edits_per_sec: float
    save_p50_ms: float
    save_p99_ms: float
    latency_source: str  # "wall" or "simulated"
    elapsed_s: float
    open_s: float
    saves: int
    save_failures: int
    converged_sample: bool
    counters: dict[str, float] = field(default_factory=dict)

    def row(self) -> dict:
        """The sidecar/JSON shape of this cell."""
        return {
            "service": self.service,
            "transport": self.transport,
            "sessions": self.sessions,
            "rounds": self.rounds,
            "fault_rate": self.fault_rate,
            "edits_per_sec": self.edits_per_sec,
            "save_p50_ms": self.save_p50_ms,
            "save_p99_ms": self.save_p99_ms,
            "latency_source": self.latency_source,
            "elapsed_s": self.elapsed_s,
            "open_s": self.open_s,
            "saves": self.saves,
            "save_failures": self.save_failures,
            "converged_sample": self.converged_sample,
            "counters": self.counters,
        }


class _SessionDriver:
    """One session plus its per-session fault plan and edit RNG."""

    def __init__(self, index: int, service: str, scheme: str,
                 fault_rate: float, seed: int, transport=None,
                 latency=None, clock=None):
        import random

        self.index = index
        self.service = service
        self.scheme = scheme
        self.plan = (
            FaultPlan.uniform(fault_rate, seed=seed + index,
                              match=updates_only)
            if fault_rate > 0 else None
        )
        self.rng = random.Random(seed ^ (index * 2654435761))
        self.session = PrivateEditingSession(
            f"load-{index}", f"pw-{index}", scheme=scheme,
            faults=self.plan, retry_policy=RetryPolicy(seed=seed + index),
            verify_acks=True, service=service, transport=transport,
            latency=latency, clock=clock, max_log=8,
        )
        self.save_failures = 0
        self.saves = 0

    def open(self) -> None:
        self.session.open()
        if not self.session.text:
            self.session.type_text(0, f"doc {self.index}: ")

    def round(self, latencies: list[float], simulated: bool) -> None:
        """One edit+save round; appends the save latency (seconds)."""
        session, rng = self.session, self.rng
        length = len(session.text)
        pos = rng.randrange(max(1, length))
        session.type_text(pos, "x" * rng.randint(1, 12))
        if length > 16 and rng.random() < 0.3:
            cut = rng.randint(1, 4)
            session.delete_text(rng.randrange(length - cut), cut)
        if simulated:
            before = session.now
            outcome = session.save()
            latencies.append(session.now - before)
        else:
            before = time.perf_counter()
            outcome = session.save()
            latencies.append(time.perf_counter() - before)
        self.saves += 1
        if not outcome.ok:
            self.save_failures += 1

    def settle(self) -> None:
        """Quiesce the fault plan and land the recovery save(s) — the
        repo-wide settle rule the chaos matrix and fuzzer share."""
        if self.plan is None:
            return
        self.plan.quiesce()
        outcome = self.session.save()
        for _ in range(4):
            if outcome.ok and not outcome.conflict \
                    and not outcome.resynced:
                break
            outcome = self.session.save()
        if not registry.backend_for(self.service).capabilities.revisioned:
            # whole-file stores: one more save overwrites any
            # reorder-held stale flush
            self.session.save()

    def converged(self) -> bool:
        stored = self.session.server_view()
        recovered = registry.decrypt_view(
            self.service, stored, f"pw-{self.index}", self.scheme
        )
        return recovered == self.session.text


def _drive_partition(drivers: list[_SessionDriver], rounds: int,
                     latencies: list[float], errors: list[BaseException],
                     ) -> None:
    """Worker body: interleave rounds across this worker's sessions."""
    local: list[float] = []
    try:
        for _ in range(rounds):
            for driver in drivers:
                driver.round(local, simulated=False)
    except BaseException as exc:  # surfaced by the main thread
        errors.append(exc)
    finally:
        latencies.extend(local)  # list.extend is atomic under the GIL


def run_load(sessions: int = 100, rounds: int = 2, *,
             service: str = "gdocs", transport: str = "socket",
             address: tuple[str, int] | None = None,
             workers: int = 64, fault_rate: float = 0.05,
             seed: int = SEED, scheme: str = "recb",
             service_time: float = 0.020, shards: int = 8,
             pool_size: int = 8, window: int = 64,
             sample: int = SAMPLE) -> LoadCell:
    """One load cell: ``sessions`` concurrent sessions, ``rounds``
    edit+save rounds each, faults at ``fault_rate``.

    Socket mode self-hosts a server (``shards`` document shards,
    ``service_time`` seconds of simulated per-request handling) unless
    ``address`` names a running one, and drives sessions from
    ``workers`` threads over one shared connection pool.  In-process
    mode runs single-threaded on a shared simulated clock and shared
    4 MB/s link.
    """
    if transport not in ("socket", "inprocess"):
        raise ValueError(f"unknown transport {transport!r}")
    if transport == "socket":
        return _run_socket(sessions, rounds, service, address, workers,
                           fault_rate, seed, scheme, service_time, shards,
                           pool_size, window, sample)
    return _run_inprocess(sessions, rounds, service, fault_rate, seed,
                          scheme, sample)


def _run_socket(sessions, rounds, service, address, workers, fault_rate,
                seed, scheme, service_time, shards, pool_size, window,
                sample) -> LoadCell:
    from repro.net.pool import ConnectionPool
    from repro.net.server import ServerThread
    from repro.net.transport import AsyncioSocketTransport
    from repro.obs import capture

    hosted = None
    if address is None:
        hosted = ServerThread(shards=shards, service_time=service_time)
        address = hosted.start()
    host, port = address
    pool = ConnectionPool(host, port, size=pool_size, window=window,
                          timeout=30.0)
    nworkers = max(1, min(workers, sessions))
    try:
        with capture() as cap:
            t0 = time.perf_counter()
            drivers = [
                _SessionDriver(
                    i, service, scheme, fault_rate, seed,
                    transport=AsyncioSocketTransport(
                        host, port, service=service, pool=pool
                    ),
                )
                for i in range(sessions)
            ]
            # opens ride the same worker partitions as the rounds, so
            # ten thousand handshakes overlap their server time too
            parts = [drivers[w::nworkers] for w in range(nworkers)]
            errors: list[BaseException] = []
            _fan_out(parts, errors,
                     lambda part: [d.open() for d in part])
            open_s = time.perf_counter() - t0
            if errors:
                raise errors[0]

            latencies: list[float] = []
            t1 = time.perf_counter()
            threads = [
                threading.Thread(
                    target=_drive_partition,
                    args=(part, rounds, latencies, errors),
                    name=f"loadgen-{w}",
                )
                for w, part in enumerate(parts)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - t1
            if errors:
                raise errors[0]

            _fan_out(parts, errors,
                     lambda part: [d.settle() for d in part])
            if errors:
                raise errors[0]
        step = max(1, sessions // max(1, sample))
        sampled = drivers[::step][:sample]
        converged = all(d.converged() for d in sampled)
        counters = {
            name: cap[name] for name in (
                "client.pool.connects", "client.pool.pipelined",
                "client.pool.window_waits", "net.transport.remote_requests",
                "server.shard.dispatches", "client.retries.attempts",
                "net.faults.injected",
            )
        }
    finally:
        pool.close()
        if hosted is not None:
            hosted.stop()
    total_rounds = sessions * rounds
    return LoadCell(
        service=service, transport="socket", sessions=sessions,
        rounds=rounds, fault_rate=fault_rate,
        edits_per_sec=round(total_rounds / elapsed, 1),
        save_p50_ms=round(percentile(latencies, 0.50) * 1000, 2),
        save_p99_ms=round(percentile(latencies, 0.99) * 1000, 2),
        latency_source="wall", elapsed_s=round(elapsed, 3),
        open_s=round(open_s, 3),
        saves=sum(d.saves for d in drivers),
        save_failures=sum(d.save_failures for d in drivers),
        converged_sample=converged, counters=counters,
    )


def _fan_out(parts, errors, fn) -> None:
    """Run ``fn(part)`` for every partition on its own thread."""
    def _body(part):
        try:
            fn(part)
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=_body, args=(p,)) for p in parts]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def _run_inprocess(sessions, rounds, service, fault_rate, seed, scheme,
                   sample) -> LoadCell:
    clock = SimClock()
    link = SharedLink(bytes_per_second=4_000_000.0)
    t0 = time.perf_counter()
    drivers = []
    for i in range(sessions):
        latency = WAN_2011(seed=seed + i)
        latency.link = link
        drivers.append(_SessionDriver(
            i, service, scheme, fault_rate, seed,
            latency=latency, clock=clock,
        ))
    for d in drivers:
        d.open()
    open_s = time.perf_counter() - t0

    latencies: list[float] = []
    t1 = time.perf_counter()
    sim_start = clock.now()
    for _ in range(rounds):
        for d in drivers:
            d.round(latencies, simulated=True)
    elapsed_wall = time.perf_counter() - t1
    sim_elapsed = max(clock.now() - sim_start, 1e-9)
    for d in drivers:
        d.settle()
    step = max(1, sessions // max(1, sample))
    sampled = drivers[::step][:sample]
    converged = all(d.converged() for d in sampled)
    total_rounds = sessions * rounds
    return LoadCell(
        service=service, transport="inprocess", sessions=sessions,
        rounds=rounds, fault_rate=fault_rate,
        # one shared clock = sequential semantics: sim throughput is the
        # honest number (wall time here measures only crypto compute)
        edits_per_sec=round(total_rounds / sim_elapsed, 1),
        save_p50_ms=round(percentile(latencies, 0.50) * 1000, 2),
        save_p99_ms=round(percentile(latencies, 0.99) * 1000, 2),
        latency_source="simulated", elapsed_s=round(elapsed_wall, 3),
        open_s=round(open_s, 3),
        saves=sum(d.saves for d in drivers),
        save_failures=sum(d.save_failures for d in drivers),
        converged_sample=converged,
    )
