"""Benchmark harness utilities: timing accumulation and paper-style
table rendering."""

from repro.bench.reporting import banner, pct, render_table
from repro.bench.timing import Sample, Stopwatch, ms_per_char

__all__ = ["Stopwatch", "Sample", "ms_per_char", "render_table", "pct",
           "banner"]
