"""Benchmark harness utilities: timing accumulation, paper-style table
rendering, and the metrics column/sidecar glue to :mod:`repro.obs`."""

from repro.bench.reporting import banner, metrics_cell, pct, render_table
from repro.bench.timing import Sample, Stopwatch, ms_per_char

__all__ = ["Stopwatch", "Sample", "ms_per_char", "render_table", "pct",
           "banner", "metrics_cell"]
