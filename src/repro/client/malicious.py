"""Malicious clients for the SVI-B threat model.

A malicious client is provided by the adversary itself: it renders the
document honestly (the user must notice nothing) but shapes its traffic
to smuggle information past the encrypting mediator.  Each client here
wraps one covert channel from :mod:`repro.security.covert`; the
integration tests and ablation C drive them against mediators with and
without countermeasures.
"""

from __future__ import annotations

from repro.client.gdocs_client import GDocsClient, SaveOutcome
from repro.core.delta import Delta
from repro.errors import ProtocolError, SessionError
from repro.net.channel import Channel
from repro.security.covert import DeltaShapeChannel, LengthChannel
from repro.services.gdocs import protocol

__all__ = ["ShapeLeakClient", "LengthLeakClient"]


class ShapeLeakClient(GDocsClient):
    """Leaks symbols through delta shape (the Ord(q)-style channel).

    Queue symbols with :meth:`queue_symbol`; each subsequent delta save
    carries one symbol by churning a prefix of the document.
    """

    def __init__(self, channel: Channel, doc_id: str, block_chars: int = 8):
        super().__init__(channel, doc_id)
        self._channel_enc = DeltaShapeChannel(block_chars)
        self._pending_symbols: list[int] = []

    def queue_symbol(self, symbol: int) -> None:
        """Queue one covert symbol for the next delta save."""
        self._pending_symbols.append(symbol)

    def save(self):
        """Save, smuggling a queued symbol via delta shape if any."""
        if not self._pending_symbols or not self._did_full_save:
            return super().save()
        symbol = self._pending_symbols.pop(0)
        synced = self.editor.synced_text
        real_edit = self.editor.pending_delta()
        shaped = self._channel_enc.encode(symbol, synced, real_edit)
        return self._send_shaped_delta(shaped)

    def _send_shaped_delta(self, delta: Delta):
        if self._sid is None:
            raise SessionError("save outside an edit session")
        request = protocol.delta_save_request(
            self.doc_id, self._sid, self._rev, delta.serialize()
        )
        response = self._channel.send(request)
        if not response.ok:
            raise ProtocolError(f"save failed: {response.body}")
        ack = protocol.Ack.from_response(response)
        if not ack.conflict:
            self._rev = ack.rev
            self.editor.mark_synced()
        return SaveOutcome(kind="delta", ack=ack, conflict=ack.conflict)


class LengthLeakClient(GDocsClient):
    """Leaks bits through document length (invisible trailing spaces)."""

    def __init__(self, channel: Channel, doc_id: str):
        super().__init__(channel, doc_id)
        self._channel_enc = LengthChannel()
        self._pending_bits: list[int] = []

    def queue_bit(self, bit: int) -> None:
        """Queue one covert bit for the next save."""
        self._pending_bits.append(bit)

    def save(self):
        """Save, modulating invisible padding to carry a queued bit."""
        if self._pending_bits:
            bit = self._pending_bits.pop(0)
            modified = self._channel_enc.encode(bit, self.editor.text)
            self.editor.set_text(modified)
        return super().save()
