"""Workspace: many private documents, one tenant, one shared transport.

Every layer below already scales past a single document — the PR 7
server is multi-tenant and document-sharded — and this module is the
client side of that story.  A :class:`Workspace` owns the tenant's key
material and fans it out:

* **per-document passwords** derived from one tenant secret, so each
  :class:`~repro.extension.session.PrivateEditingSession` gets its own
  document key while the user remembers one secret;
* **one shared server/transport** for every session it opens (the
  sessions multiplex over the same connection pool in socket mode);
* **an encrypted search index** — a shared
  :class:`~repro.extension.catalog.WorkspaceIndexer` threaded into
  every session's extension, which emits encrypted index delta records
  as a side effect of each save's IncE transformation; :meth:`search`
  sends only the trapdoor and decrypts the postings locally;
* **a trust store over the audit trail** — the newest ``(rev, link)``
  of :mod:`repro.core.auditchain` per document.  Saves verify the new
  link incrementally; :meth:`verify_history` re-fetches and re-verifies
  the whole chain against the stored document and the trust anchor,
  detecting rollback and history forks (the attacks
  ``repro.security.ActiveServerAdversary`` mounts).

Layering: this is client code.  It never builds a server — callers
construct one through ``repro.services.registry`` (or point a
:class:`~repro.net.transport.AsyncioSocketTransport` at a hosted one)
and hand it in; ``tools/layering_check.py`` keeps it that way.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.core import auditchain
from repro.crypto.random import DeterministicRandomSource
from repro.extension.catalog import WorkspaceIndexer
from repro.extension.session import PrivateEditingSession
from repro.net.channel import Channel
from repro.net.latency import SimClock
from repro.obs import counter
from repro.services.catalog import (
    catalog_chain_request,
    catalog_list_request,
    catalog_lookup_request,
)
from repro.services.gdocs import protocol

__all__ = ["Workspace"]

_SESSIONS = counter("client.workspace.sessions")
_SEARCHES = counter("client.workspace.searches")
_ALERTS = counter("client.workspace.audit_alerts")
_VERIFIES = counter("client.workspace.history_verifies")


class Workspace:
    """A tenant's view over many encrypted documents.

    ``secret`` is the one thing the user remembers; everything else —
    document passwords, search trapdoor keys, posting blob keys — is
    derived from it.  Exactly one of ``server`` (an in-process server
    callable, typically catalog-wrapped via
    ``registry.make_server(service, catalog=True)``) or ``transport``
    (a :class:`~repro.net.transport.Transport` to a hosted server,
    shared by every session) must be provided.

    ``rng_seed`` pins every session's nonce stream for reproducible
    harness runs; leave it None for secure per-session randomness.
    """

    def __init__(self, secret: str, *, server=None, transport=None,
                 service: str = "gdocs", scheme: str = "recb",
                 block_chars: int = 8, index_factory=None,
                 rng_seed: int | None = None, clock=None, latency=None):
        if (server is None) == (transport is None):
            raise ValueError(
                "Workspace needs exactly one of server= or transport= "
                "(clients never build servers; see docs/architecture.md)"
            )
        self._secret = secret
        self._doc_key = hashlib.sha256(
            b"workspace-docs|" + secret.encode("utf-8")).digest()
        self._server = server
        self._transport = transport
        self._service = service
        self._scheme = scheme
        self._block_chars = block_chars
        self._index_factory = index_factory
        self._rng_seed = rng_seed
        self.clock = clock if clock is not None else SimClock()
        self.indexer = WorkspaceIndexer(secret)
        self._sessions: dict[str, PrivateEditingSession] = {}
        #: doc_id -> (rev, link): the audit-chain head this client has
        #: witnessed and verified — the rollback-detection anchor
        self._trust: dict[str, tuple[int, str]] = {}
        #: every integrity alert ever raised, ``(doc_id, message)``
        self.alerts: list[tuple[str, str]] = []
        # catalog traffic (list/lookup/chain) is opaque to the document
        # mediator — it rides its own unmediated channel to the same
        # server/transport, carrying only trapdoors and encrypted blobs
        self.catalog_channel = Channel(
            transport if transport is not None else server,
            latency=latency, clock=self.clock,
        )

    # -- key derivation --------------------------------------------------

    def password_for(self, doc_id: str) -> str:
        """The per-document password derived from the tenant secret."""
        return hmac.new(self._doc_key, doc_id.encode("utf-8"),
                        hashlib.sha256).hexdigest()

    def _session_rng(self, doc_id: str):
        if self._rng_seed is None:
            return None
        import zlib
        return DeterministicRandomSource(
            (self._rng_seed << 8) ^ zlib.crc32(doc_id.encode("utf-8")))

    # -- session lifecycle -----------------------------------------------

    @property
    def open_docs(self) -> list[str]:
        return sorted(self._sessions)

    def session(self, doc_id: str) -> PrivateEditingSession:
        """The open session for ``doc_id`` (KeyError when not open)."""
        return self._sessions[doc_id]

    def open(self, doc_id: str) -> str:
        """Open (or create) one document; returns its plaintext.

        Opening an existing document adopts its text into the index
        shadow without re-emitting records, then verifies the full
        audit chain (rollback detection happens *before* the user
        resumes editing stale content).
        """
        session = self._sessions.get(doc_id)
        if session is not None:
            return session.text
        session = PrivateEditingSession(
            doc_id,
            self.password_for(doc_id),
            server=self._server,
            transport=self._transport,
            service=self._service,
            scheme=self._scheme,
            block_chars=self._block_chars,
            index_factory=self._index_factory,
            rng=self._session_rng(doc_id),
            verify_acks=True,
            clock=self.clock,
            indexer=self.indexer,
            audit=True,
        )
        text = session.open()
        self._sessions[doc_id] = session
        _SESSIONS.inc()
        self.indexer.adopt(doc_id, text)
        self.verify_history(doc_id)
        return text

    def close(self, doc_id: str) -> None:
        """Flush, audit-check, and end one document's session."""
        session = self._sessions.pop(doc_id, None)
        if session is None:
            return
        session.close()
        self._adopt_audit(doc_id, session)
        self.indexer.forget(doc_id)

    def close_all(self) -> None:
        """Close every open session (flush, audit-check, forget)."""
        for doc_id in list(self._sessions):
            self.close(doc_id)

    # -- editing ---------------------------------------------------------

    def text(self, doc_id: str) -> str:
        """What the user sees in ``doc_id``'s editor."""
        return self._sessions[doc_id].text

    def type_text(self, doc_id: str, pos: int, text: str) -> None:
        """User action: insert ``text`` at ``pos`` in ``doc_id``."""
        self._sessions[doc_id].type_text(pos, text)

    def delete_text(self, doc_id: str, pos: int, count: int) -> None:
        """User action: delete ``count`` chars at ``pos`` in ``doc_id``."""
        self._sessions[doc_id].delete_text(pos, count)

    def save(self, doc_id: str):
        """Save one document; on success fold the acknowledged audit
        link into the trust store (incremental chain verification)."""
        session = self._sessions[doc_id]
        outcome = session.save()
        if outcome.ok:
            self._adopt_audit(doc_id, session)
        return outcome

    def save_all(self) -> dict[str, object]:
        """Save every open document; outcomes keyed by doc id."""
        return {doc_id: self.save(doc_id) for doc_id in sorted(self._sessions)}

    # -- the catalog -----------------------------------------------------

    def list_docs(self) -> list[str]:
        """Every document id the tenant's catalog has seen."""
        response = self.catalog_channel.send(catalog_list_request())
        if not response.ok or not response.body:
            return []
        return sorted(response.body.split(","))

    def search(self, word: str) -> list[str]:
        """The documents whose current saved text contains ``word``.

        Sends only ``HMAC(k_search, word)``; the posting blobs decrypt
        locally (blobs that fail authentication are dropped, so a
        tampering catalog can suppress results but not inject ids)."""
        _SEARCHES.inc()
        trapdoor = self.indexer.trapdoor(word)
        response = self.catalog_channel.send(
            catalog_lookup_request(trapdoor))
        if not response.ok:
            return []
        found = set()
        for blob in response.body.split(","):
            if not blob:
                continue
            doc_id = self.indexer.decrypt_blob(trapdoor, blob)
            if doc_id is not None:
                found.add(doc_id)
        return sorted(found)

    # -- history integrity -----------------------------------------------

    def _alert(self, doc_id: str, message: str,
               alerts: list[str]) -> None:
        alerts.append(message)
        self.alerts.append((doc_id, message))
        _ALERTS.inc()

    def _adopt_audit(self, doc_id: str,
                     session: PrivateEditingSession) -> None:
        """Incremental chain verification on one acknowledged save."""
        extension = session.extension
        entry = getattr(extension, "audit_trail", {}).get(doc_id)
        if entry is None:
            return
        rev, content_hash, link = entry
        trusted = self._trust.get(doc_id)
        alerts: list[str] = []
        if trusted is not None:
            trusted_rev, trusted_link = trusted
            if rev == trusted_rev:
                if link != trusted_link:
                    self._alert(doc_id, (
                        f"audit link changed at rev {rev} without a new "
                        f"revision (history rewritten)"), alerts)
            elif rev == trusted_rev + 1:
                expect = auditchain.link_hash(trusted_link, rev,
                                              content_hash)
                if link != expect:
                    self._alert(doc_id, (
                        f"audit link at rev {rev} does not extend the "
                        f"trusted chain (forked history)"), alerts)
            elif rev < trusted_rev:
                self._alert(doc_id, (
                    f"acknowledged rev {rev} behind trusted rev "
                    f"{trusted_rev} (rollback)"), alerts)
            else:
                # a revision gap (e.g. recovery full-saves after
                # conflicts): fall back to verifying the whole chain
                self.verify_history(doc_id)
                return
        if not alerts:
            self._trust[doc_id] = (rev, link)

    def verify_history(self, doc_id: str) -> list[str]:
        """Fetch and verify the full audit chain for ``doc_id``.

        Returns the alerts raised ([] when the history checks out), and
        adopts the verified head as the new trust anchor.  Three layers
        of defence:

        * the chain must *self-verify* (every link recomputes);
        * its head must match the stored document (revision and
          ciphertext hash) — catches a plain rollback, where the store
          rewinds but the audited chain does not;
        * it must agree with the trust store at the remembered revision
          — catches a *forged* chain, recomputed wholesale over
          rolled-back content, which self-verifies but cannot reproduce
          the link this client already witnessed.
        """
        _VERIFIES.inc()
        session = self._sessions[doc_id]
        alerts: list[str] = []
        response = self.catalog_channel.send(catalog_chain_request(doc_id))
        if not response.ok:
            self._alert(doc_id, f"audit chain fetch failed "
                                f"(http {response.status})", alerts)
            return alerts
        try:
            entries = auditchain.decode_entries(response.body)
        except ValueError:
            self._alert(doc_id, "audit chain unparseable", alerts)
            return alerts
        trusted = self._trust.get(doc_id)
        if not entries:
            if trusted is not None:
                self._alert(doc_id, "audit chain vanished after this "
                                    "client witnessed links", alerts)
            return alerts
        for problem in auditchain.verify_entries(entries):
            self._alert(doc_id, f"audit chain corrupt: {problem}", alerts)
        head = entries[-1]
        revision = session.client.revision
        stored_hash = protocol.content_hash(session.server_view())
        if head.rev != revision:
            self._alert(doc_id, (
                f"audit head rev {head.rev} != document rev {revision} "
                f"(rollback or unaudited writes)"), alerts)
        elif head.ciphertext_hash != stored_hash:
            self._alert(doc_id, (
                f"stored ciphertext does not match audited head at rev "
                f"{head.rev} (rollback)"), alerts)
        if trusted is not None:
            trusted_rev, trusted_link = trusted
            witnessed = next(
                (e for e in entries if e.rev == trusted_rev), None)
            if witnessed is None:
                self._alert(doc_id, (
                    f"trusted rev {trusted_rev} missing from chain "
                    f"(history rewritten)"), alerts)
            elif witnessed.link != trusted_link:
                self._alert(doc_id, (
                    f"chain disagrees with trusted link at rev "
                    f"{trusted_rev} (forged chain)"), alerts)
        if not alerts:
            self._trust[doc_id] = (head.rev, head.link)
        return alerts
