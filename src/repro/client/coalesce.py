"""Edit coalescing: fold a burst of keystrokes into one delta.

The paper's client cost model is per *save*, not per keystroke — the
real editor accumulates typing and ships one delta per autosave.  Our
client stack mirrors that: the :class:`EditCoalescer` journals each
keystroke-level :class:`~repro.core.delta.Delta` and folds it into a
single running delta with OT composition
(:func:`repro.core.ot.compose`), so one IncE pass (and therefore one
batched cipher call, see ``EncryptedDocument._apply_clusters``)
re-encrypts everything the burst touched instead of paying the
per-delta fixed costs N times.

Flush triggers are explicit, and every burst boundary is counted by
reason so the flush policy is observable:

* ``ops`` / ``bytes`` — a configured cap was reached mid-burst;
* ``save`` — the buffer synced (the burst reached the server);
* ``resync`` — authoritative content was adopted, pending edits
  discarded;
* ``conflict`` — a conflict recovery path resynced the buffer;
* ``drain`` — an external drain (fuzz harness end-of-trace, close).

Composition never changes *what* is saved — the composed delta is
semantically identical to applying the journal in order (property
tested, and the fuzz oracle checks the composed burst wire-for-wire
against the sequential IncE path).  ``sid:seq`` idempotency is
untouched: the resilient client still stamps one key per save, and a
burst is always entirely inside one save.
"""

from __future__ import annotations

from repro.core.delta import Delta
from repro.core.ot import compose
from repro.obs import counter

__all__ = ["EditCoalescer", "FLUSH_REASONS"]

#: burst-boundary causes; each has a ``client.coalesce.flush.<reason>``
#: counter
FLUSH_REASONS = ("ops", "bytes", "save", "resync", "conflict", "drain")

#: non-empty bursts flushed (one coalesced IncE pass each)
_BURSTS = counter("client.coalesce.bursts")
#: keystroke-level deltas folded into bursts
_OPS_FOLDED = counter("client.coalesce.ops_folded")
#: journals abandoned mid-burst (diff fallback takes over)
_INVALIDATED = counter("client.coalesce.invalidated")
_FLUSHED = {
    reason: counter(f"client.coalesce.flush.{reason}")
    for reason in FLUSH_REASONS
}


def _compose_all(deltas: list[Delta]) -> Delta:
    """Fold ``deltas`` (applied left to right) into one delta.

    Pairwise tree reduction: composition is associative, and reducing
    by halves costs O(total ops x log n) where the left-fold a naive
    running compose performs is O(total ops x n) — the difference is
    what keeps :meth:`EditCoalescer.add` O(1) per keystroke with all
    compose cost paid once at the flush boundary.
    """
    if not deltas:
        return Delta(())
    layer = deltas
    while len(layer) > 1:
        folded = [compose(layer[i], layer[i + 1])
                  for i in range(0, len(layer) - 1, 2)]
        if len(layer) % 2:
            folded.append(layer[-1])
        layer = folded
    return layer[0]


class EditCoalescer:
    """Accumulate keystroke deltas; emit one composed delta per burst.

    ``max_ops`` / ``max_bytes`` bound a burst (op count / characters
    touched); hitting a cap either flushes the burst (``overflow=
    "flush"``, the default — :meth:`add` returns the composed delta) or
    invalidates the journal (``overflow="invalidate"`` — the owner
    falls back to diffing, which keeps worst-case compose cost bounded
    for callers whose flush points are save-aligned).

    :meth:`add` is O(1): deltas are journaled as a list and composed
    lazily (tree reduction, memoized) when :meth:`peek` or
    :meth:`flush` needs the burst.
    """

    def __init__(self, max_ops: int | None = None,
                 max_bytes: int | None = None,
                 overflow: str = "flush"):
        if overflow not in ("flush", "invalidate"):
            raise ValueError(
                f"overflow must be flush/invalidate, got {overflow!r}")
        self._max_ops = max_ops
        self._max_bytes = max_bytes
        self._overflow = overflow
        self._journal: list[Delta] = []
        self._composed: Delta | None = None  # memoized tree reduction
        self._ops = 0
        self._bytes = 0
        self._valid = True

    # -- inspection ----------------------------------------------------

    @property
    def valid(self) -> bool:
        """False once the journal stopped tracking (cap overflow in
        ``invalidate`` mode, or an out-of-band text replacement)."""
        return self._valid

    @property
    def pending_ops(self) -> int:
        """Keystroke deltas folded into the current burst."""
        return self._ops

    @property
    def pending_bytes(self) -> int:
        """Characters inserted + deleted by the current burst."""
        return self._bytes

    @property
    def dirty(self) -> bool:
        """Does the current burst change any document?"""
        if not self._journal:
            return False
        composed = self._compose()
        return bool(composed.ops) and not composed.is_identity

    def _compose(self) -> Delta:
        if self._composed is None:
            self._composed = _compose_all(self._journal)
        return self._composed

    def peek(self) -> Delta:
        """The burst composed so far, in canonical form, not flushed."""
        return self._compose().canonical()

    # -- journaling ----------------------------------------------------

    def add(self, delta: Delta) -> Delta | None:
        """Journal one keystroke delta into the burst (O(1)).

        Returns the composed burst when this add tripped a cap in
        ``flush`` overflow mode, else None.
        """
        if not self._valid or not delta.ops:
            return None
        self._journal.append(delta)
        self._composed = None
        self._ops += 1
        self._bytes += delta.chars_inserted + delta.chars_deleted
        _OPS_FOLDED.inc()
        if self._max_ops is not None and self._ops >= self._max_ops:
            return self._overflowed("ops")
        if self._max_bytes is not None and self._bytes >= self._max_bytes:
            return self._overflowed("bytes")
        return None

    def _overflowed(self, reason: str) -> Delta | None:
        if self._overflow == "flush":
            return self.flush(reason)
        self.invalidate()
        return None

    def flush(self, reason: str = "drain") -> Delta | None:
        """End the burst; return its composed delta (None when empty).

        ``reason`` names the trigger (see :data:`FLUSH_REASONS`) and is
        counted under ``client.coalesce.flush.<reason>``.  The journal
        restarts empty and valid.
        """
        try:
            _FLUSHED[reason].inc()
        except KeyError:
            raise ValueError(
                f"unknown flush reason {reason!r}; "
                f"known: {FLUSH_REASONS}") from None
        out = self.peek() if self._ops and self._valid else None
        if out is not None and out.ops:
            _BURSTS.inc()
        else:
            out = None
        self._journal = []
        self._composed = None
        self._ops = 0
        self._bytes = 0
        self._valid = True
        return out

    def invalidate(self) -> None:
        """Stop tracking the current burst (the owner must fall back to
        diffing until the next flush re-arms the journal)."""
        if self._valid:
            _INVALIDATED.inc()
        self._valid = False
        self._journal = []
        self._composed = None
        self._ops = 0
        self._bytes = 0
