"""The provider-agnostic resilient client core.

One session stack for every backend: this class owns everything that
used to be welded into the Google-Documents client — session/revision
bookkeeping, the retry loop driven by a
:class:`repro.net.policy.RetryPolicy`, idempotency keys, the typed
:class:`SaveOutcome` surface, conflict resync with OT rebase, and the
garbled-store full-save fallback.  What *varies* per provider (how to
phrase an open/save/fetch on the wire, how to read the answers, which
of these mechanisms the protocol can express at all) lives behind a
:class:`repro.services.backend.ServiceBackend`; the per-provider
clients are thin adapters over this core.

Capability flags decide which machinery engages:

* ``incremental_updates`` — first save full, later saves delta; without
  it every save re-sends the whole document (the Bespin/Buzzword path,
  which is also the gdocs client's garbled-store fallback);
* ``revisioned`` — conflicts exist, so the resync-and-rebase recovery
  is reachable; without it saves are last-writer-wins;
* ``sessions`` — saving requires an open; sessionless providers accept
  a save cold;
* ``idempotency_keys`` — saves are stamped so a retried request is
  deduplicated rather than re-applied.

The client stays oblivious to the extension: it operates on plaintext
and never knows a mediator rewrote its traffic (requirement 2 of the
paper).  Fault behaviour is policy-gated exactly as before: with a
:class:`RetryPolicy` failures come back as ``SaveOutcome(ok=False)``
and never raise; without one any failed exchange raises — the
paper-faithful legacy contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.client.editor import EditorBuffer
from repro.core.delta import Delta
from repro.core.ot import transform
from repro.errors import (
    CryptoError,
    DeltaError,
    NetworkTimeoutError,
    PasswordError,
    ProtocolError,
    RetryBudgetExceededError,
    SessionError,
)
from repro.net.channel import Channel
from repro.net.http import HttpRequest, HttpResponse
from repro.net.policy import RetryPolicy, RetryState
from repro.obs import counter, histogram
from repro.services.backend import SaveAck, ServiceBackend
from repro.workloads.diff import derive_delta

__all__ = ["ResilientClient", "SaveOutcome", "CONFLICT_COMPLAINT"]

#: the user-visible complaint the paper reports during concurrent edits
CONFLICT_COMPLAINT = "multiple people editing the same region"

_RETRIES = counter("client.retries.attempts")
_TIMEOUTS = counter("client.retries.timeouts")
_GIVEUPS = counter("client.retries.giveups")
_BACKOFF = histogram("client.retries.backoff_seconds")
_RESYNCS = counter("client.resyncs")
_SAVE_FAILURES = counter("client.save_failures")
#: merged acks whose patch was applied to the editor text directly
#: (plaintext stacks; mediated stacks arrive with content instead)
_MERGES_ADOPTED = counter("client.merges_adopted")


@dataclass
class SaveOutcome:
    """What one save attempt did, for tests and benchmarks.

    ``ok`` is False only when a resilient client exhausted its retry
    budget or hit a non-retryable failure — the typed, non-raising
    surface of an unrecoverable fault (``error`` says which).  Legacy
    clients (no policy) raise instead, so their outcomes always have
    ``ok=True``.
    """

    kind: str              #: "full" | "delta" | "noop"
    ack: SaveAck | None = None
    conflict: bool = False
    complaints: list[str] = field(default_factory=list)
    ok: bool = True
    error: str | None = None
    attempts: int = 1
    resynced: bool = False


class ResilientClient:
    """One user's editing client for one document on any backend."""

    def __init__(self, channel: Channel, doc_id: str,
                 backend: ServiceBackend,
                 policy: RetryPolicy | None = None):
        self._channel = channel
        self.doc_id = doc_id
        self.backend = backend
        self.editor = EditorBuffer()
        self._sid: str | None = None
        self._rev = -1
        self._did_full_save = False
        #: None → legacy behaviour (failures raise, no retries, no idem
        #: keys, wire byte-identical to the paper's protocol)
        self._policy = policy
        #: per-session save sequence number; feeds idempotency keys
        self._seq = 0
        self.complaints: list[str] = []

    # -- session -----------------------------------------------------------

    @property
    def in_session(self) -> bool:
        return self._sid is not None

    @property
    def revision(self) -> int:
        return self._rev

    def open(self) -> str:
        """Open (or create) the document; returns its current text."""
        response = self._send(self.backend.open_request(self.doc_id))
        state = self.backend.parse_open(self.doc_id, response)
        self._sid = state.sid
        self._rev = state.rev
        self._did_full_save = False
        self.editor.resync(state.content)
        return self.editor.text

    def close(self) -> None:
        """End the session (a final save, then forget the sid)."""
        if self.editor.dirty:
            self.save()
        self._sid = None

    # -- editing sugar ----------------------------------------------------

    def type_text(self, pos: int, text: str) -> None:
        """User action: insert ``text`` at ``pos``."""
        self.editor.insert(pos, text)

    def delete_text(self, pos: int, count: int) -> None:
        """User action: delete ``count`` characters at ``pos``."""
        self.editor.delete(pos, count)

    def apply_delta(self, delta: Delta) -> None:
        """Apply a scripted edit to the local buffer."""
        self.editor.apply_delta(delta)

    # -- resilient delivery (policy-gated) ---------------------------------

    def _send(self, request: HttpRequest) -> HttpResponse:
        """One exchange, retried under the policy when one is set."""
        if self._policy is None:
            return self._channel.send(request)
        return self._deliver(request,
                             self._policy.make_state(self._channel.clock))

    def _deliver(self, request: HttpRequest,
                 state: RetryState) -> HttpResponse:
        """Send ``request``, retrying timeouts and retryable statuses.

        Returns the first conclusive response — success or a
        non-retryable error, or the last retryable error response once
        the budget is spent.  Raises
        :class:`~repro.errors.RetryBudgetExceededError` only when the
        budget dies on a *timeout* (no response to surface).
        """
        while True:
            try:
                response = self._channel.send(request)
            except NetworkTimeoutError as exc:
                _TIMEOUTS.inc()
                delay = state.backoff()
                if delay is None:
                    _GIVEUPS.inc()
                    raise RetryBudgetExceededError(
                        f"gave up after {state.attempts} attempts "
                        f"({state.elapsed:.2f}s simulated): {exc}"
                    ) from exc
                self._pause(delay)
                continue
            if not response.ok and self._policy.retryable(response):
                delay = state.backoff(response)
                if delay is None:
                    _GIVEUPS.inc()
                    return response
                self._pause(delay)
                continue
            return response

    def _pause(self, seconds: float) -> None:
        """Back off on the simulated clock (the only time source)."""
        _RETRIES.inc()
        _BACKOFF.observe(seconds)
        self._channel.clock.advance(seconds)

    # -- saving ------------------------------------------------------------

    def save(self) -> SaveOutcome:
        """Autosave: full on the session's first save, delta afterwards
        (providers without ``incremental_updates`` re-send the whole
        document every time — their protocol has nothing smaller).

        With a retry policy set, failures come back as a typed
        ``SaveOutcome(ok=False)`` instead of raising, and every save
        carries an idempotency key when the protocol supports one.
        """
        if self._policy is not None:
            return self._save_resilient()
        return self._save_legacy()

    def _require_session(self) -> None:
        if self.backend.capabilities.sessions and self._sid is None:
            raise SessionError("save outside an edit session")

    def _is_noop(self) -> bool:
        """Whole-file providers re-send even a clean buffer: the save
        *is* the protocol's only way to assert the stored state (and it
        overwrites anything a reordered stale save left behind)."""
        return (self.backend.capabilities.incremental_updates
                and self._did_full_save and not self.editor.dirty)

    def _build_save(self, idem: str | None) -> tuple[str, HttpRequest]:
        if self.backend.capabilities.incremental_updates \
                and self._did_full_save:
            return "delta", self.backend.delta_save_request(
                self.doc_id, self._sid, self._rev,
                self.editor.pending_delta().serialize(), idem=idem,
            )
        return "full", self.backend.full_save_request(
            self.doc_id, self._sid, self._rev, self.editor.text, idem=idem,
        )

    def _save_legacy(self) -> SaveOutcome:
        """The paper-faithful save path: any failed exchange raises."""
        self._require_session()
        if self._is_noop():
            return SaveOutcome(kind="noop")

        kind, request = self._build_save(idem=None)
        response = self._channel.send(request)
        if not response.ok:
            # Recover conservatively: the server's state is unknown, so
            # the next save re-sends the whole document (which also lets
            # a mediating extension rebuild its ciphertext mirror).
            self._did_full_save = False
            raise ProtocolError(f"save failed: {response.body}")
        ack = self.backend.parse_save(response)
        outcome = SaveOutcome(kind=kind, ack=ack, conflict=ack.conflict)

        if ack.conflict:
            self._handle_conflict(ack, outcome)
        elif ack.merged:
            # The server transformed this delta past concurrent edits
            # and echoed the merged result: adopt it silently (the
            # collaboration behaviour of the real client).
            self._adopt_merge(ack)
        else:
            self._adopt_ack(ack)
            self._check_consistency(ack, outcome)
        return outcome

    def _save_resilient(self) -> SaveOutcome:
        """Save under the retry policy: idempotent, typed, non-raising.

        The idempotency key makes the retry loop safe against the
        blackhole ambiguity (server processed the save but the ack was
        lost): the re-sent request carries the same key, so the server
        answers from its replay cache instead of applying twice — and
        the mediating extension re-sends the same ciphertext instead of
        re-transforming (which would corrupt its mirror).  Providers
        without idempotency keys get plain at-least-once retries, which
        is safe because their saves are whole-document overwrites.
        """
        self._require_session()
        if self._is_noop():
            return SaveOutcome(kind="noop")

        self._seq += 1
        idem = None
        if self.backend.capabilities.idempotency_keys:
            idem = f"{self._sid}:{self._seq}"
        kind, request = self._build_save(idem=idem)

        state = self._policy.make_state(self._channel.clock)
        try:
            response = self._deliver(request, state)
        except RetryBudgetExceededError as exc:
            return self._save_failed(kind, state, f"timeout: {exc}")
        except (DeltaError, CryptoError, PasswordError) as exc:
            # A mediating extension failed to transform the save (its
            # mirror diverged — e.g. the stored ciphertext was damaged
            # and a resync adopted unexpected state).  Typed failure;
            # the full-save fallback rebuilds the mirror from scratch.
            return self._save_failed(kind, state, f"transform: {exc}")
        if not response.ok:
            return self._save_failed(
                kind, state, f"http {response.status}: {response.body}"
            )
        try:
            ack = self.backend.parse_save(response)
        except ProtocolError as exc:
            # The response was mangled in flight; the server's state is
            # unknown, so recover exactly as for an error response.
            return self._save_failed(kind, state, f"malformed ack: {exc}")

        outcome = SaveOutcome(kind=kind, ack=ack, conflict=ack.conflict,
                              attempts=state.attempts)
        if ack.conflict:
            self._resync_and_rebase(outcome, state)
        elif ack.merged:
            # The merged content already includes this save's delta
            # (the server transformed and applied it); adopt it as the
            # legacy path does.  Rebasing pending edits over it — the
            # conflict recovery — would apply them a second time.
            self._adopt_merge(ack)
        else:
            self._adopt_ack(ack)
            self._check_consistency(ack, outcome)
        return outcome

    def _adopt_ack(self, ack: SaveAck) -> None:
        """A clean ack: the save landed; adopt the server's revision
        (providers that don't number revisions answer ``rev=None`` and
        the local counter stands)."""
        if ack.rev is not None:
            self._rev = ack.rev
        self._did_full_save = True
        self.editor.mark_synced()

    def _adopt_merge(self, ack: SaveAck) -> None:
        """Adopt a merged save.

        A mediating extension rewrites the merged Ack to carry the
        merged *plaintext* (it already fast-forwarded its mirror over
        the ciphertext patch), so the content branch resyncs as before.
        On a plaintext stack the Ack instead carries the server's
        ``mergePatch`` — a delta from our post-save document to the
        merged one — which we apply locally: the hash check first
        detects replayed merge Acks (the patch is already in; patch
        application is not idempotent), then validates the patched
        result before the editor adopts it.
        """
        if ack.rev is not None:
            self._rev = ack.rev
        self._did_full_save = True
        if ack.content_from_server:
            self.editor.resync(ack.content_from_server)
            return
        if ack.merge_patch:
            if self.backend.ack_consistent(ack, self.editor.text):
                self.editor.mark_synced()  # replayed merge Ack
                return
            merged: str | None
            try:
                merged = Delta.parse(ack.merge_patch).apply(self.editor.text)
            except DeltaError:
                merged = None
            if merged is not None and \
                    self.backend.ack_consistent(ack, merged) is not False:
                _MERGES_ADOPTED.inc()
                self.editor.resync(merged)
                return
            # The patch does not reproduce the server's merged state —
            # re-assert the local text with a full save next round.
            self._did_full_save = False
            self.complaints.append(
                "merge patch did not apply cleanly; scheduling a full "
                "save"
            )
            return
        self.editor.mark_synced()

    def _save_failed(self, kind: str, state: RetryState,
                     error: str) -> SaveOutcome:
        """Typed unrecoverable-save surface: never an exception, and the
        next save re-sends the whole document (rebuilding the mediating
        extension's mirror along the way)."""
        _SAVE_FAILURES.inc()
        self._did_full_save = False
        return SaveOutcome(kind=kind, ok=False, error=error,
                           attempts=state.attempts)

    def _resync_and_rebase(self, outcome: SaveOutcome,
                           state: RetryState) -> None:
        """Conflict recovery: fetch, adopt, replay pending local edits.

        Only reachable on ``revisioned`` backends (others never answer
        ``conflict``).  The server's authoritative content comes from
        the Ack when present, else from a document fetch (which, under
        a mediating extension, also rebuilds the extension's ciphertext
        mirror from the stored bytes).  Local edits not yet acknowledged
        are rebased over the server's concurrent change with the server
        given priority, then left pending for the next save.
        """
        _RESYNCS.inc()
        outcome.resynced = True
        ack = outcome.ack
        synced = self.editor.synced_text
        local = self.editor.text

        if ack is not None and ack.content_from_server:
            fetched = ack.content_from_server
            rev = ack.rev if ack.rev is not None else self._rev
        else:
            try:
                response = self._deliver(
                    self.backend.fetch_request(self.doc_id), state
                )
            except RetryBudgetExceededError as exc:
                outcome.ok = False
                outcome.error = f"resync fetch timed out: {exc}"
                outcome.attempts = state.attempts
                _SAVE_FAILURES.inc()
                self._did_full_save = False
                return
            if not response.ok:
                outcome.ok = False
                outcome.error = (
                    f"resync fetch failed: http {response.status}"
                )
                outcome.attempts = state.attempts
                _SAVE_FAILURES.inc()
                self._did_full_save = False
                return
            fetch = self.backend.parse_fetch(self.doc_id, response,
                                             self._rev)
            fetched = fetch.content
            rev = fetch.rev

        if self._looks_garbled(fetched):
            # What came back is not readable text — under a mediating
            # extension this means the stored ciphertext no longer
            # decrypts (corrupted at rest or in flight).  Abandon the
            # fetched state and schedule a full save: the local
            # plaintext overwrites the damaged store.
            complaint = "stored document unreadable; re-saving local copy"
            self.complaints.append(complaint)
            outcome.complaints.append(complaint)
            self._did_full_save = False
            # adopt the server's stated revision outright: a corrupted
            # Ack may have forged our _rev HIGHER than the server's
            # truth, and max() would keep the forgery forever (every
            # later save conflicting on a revision that never existed)
            self._rev = rev if ack is None or ack.rev is None else ack.rev
            return

        if fetched == local:
            # The save we believed lost (or conflicted) actually
            # landed: the server's text already IS our local text.
            # There is nothing to replay — rebasing the pending edit
            # over it would apply the edit a second time.
            self.editor.resync(fetched, reason="conflict")
            self._rev = rev
            self._did_full_save = True
            return

        pending = derive_delta(synced, local)
        server_change = derive_delta(synced, fetched)
        self.editor.resync(fetched, reason="conflict")
        try:
            rebased = transform(pending, server_change, priority="right")
            self.editor.set_text(rebased.apply(fetched))
        except DeltaError:
            # Rebase impossible (divergence too deep): keep the server's
            # text; the user's unsaved edits are lost, reported loudly.
            complaint = CONFLICT_COMPLAINT
            self.complaints.append(complaint)
            outcome.complaints.append(complaint)
        self._rev = rev
        self._did_full_save = True

    @staticmethod
    def _looks_garbled(content: str) -> bool:
        """Would a user recognize this as *their* document?  Models the
        human glance that notices ciphertext/pseudo-prose where prose
        should be (the client stays oblivious of crypto details; these
        detectors are the simulation's stand-in for that glance).

        The uppercase-ratio fallback catches ciphertext whose header
        was damaged in flight — it no longer parses as a wire document,
        but it still does not read as the user's prose."""
        from repro.encoding.stego import looks_stego
        from repro.encoding.wire import looks_encrypted
        if looks_encrypted(content) or looks_stego(content):
            return True
        letters = [c for c in content if c.isalpha()]
        if len(letters) < 16:
            return False
        upper = sum(1 for c in letters if c.isupper())
        return upper / len(letters) > 0.9

    def _handle_conflict(self, ack: SaveAck,
                         outcome: SaveOutcome) -> None:
        """Resync from the server's authoritative content when it is
        available; otherwise (the extension blanked it) complain exactly
        as the paper observed."""
        if ack.content_from_server:
            self.editor.resync(ack.content_from_server, reason="conflict")
            if ack.rev is not None:
                self._rev = ack.rev
        else:
            complaint = CONFLICT_COMPLAINT
            self.complaints.append(complaint)
            outcome.complaints.append(complaint)
            # Recover by re-entering the full-save path next time.
            self._did_full_save = False
            if ack.rev is not None:
                self._rev = ack.rev

    def _check_consistency(self, ack: SaveAck,
                           outcome: SaveOutcome) -> None:
        """The backend's ack-vs-local consistency check, when its
        protocol has one (gdocs' ``contentFromServerHash``; a neutral
        hash carries no information and the check abstains — the
        behaviour the paper relied on when blanking these fields)."""
        verdict = self.backend.ack_consistent(ack, self.editor.text)
        if verdict is None or verdict:
            return
        complaint = "local text diverged from server content"
        self.complaints.append(complaint)
        outcome.complaints.append(complaint)
        if ack.content_from_server:
            self.editor.resync(ack.content_from_server)

    # -- read-only refresh (the passive collaborator) ------------------

    def refresh(self) -> str:
        """Fetch current content outside the save path (passive reader)."""
        response = self._send(self.backend.fetch_request(self.doc_id))
        if not response.ok and not self.backend.is_missing(response):
            raise ProtocolError(f"refresh failed: {response.body}")
        fetch = self.backend.parse_fetch(self.doc_id, response, self._rev)
        self.editor.resync(fetch.content)
        self._rev = fetch.rev
        return self.editor.text

    # -- client-side features (keep working under the extension) ----------

    def word_count(self) -> int:
        """Client-side feature: operates on local plaintext only."""
        return len(self.editor.text.split())
