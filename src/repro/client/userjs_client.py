"""User-JavaScript-style deployment (SIII, interception option 3).

"User JavaScript is a convenient way to inject a piece of JavaScript to
run with the same privilege as scripts originally coming from a web
site.  However, it provides no interface to directly manipulate network
traffic.  Implementing the transformer using User JavaScript requires
deeper understanding of the client code and rewriting relevant
components."

Modelled here as a *self-encrypting client*: instead of an oblivious
client plus a traffic mediator, the client's own save/open components
are rewritten to run the encryption engine inline.  The server-visible
behaviour is identical to the extension deployment (the integration
tests assert byte-level equivalence of what the provider can learn);
the trade-off is fidelity of the paper's point — this deployment has to
re-implement client internals instead of wrapping them.
"""

from __future__ import annotations

from repro.client.gdocs_client import GDocsClient, SaveOutcome
from repro.core.transform import EncryptionEngine
from repro.encoding.wire import looks_encrypted
from repro.errors import DecryptionError, ProtocolError, SessionError
from repro.net.channel import Channel
from repro.services.gdocs import protocol

__all__ = ["SelfEncryptingGDocsClient"]


class SelfEncryptingGDocsClient(GDocsClient):
    """A rewritten client that encrypts within its own save path.

    No mediator is installed on the channel; the rewriting happens in
    the overridden ``open``/``save``/``refresh`` components.
    """

    def __init__(self, channel: Channel, doc_id: str, password: str,
                 scheme: str = "rpc", block_chars: int = 8, rng=None):
        super().__init__(channel, doc_id)
        self._engine = EncryptionEngine(
            password, scheme=scheme, block_chars=block_chars, rng=rng
        )

    # -- rewritten components ------------------------------------------

    def open(self) -> str:
        """Open and decrypt inline (the rewritten open component)."""
        content = super().open()
        if looks_encrypted(content):
            try:
                plain = self._engine.decrypt(content)
            except DecryptionError:
                return content  # appears as ciphertext
            self.editor.resync(plain)
        return self.editor.text

    def save(self) -> SaveOutcome:
        """Save through the inline encryption engine (rewritten component)."""
        if self._sid is None:
            raise SessionError("save outside an edit session")
        if self._did_full_save and not self.editor.dirty:
            return SaveOutcome(kind="noop")

        if not self._did_full_save:
            payload = self._engine.encrypt(self.editor.text)
            request = protocol.full_save_request(
                self.doc_id, self._sid, self._rev, payload
            )
            kind = "full"
        else:
            delta = self.editor.pending_delta()
            cdelta = self._engine.mirror.apply_delta(delta)
            request = protocol.delta_save_request(
                self.doc_id, self._sid, self._rev, cdelta.serialize()
            )
            kind = "delta"

        response = self._channel.send(request)
        if not response.ok:
            raise ProtocolError(f"save failed: {response.body}")
        ack = protocol.Ack.from_response(response)
        outcome = SaveOutcome(kind=kind, ack=ack, conflict=ack.conflict)
        if ack.conflict:
            # The Ack's content is ciphertext; resync through the engine.
            if looks_encrypted(ack.content_from_server):
                try:
                    self.editor.resync(
                        self._engine.decrypt(ack.content_from_server)
                    )
                    self._rev = ack.rev
                    return outcome
                except DecryptionError:
                    pass
            self._did_full_save = False
            self._rev = ack.rev
            outcome.complaints.append("conflict; will full-save")
            return outcome
        self._rev = ack.rev
        self._did_full_save = True
        self.editor.mark_synced()
        # The hash covers ciphertext; the rewritten client knows that
        # and checks against its mirror instead of its plaintext.
        if ack.content_from_server_hash != protocol.NEUTRAL_HASH:
            mirror = self._engine.mirror
            if mirror is not None and ack.content_from_server_hash != \
                    protocol.content_hash(mirror.wire()):
                outcome.complaints.append("mirror diverged from server")
                self.complaints.append("mirror diverged from server")
        return outcome

    def refresh(self) -> str:
        """Fetch and decrypt inline (rewritten passive-reader path)."""
        content = super().refresh()
        if looks_encrypted(content):
            try:
                self.editor.resync(self._engine.decrypt(content))
            except DecryptionError:
                pass
        return self.editor.text
