"""The benign Google-Documents-like client.

A thin adapter: the session/revision bookkeeping, retry loop,
idempotency keys, typed :class:`SaveOutcome`, and conflict
resync-with-rebase all live in the shared provider-agnostic core
(:class:`repro.client.resilient.ResilientClient`); this module binds
that core to the reverse-engineered SIV-A protocol
(:class:`repro.services.backend.GDocsBackend`) and adds the
server-side feature calls the paper's extension must block.

The client half of SIV-A: open an edit session, send the session's
first save as a full ``docContents`` POST, send every later save as a
``delta``, and interpret Acks — including the
``contentFromServer(Hash)`` consistency check whose neutralization by
the extension produces the paper's partially-functional collaboration.

The client is oblivious to the extension: it always operates on
plaintext and never knows whether a mediator rewrote its traffic.  That
obliviousness is requirement 2 of the paper ("requires no cooperation
from the application provider").

Fault tolerance (beyond the paper): constructed with a
:class:`repro.net.policy.RetryPolicy`, the client retries timed-out and
429/5xx saves under that policy, stamps every save with an idempotency
key (so a replay of an already-processed save is deduplicated by the
server rather than re-applied), and recovers from revision conflicts by
re-fetching the document and rebasing its pending local edits over the
server's state.  Without a policy the behaviour is exactly the legacy
one: any failed exchange raises.
"""

from __future__ import annotations

from repro.client.resilient import (
    CONFLICT_COMPLAINT,
    ResilientClient,
    SaveOutcome,
)
from repro.net.channel import Channel
from repro.net.policy import RetryPolicy
from repro.services.backend import GDOCS
from repro.services.gdocs import protocol

__all__ = ["GDocsClient", "SaveOutcome", "CONFLICT_COMPLAINT"]


class GDocsClient(ResilientClient):
    """One user's editing client for one Google Documents document."""

    def __init__(self, channel: Channel, doc_id: str,
                 policy: RetryPolicy | None = None):
        super().__init__(channel, doc_id, GDOCS, policy=policy)

    # -- server-side features (will be blocked under the extension) ------

    def spellcheck(self) -> str:
        """Server-side spell check (blocked under the extension)."""
        response = self._channel.send(
            protocol.feature_request(self.doc_id, "spellcheck")
        )
        return response.form.get("misspelled", "")

    def translate(self) -> str:
        """Server-side translation (blocked under the extension)."""
        response = self._channel.send(
            protocol.feature_request(self.doc_id, "translate")
        )
        return response.body

    def export(self) -> str:
        """Server-side document export (blocked under the extension)."""
        response = self._channel.send(
            protocol.feature_request(self.doc_id, "export")
        )
        return response.body

    def draw(self, primitives: str) -> str:
        """Server-side drawing rendering (blocked under the extension)."""
        response = self._channel.send(
            protocol.feature_request(self.doc_id, "drawing",
                                     primitives=primitives)
        )
        return response.body
