"""The benign Google-Documents-like client.

Implements the client half of the SIV-A protocol: open an edit session,
send the session's first save as a full ``docContents`` POST, send every
later save as a ``delta``, and interpret Acks — including the
``contentFromServer(Hash)`` consistency check whose neutralization by
the extension produces the paper's partially-functional collaboration.

The client is oblivious to the extension: it always operates on
plaintext and never knows whether a mediator rewrote its traffic.  That
obliviousness is requirement 2 of the paper ("requires no cooperation
from the application provider").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.client.editor import EditorBuffer
from repro.core.delta import Delta
from repro.errors import ProtocolError, SessionError
from repro.net.channel import Channel
from repro.services.gdocs import protocol

__all__ = ["GDocsClient", "SaveOutcome"]

#: the user-visible complaint the paper reports during concurrent edits
CONFLICT_COMPLAINT = "multiple people editing the same region"


@dataclass
class SaveOutcome:
    """What one save attempt did, for tests and benchmarks."""

    kind: str              #: "full" | "delta" | "noop"
    ack: protocol.Ack | None = None
    conflict: bool = False
    complaints: list[str] = field(default_factory=list)


class GDocsClient:
    """One user's editing client for one document."""

    def __init__(self, channel: Channel, doc_id: str):
        self._channel = channel
        self.doc_id = doc_id
        self.editor = EditorBuffer()
        self._sid: str | None = None
        self._rev = -1
        self._did_full_save = False
        self.complaints: list[str] = []

    # -- session -----------------------------------------------------------

    @property
    def in_session(self) -> bool:
        return self._sid is not None

    @property
    def revision(self) -> int:
        return self._rev

    def open(self) -> str:
        """Open (or create) the document; returns its current text."""
        response = self._channel.send(protocol.open_request(self.doc_id))
        if not response.ok:
            raise ProtocolError(f"open failed: {response.body}")
        fields = response.form
        self._sid = fields[protocol.F_SID]
        self._rev = int(fields[protocol.A_REV])
        self._did_full_save = False
        self.editor.resync(fields.get(protocol.A_CONTENT, ""))
        return self.editor.text

    def close(self) -> None:
        """End the session (a final save, then forget the sid)."""
        if self.editor.dirty:
            self.save()
        self._sid = None

    # -- editing sugar ----------------------------------------------------

    def type_text(self, pos: int, text: str) -> None:
        """User action: insert ``text`` at ``pos``."""
        self.editor.insert(pos, text)

    def delete_text(self, pos: int, count: int) -> None:
        """User action: delete ``count`` characters at ``pos``."""
        self.editor.delete(pos, count)

    def apply_delta(self, delta: Delta) -> None:
        """Apply a scripted edit to the local buffer."""
        self.editor.apply_delta(delta)

    # -- saving ------------------------------------------------------------

    def save(self) -> SaveOutcome:
        """Autosave: full on the session's first save, delta afterwards."""
        if self._sid is None:
            raise SessionError("save outside an edit session")
        if self._did_full_save and not self.editor.dirty:
            return SaveOutcome(kind="noop")

        if not self._did_full_save:
            request = protocol.full_save_request(
                self.doc_id, self._sid, self._rev, self.editor.text
            )
            kind = "full"
        else:
            request = protocol.delta_save_request(
                self.doc_id, self._sid, self._rev,
                self.editor.pending_delta().serialize(),
            )
            kind = "delta"

        response = self._channel.send(request)
        if not response.ok:
            # Recover conservatively: the server's state is unknown, so
            # the next save re-sends the whole document (which also lets
            # a mediating extension rebuild its ciphertext mirror).
            self._did_full_save = False
            raise ProtocolError(f"save failed: {response.body}")
        ack = protocol.Ack.from_response(response)
        outcome = SaveOutcome(kind=kind, ack=ack, conflict=ack.conflict)

        if ack.conflict:
            self._handle_conflict(ack, outcome)
        elif ack.merged:
            # The server transformed this delta past concurrent edits
            # and echoed the merged result: adopt it silently (the
            # collaboration behaviour of the real client).
            self._rev = ack.rev
            self._did_full_save = True
            if ack.content_from_server:
                self.editor.resync(ack.content_from_server)
            else:
                self.editor.mark_synced()
        else:
            self._rev = ack.rev
            self._did_full_save = True
            self.editor.mark_synced()
            self._check_consistency(ack, outcome)
        return outcome

    def _handle_conflict(self, ack: protocol.Ack,
                         outcome: SaveOutcome) -> None:
        """Resync from the server's authoritative content when it is
        available; otherwise (the extension blanked it) complain exactly
        as the paper observed."""
        if ack.content_from_server:
            self.editor.resync(ack.content_from_server)
            self._rev = ack.rev
        else:
            complaint = CONFLICT_COMPLAINT
            self.complaints.append(complaint)
            outcome.complaints.append(complaint)
            # Recover by re-entering the full-save path next time.
            self._did_full_save = False
            self._rev = ack.rev

    def _check_consistency(self, ack: protocol.Ack,
                           outcome: SaveOutcome) -> None:
        """The contentFromServerHash check.

        A neutral hash ("0") carries no information and is skipped —
        the behaviour the paper relied on when blanking these fields.
        """
        if ack.content_from_server_hash == protocol.NEUTRAL_HASH:
            return
        if ack.content_from_server_hash != protocol.content_hash(
            self.editor.text
        ):
            complaint = "local text diverged from server content"
            self.complaints.append(complaint)
            outcome.complaints.append(complaint)
            if ack.content_from_server:
                self.editor.resync(ack.content_from_server)

    # -- read-only refresh (the passive collaborator) ------------------

    def refresh(self) -> str:
        """Fetch current content outside the save path (passive reader)."""
        response = self._channel.send(protocol.fetch_request(self.doc_id))
        if not response.ok:
            raise ProtocolError(f"refresh failed: {response.body}")
        self.editor.resync(response.body)
        self._rev = int(response.headers.get(protocol.A_REV, self._rev))
        return self.editor.text

    # -- server-side features (will be blocked under the extension) ------

    def spellcheck(self) -> str:
        """Server-side spell check (blocked under the extension)."""
        response = self._channel.send(
            protocol.feature_request(self.doc_id, "spellcheck")
        )
        return response.form.get("misspelled", "")

    def translate(self) -> str:
        """Server-side translation (blocked under the extension)."""
        response = self._channel.send(
            protocol.feature_request(self.doc_id, "translate")
        )
        return response.body

    def export(self) -> str:
        """Server-side document export (blocked under the extension)."""
        response = self._channel.send(
            protocol.feature_request(self.doc_id, "export")
        )
        return response.body

    def draw(self, primitives: str) -> str:
        """Server-side drawing rendering (blocked under the extension)."""
        response = self._channel.send(
            protocol.feature_request(self.doc_id, "drawing",
                                     primitives=primitives)
        )
        return response.body

    # -- client-side features (keep working under the extension) ----------

    def word_count(self) -> int:
        """Client-side feature: operates on local plaintext only."""
        return len(self.editor.text.split())
