"""The benign Google-Documents-like client.

Implements the client half of the SIV-A protocol: open an edit session,
send the session's first save as a full ``docContents`` POST, send every
later save as a ``delta``, and interpret Acks — including the
``contentFromServer(Hash)`` consistency check whose neutralization by
the extension produces the paper's partially-functional collaboration.

The client is oblivious to the extension: it always operates on
plaintext and never knows whether a mediator rewrote its traffic.  That
obliviousness is requirement 2 of the paper ("requires no cooperation
from the application provider").

Fault tolerance (beyond the paper): constructed with a
:class:`repro.net.policy.RetryPolicy`, the client retries timed-out and
429/5xx saves under that policy, stamps every save with an idempotency
key (so a replay of an already-processed save is deduplicated by the
server rather than re-applied), and recovers from revision conflicts by
re-fetching the document and rebasing its pending local edits over the
server's state.  Without a policy the behaviour is exactly the legacy
one: any failed exchange raises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.client.editor import EditorBuffer
from repro.core.delta import Delta
from repro.core.ot import transform
from repro.errors import (
    CryptoError,
    DeltaError,
    NetworkTimeoutError,
    PasswordError,
    ProtocolError,
    RetryBudgetExceededError,
    SessionError,
)
from repro.net.channel import Channel
from repro.net.http import HttpRequest, HttpResponse
from repro.net.policy import RetryPolicy, RetryState
from repro.obs import counter, histogram
from repro.services.gdocs import protocol
from repro.workloads.diff import derive_delta

__all__ = ["GDocsClient", "SaveOutcome"]

#: the user-visible complaint the paper reports during concurrent edits
CONFLICT_COMPLAINT = "multiple people editing the same region"

_RETRIES = counter("client.retries.attempts")
_TIMEOUTS = counter("client.retries.timeouts")
_GIVEUPS = counter("client.retries.giveups")
_BACKOFF = histogram("client.retries.backoff_seconds")
_RESYNCS = counter("client.resyncs")
_SAVE_FAILURES = counter("client.save_failures")


@dataclass
class SaveOutcome:
    """What one save attempt did, for tests and benchmarks.

    ``ok`` is False only when a resilient client exhausted its retry
    budget or hit a non-retryable failure — the typed, non-raising
    surface of an unrecoverable fault (``error`` says which).  Legacy
    clients (no policy) raise instead, so their outcomes always have
    ``ok=True``.
    """

    kind: str              #: "full" | "delta" | "noop"
    ack: protocol.Ack | None = None
    conflict: bool = False
    complaints: list[str] = field(default_factory=list)
    ok: bool = True
    error: str | None = None
    attempts: int = 1
    resynced: bool = False


class GDocsClient:
    """One user's editing client for one document."""

    def __init__(self, channel: Channel, doc_id: str,
                 policy: RetryPolicy | None = None):
        self._channel = channel
        self.doc_id = doc_id
        self.editor = EditorBuffer()
        self._sid: str | None = None
        self._rev = -1
        self._did_full_save = False
        #: None → legacy behaviour (failures raise, no retries, no idem
        #: keys, wire byte-identical to the paper's protocol)
        self._policy = policy
        #: per-session save sequence number; feeds idempotency keys
        self._seq = 0
        self.complaints: list[str] = []

    # -- session -----------------------------------------------------------

    @property
    def in_session(self) -> bool:
        return self._sid is not None

    @property
    def revision(self) -> int:
        return self._rev

    def open(self) -> str:
        """Open (or create) the document; returns its current text."""
        response = self._send(protocol.open_request(self.doc_id))
        if not response.ok:
            raise ProtocolError(f"open failed: {response.body}")
        fields = response.form
        self._sid = fields[protocol.F_SID]
        self._rev = int(fields[protocol.A_REV])
        self._did_full_save = False
        self.editor.resync(fields.get(protocol.A_CONTENT, ""))
        return self.editor.text

    def close(self) -> None:
        """End the session (a final save, then forget the sid)."""
        if self.editor.dirty:
            self.save()
        self._sid = None

    # -- editing sugar ----------------------------------------------------

    def type_text(self, pos: int, text: str) -> None:
        """User action: insert ``text`` at ``pos``."""
        self.editor.insert(pos, text)

    def delete_text(self, pos: int, count: int) -> None:
        """User action: delete ``count`` characters at ``pos``."""
        self.editor.delete(pos, count)

    def apply_delta(self, delta: Delta) -> None:
        """Apply a scripted edit to the local buffer."""
        self.editor.apply_delta(delta)

    # -- resilient delivery (policy-gated) ---------------------------------

    def _send(self, request: HttpRequest) -> HttpResponse:
        """One exchange, retried under the policy when one is set."""
        if self._policy is None:
            return self._channel.send(request)
        return self._deliver(request,
                             self._policy.make_state(self._channel.clock))

    def _deliver(self, request: HttpRequest,
                 state: RetryState) -> HttpResponse:
        """Send ``request``, retrying timeouts and retryable statuses.

        Returns the first conclusive response — success or a
        non-retryable error, or the last retryable error response once
        the budget is spent.  Raises
        :class:`~repro.errors.RetryBudgetExceededError` only when the
        budget dies on a *timeout* (no response to surface).
        """
        while True:
            try:
                response = self._channel.send(request)
            except NetworkTimeoutError as exc:
                _TIMEOUTS.inc()
                delay = state.backoff()
                if delay is None:
                    _GIVEUPS.inc()
                    raise RetryBudgetExceededError(
                        f"gave up after {state.attempts} attempts "
                        f"({state.elapsed:.2f}s simulated): {exc}"
                    ) from exc
                self._pause(delay)
                continue
            if not response.ok and self._policy.retryable(response):
                delay = state.backoff(response)
                if delay is None:
                    _GIVEUPS.inc()
                    return response
                self._pause(delay)
                continue
            return response

    def _pause(self, seconds: float) -> None:
        """Back off on the simulated clock (the only time source)."""
        _RETRIES.inc()
        _BACKOFF.observe(seconds)
        self._channel.clock.advance(seconds)

    # -- saving ------------------------------------------------------------

    def save(self) -> SaveOutcome:
        """Autosave: full on the session's first save, delta afterwards.

        With a retry policy set, failures come back as a typed
        ``SaveOutcome(ok=False)`` instead of raising, and every save
        carries an idempotency key.
        """
        if self._policy is not None:
            return self._save_resilient()
        return self._save_legacy()

    def _save_legacy(self) -> SaveOutcome:
        """The paper-faithful save path: any failed exchange raises."""
        if self._sid is None:
            raise SessionError("save outside an edit session")
        if self._did_full_save and not self.editor.dirty:
            return SaveOutcome(kind="noop")

        if not self._did_full_save:
            request = protocol.full_save_request(
                self.doc_id, self._sid, self._rev, self.editor.text
            )
            kind = "full"
        else:
            request = protocol.delta_save_request(
                self.doc_id, self._sid, self._rev,
                self.editor.pending_delta().serialize(),
            )
            kind = "delta"

        response = self._channel.send(request)
        if not response.ok:
            # Recover conservatively: the server's state is unknown, so
            # the next save re-sends the whole document (which also lets
            # a mediating extension rebuild its ciphertext mirror).
            self._did_full_save = False
            raise ProtocolError(f"save failed: {response.body}")
        ack = protocol.Ack.from_response(response)
        outcome = SaveOutcome(kind=kind, ack=ack, conflict=ack.conflict)

        if ack.conflict:
            self._handle_conflict(ack, outcome)
        elif ack.merged:
            # The server transformed this delta past concurrent edits
            # and echoed the merged result: adopt it silently (the
            # collaboration behaviour of the real client).
            self._rev = ack.rev
            self._did_full_save = True
            if ack.content_from_server:
                self.editor.resync(ack.content_from_server)
            else:
                self.editor.mark_synced()
        else:
            self._rev = ack.rev
            self._did_full_save = True
            self.editor.mark_synced()
            self._check_consistency(ack, outcome)
        return outcome

    def _save_resilient(self) -> SaveOutcome:
        """Save under the retry policy: idempotent, typed, non-raising.

        The idempotency key makes the retry loop safe against the
        blackhole ambiguity (server processed the save but the ack was
        lost): the re-sent request carries the same key, so the server
        answers from its replay cache instead of applying twice — and
        the mediating extension re-sends the same ciphertext instead of
        re-transforming (which would corrupt its mirror).
        """
        if self._sid is None:
            raise SessionError("save outside an edit session")
        if self._did_full_save and not self.editor.dirty:
            return SaveOutcome(kind="noop")

        self._seq += 1
        idem = f"{self._sid}:{self._seq}"
        if not self._did_full_save:
            kind = "full"
            request = protocol.full_save_request(
                self.doc_id, self._sid, self._rev, self.editor.text,
                idem=idem,
            )
        else:
            kind = "delta"
            request = protocol.delta_save_request(
                self.doc_id, self._sid, self._rev,
                self.editor.pending_delta().serialize(), idem=idem,
            )

        state = self._policy.make_state(self._channel.clock)
        try:
            response = self._deliver(request, state)
        except RetryBudgetExceededError as exc:
            return self._save_failed(kind, state, f"timeout: {exc}")
        except (DeltaError, CryptoError, PasswordError) as exc:
            # A mediating extension failed to transform the save (its
            # mirror diverged — e.g. the stored ciphertext was damaged
            # and a resync adopted unexpected state).  Typed failure;
            # the full-save fallback rebuilds the mirror from scratch.
            return self._save_failed(kind, state, f"transform: {exc}")
        if not response.ok:
            return self._save_failed(
                kind, state, f"http {response.status}: {response.body}"
            )
        try:
            ack = protocol.Ack.from_response(response)
        except ProtocolError as exc:
            # The response was mangled in flight; the server's state is
            # unknown, so recover exactly as for an error response.
            return self._save_failed(kind, state, f"malformed ack: {exc}")

        outcome = SaveOutcome(kind=kind, ack=ack, conflict=ack.conflict,
                              attempts=state.attempts)
        if ack.conflict:
            self._resync_and_rebase(outcome, state)
        elif ack.merged:
            # The merged content already includes this save's delta
            # (the server transformed and applied it); adopt it as the
            # legacy path does.  Rebasing pending edits over it — the
            # conflict recovery — would apply them a second time.
            self._rev = ack.rev
            self._did_full_save = True
            if ack.content_from_server:
                self.editor.resync(ack.content_from_server)
            else:
                self.editor.mark_synced()
        else:
            self._rev = ack.rev
            self._did_full_save = True
            self.editor.mark_synced()
            self._check_consistency(ack, outcome)
        return outcome

    def _save_failed(self, kind: str, state: RetryState,
                     error: str) -> SaveOutcome:
        """Typed unrecoverable-save surface: never an exception, and the
        next save re-sends the whole document (rebuilding the mediating
        extension's mirror along the way)."""
        _SAVE_FAILURES.inc()
        self._did_full_save = False
        return SaveOutcome(kind=kind, ok=False, error=error,
                           attempts=state.attempts)

    def _resync_and_rebase(self, outcome: SaveOutcome,
                           state: RetryState) -> None:
        """Conflict recovery: fetch, adopt, replay pending local edits.

        The server's authoritative content comes from the Ack when
        present, else from a document fetch (which, under a mediating
        extension, also rebuilds the extension's ciphertext mirror from
        the stored bytes).  Local edits not yet acknowledged are rebased
        over the server's concurrent change with the server given
        priority, then left pending for the next save.
        """
        _RESYNCS.inc()
        outcome.resynced = True
        ack = outcome.ack
        synced = self.editor.synced_text
        local = self.editor.text

        if ack is not None and ack.content_from_server:
            fetched = ack.content_from_server
            rev = ack.rev
        else:
            try:
                response = self._deliver(
                    protocol.fetch_request(self.doc_id), state
                )
            except RetryBudgetExceededError as exc:
                outcome.ok = False
                outcome.error = f"resync fetch timed out: {exc}"
                outcome.attempts = state.attempts
                _SAVE_FAILURES.inc()
                self._did_full_save = False
                return
            if not response.ok:
                outcome.ok = False
                outcome.error = (
                    f"resync fetch failed: http {response.status}"
                )
                outcome.attempts = state.attempts
                _SAVE_FAILURES.inc()
                self._did_full_save = False
                return
            fetched = response.body
            rev = int(response.headers.get(protocol.A_REV, self._rev))

        if self._looks_garbled(fetched):
            # What came back is not readable text — under a mediating
            # extension this means the stored ciphertext no longer
            # decrypts (corrupted at rest or in flight).  Abandon the
            # fetched state and schedule a full save: the local
            # plaintext overwrites the damaged store.
            complaint = "stored document unreadable; re-saving local copy"
            self.complaints.append(complaint)
            outcome.complaints.append(complaint)
            self._did_full_save = False
            # adopt the server's stated revision outright: a corrupted
            # Ack may have forged our _rev HIGHER than the server's
            # truth, and max() would keep the forgery forever (every
            # later save conflicting on a revision that never existed)
            self._rev = rev if ack is None else ack.rev
            return

        if fetched == local:
            # The save we believed lost (or conflicted) actually
            # landed: the server's text already IS our local text.
            # There is nothing to replay — rebasing the pending edit
            # over it would apply the edit a second time.
            self.editor.resync(fetched)
            self._rev = rev
            self._did_full_save = True
            return

        pending = derive_delta(synced, local)
        server_change = derive_delta(synced, fetched)
        self.editor.resync(fetched)
        try:
            rebased = transform(pending, server_change, priority="right")
            self.editor.set_text(rebased.apply(fetched))
        except DeltaError:
            # Rebase impossible (divergence too deep): keep the server's
            # text; the user's unsaved edits are lost, reported loudly.
            complaint = CONFLICT_COMPLAINT
            self.complaints.append(complaint)
            outcome.complaints.append(complaint)
        self._rev = rev
        self._did_full_save = True

    @staticmethod
    def _looks_garbled(content: str) -> bool:
        """Would a user recognize this as *their* document?  Models the
        human glance that notices ciphertext/pseudo-prose where prose
        should be (the client stays oblivious of crypto details; these
        detectors are the simulation's stand-in for that glance).

        The uppercase-ratio fallback catches ciphertext whose header
        was damaged in flight — it no longer parses as a wire document,
        but it still does not read as the user's prose."""
        from repro.encoding.stego import looks_stego
        from repro.encoding.wire import looks_encrypted
        if looks_encrypted(content) or looks_stego(content):
            return True
        letters = [c for c in content if c.isalpha()]
        if len(letters) < 16:
            return False
        upper = sum(1 for c in letters if c.isupper())
        return upper / len(letters) > 0.9

    def _handle_conflict(self, ack: protocol.Ack,
                         outcome: SaveOutcome) -> None:
        """Resync from the server's authoritative content when it is
        available; otherwise (the extension blanked it) complain exactly
        as the paper observed."""
        if ack.content_from_server:
            self.editor.resync(ack.content_from_server)
            self._rev = ack.rev
        else:
            complaint = CONFLICT_COMPLAINT
            self.complaints.append(complaint)
            outcome.complaints.append(complaint)
            # Recover by re-entering the full-save path next time.
            self._did_full_save = False
            self._rev = ack.rev

    def _check_consistency(self, ack: protocol.Ack,
                           outcome: SaveOutcome) -> None:
        """The contentFromServerHash check.

        A neutral hash ("0") carries no information and is skipped —
        the behaviour the paper relied on when blanking these fields.
        """
        if ack.content_from_server_hash == protocol.NEUTRAL_HASH:
            return
        if ack.content_from_server_hash != protocol.content_hash(
            self.editor.text
        ):
            complaint = "local text diverged from server content"
            self.complaints.append(complaint)
            outcome.complaints.append(complaint)
            if ack.content_from_server:
                self.editor.resync(ack.content_from_server)

    # -- read-only refresh (the passive collaborator) ------------------

    def refresh(self) -> str:
        """Fetch current content outside the save path (passive reader)."""
        response = self._send(protocol.fetch_request(self.doc_id))
        if not response.ok:
            raise ProtocolError(f"refresh failed: {response.body}")
        self.editor.resync(response.body)
        self._rev = int(response.headers.get(protocol.A_REV, self._rev))
        return self.editor.text

    # -- server-side features (will be blocked under the extension) ------

    def spellcheck(self) -> str:
        """Server-side spell check (blocked under the extension)."""
        response = self._channel.send(
            protocol.feature_request(self.doc_id, "spellcheck")
        )
        return response.form.get("misspelled", "")

    def translate(self) -> str:
        """Server-side translation (blocked under the extension)."""
        response = self._channel.send(
            protocol.feature_request(self.doc_id, "translate")
        )
        return response.body

    def export(self) -> str:
        """Server-side document export (blocked under the extension)."""
        response = self._channel.send(
            protocol.feature_request(self.doc_id, "export")
        )
        return response.body

    def draw(self, primitives: str) -> str:
        """Server-side drawing rendering (blocked under the extension)."""
        response = self._channel.send(
            protocol.feature_request(self.doc_id, "drawing",
                                     primitives=primitives)
        )
        return response.body

    # -- client-side features (keep working under the extension) ----------

    def word_count(self) -> int:
        """Client-side feature: operates on local plaintext only."""
        return len(self.editor.text.split())
