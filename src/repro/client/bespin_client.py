"""The benign Bespin-like client: whole-file PUT on every save.

A thin adapter over the shared resilient core: Bespin's protocol has no
sessions, revisions, or deltas (``BackendCapabilities()`` all-false),
so every save takes the full-save path, conflicts never occur, and —
with a :class:`repro.net.policy.RetryPolicy` — transient faults come
back as typed ``SaveOutcome(ok=False)`` exactly as they do for the
Google Documents client.  Without a policy, failed exchanges raise
(the legacy contract).
"""

from __future__ import annotations

from repro.client.resilient import ResilientClient, SaveOutcome
from repro.net.channel import Channel
from repro.net.policy import RetryPolicy
from repro.services.backend import BESPIN

__all__ = ["BespinClient"]


class BespinClient(ResilientClient):
    """Edits one file in a Bespin project."""

    def __init__(self, channel: Channel, path: str,
                 policy: RetryPolicy | None = None):
        super().__init__(channel, path, BESPIN, policy=policy)
        self.path = path

    def open(self) -> str:
        """Fetch the file (empty buffer when it does not exist yet)."""
        return super().open()

    def save(self) -> SaveOutcome:
        """PUT the whole buffer (Bespin has no incremental updates)."""
        return super().save()
