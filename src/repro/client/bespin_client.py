"""The benign Bespin-like client: whole-file PUT on every save."""

from __future__ import annotations

from repro.client.editor import EditorBuffer
from repro.errors import ProtocolError
from repro.net.channel import Channel
from repro.services import bespin

__all__ = ["BespinClient"]


class BespinClient:
    """Edits one file in a Bespin project."""

    def __init__(self, channel: Channel, path: str):
        self._channel = channel
        self.path = path
        self.editor = EditorBuffer()

    def open(self) -> str:
        """Fetch the file (empty buffer when it does not exist yet)."""
        response = self._channel.send(bespin.get_request(self.path))
        if response.status == 404:
            self.editor.resync("")
        elif response.ok:
            self.editor.resync(response.body)
        else:
            raise ProtocolError(f"open failed: {response.body}")
        return self.editor.text

    def save(self) -> None:
        """PUT the whole buffer (Bespin has no incremental updates)."""
        response = self._channel.send(
            bespin.put_request(self.path, self.editor.text)
        )
        if not response.ok:
            raise ProtocolError(f"save failed: {response.body}")
        self.editor.mark_synced()
