"""The client-side editor model.

Everything content-related in the target applications happens client
side (that is the design property the whole approach rests on); the
:class:`EditorBuffer` is that client state: the full plaintext, edit
operations, and the delta computation that feeds incremental saves.

Like the real client, the buffer derives each save's delta by comparing
the current text against the text at the last successful save (Myers
diff with a fallback), rather than journaling keystrokes — so any
sequence of local edits collapses into one compact delta per autosave.
"""

from __future__ import annotations

from repro.core.delta import Delta
from repro.errors import DeltaApplicationError
from repro.workloads.diff import derive_delta

__all__ = ["EditorBuffer"]


class EditorBuffer:
    """Plaintext document state plus save-boundary tracking."""

    def __init__(self, text: str = ""):
        self._text = text
        self._synced_text = text

    # -- reading ------------------------------------------------------

    @property
    def text(self) -> str:
        return self._text

    def __len__(self) -> int:
        return len(self._text)

    @property
    def synced_text(self) -> str:
        """The text as of the last successful save."""
        return self._synced_text

    @property
    def dirty(self) -> bool:
        """Has the buffer changed since the last sync point?"""
        return self._text != self._synced_text

    # -- editing ------------------------------------------------------

    def insert(self, pos: int, text: str) -> None:
        """Insert ``text`` at ``pos``."""
        if not 0 <= pos <= len(self._text):
            raise DeltaApplicationError(
                f"insert position {pos} outside [0, {len(self._text)}]"
            )
        self._text = self._text[:pos] + text + self._text[pos:]

    def delete(self, pos: int, count: int) -> None:
        """Delete ``count`` characters at ``pos``."""
        if not 0 <= pos <= pos + count <= len(self._text):
            raise DeltaApplicationError(
                f"delete range [{pos}, {pos + count}) outside document"
            )
        self._text = self._text[:pos] + self._text[pos + count:]

    def replace(self, pos: int, count: int, text: str) -> None:
        """Replace ``count`` characters at ``pos`` with ``text``."""
        self.delete(pos, count)
        self.insert(pos, text)

    def apply_delta(self, delta: Delta) -> None:
        """Apply a delta to the buffer."""
        self._text = delta.apply(self._text)

    def set_text(self, text: str) -> None:
        """Replace the whole text, keeping the last sync point (so the
        change is included in the next pending delta)."""
        self._text = text

    # -- save-boundary bookkeeping --------------------------------------

    def pending_delta(self) -> Delta:
        """The delta from the last sync point to the current text."""
        return derive_delta(self._synced_text, self._text)

    def mark_synced(self) -> None:
        """Record that the current text reached the server."""
        self._synced_text = self._text

    def resync(self, text: str) -> None:
        """Adopt authoritative content (conflict recovery)."""
        self._text = text
        self._synced_text = text
