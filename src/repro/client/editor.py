"""The client-side editor model.

Everything content-related in the target applications happens client
side (that is the design property the whole approach rests on); the
:class:`EditorBuffer` is that client state: the full plaintext, edit
operations, and the delta computation that feeds incremental saves.

Each save's delta comes from a keystroke journal: every edit is folded
into one running delta by an :class:`~repro.client.coalesce.
EditCoalescer`, so :meth:`pending_delta` is O(burst) instead of
re-diffing the whole document, and the burst reaches IncE as a single
delta (one batched re-encryption pass).  When the journal cannot speak
for the buffer — a wholesale :meth:`set_text`, or a pathologically long
unsaved burst — it is invalidated and the buffer falls back to the
Myers diff against the last-synced text, which is also the
cross-check: a journal delta that fails to reproduce the current text
is discarded in favour of the diff.
"""

from __future__ import annotations

from repro.client.coalesce import EditCoalescer
from repro.core.delta import Delta
from repro.errors import DeltaApplicationError
from repro.workloads.diff import derive_delta

__all__ = ["EditorBuffer"]

#: journal cap per save interval; past this the O(burst) compose no
#: longer beats one Myers diff and the journal steps aside
_JOURNAL_MAX_OPS = 512


class EditorBuffer:
    """Plaintext document state plus save-boundary tracking."""

    def __init__(self, text: str = ""):
        self._text = text
        self._synced_text = text
        #: keystrokes since the last sync point, composed into one
        #: delta; flush points coincide with sync points by design
        self._journal = EditCoalescer(max_ops=_JOURNAL_MAX_OPS,
                                      overflow="invalidate")

    # -- reading ------------------------------------------------------

    @property
    def text(self) -> str:
        return self._text

    def __len__(self) -> int:
        return len(self._text)

    @property
    def synced_text(self) -> str:
        """The text as of the last successful save."""
        return self._synced_text

    @property
    def dirty(self) -> bool:
        """Has the buffer changed since the last sync point?"""
        return self._text != self._synced_text

    # -- editing ------------------------------------------------------

    def insert(self, pos: int, text: str) -> None:
        """Insert ``text`` at ``pos``."""
        if not 0 <= pos <= len(self._text):
            raise DeltaApplicationError(
                f"insert position {pos} outside [0, {len(self._text)}]"
            )
        if not text:
            return
        self._text = self._text[:pos] + text + self._text[pos:]
        self._journal.add(Delta.insertion(pos, text))

    def delete(self, pos: int, count: int) -> None:
        """Delete ``count`` characters at ``pos``."""
        if not 0 <= pos <= pos + count <= len(self._text):
            raise DeltaApplicationError(
                f"delete range [{pos}, {pos + count}) outside document"
            )
        if not count:
            return
        self._text = self._text[:pos] + self._text[pos + count:]
        self._journal.add(Delta.deletion(pos, count))

    def replace(self, pos: int, count: int, text: str) -> None:
        """Replace ``count`` characters at ``pos`` with ``text``."""
        self.delete(pos, count)
        self.insert(pos, text)

    def apply_delta(self, delta: Delta) -> None:
        """Apply a delta to the buffer."""
        self._text = delta.apply(self._text)
        self._journal.add(delta)

    def set_text(self, text: str) -> None:
        """Replace the whole text, keeping the last sync point (so the
        change is included in the next pending delta)."""
        self._text = text
        self._journal.invalidate()

    # -- save-boundary bookkeeping --------------------------------------

    def pending_delta(self) -> Delta:
        """The delta from the last sync point to the current text.

        O(burst) from the keystroke journal when it is live; Myers diff
        of the two texts otherwise.  The journal's answer is verified
        against the current text before being trusted.
        """
        if self._journal.valid:
            delta = self._journal.peek()
            try:
                if delta.apply(self._synced_text) == self._text:
                    return delta
            except DeltaApplicationError:
                pass
            # the journal lost the plot (should not happen; the diff
            # both recovers and keeps the save correct)
            self._journal.invalidate()
        return derive_delta(self._synced_text, self._text)

    def mark_synced(self) -> None:
        """Record that the current text reached the server."""
        self._synced_text = self._text
        self._journal.flush("save")

    def resync(self, text: str, reason: str = "resync") -> None:
        """Adopt authoritative content (conflict recovery); ``reason``
        labels the burst boundary (``"resync"`` or ``"conflict"``)."""
        self._text = text
        self._synced_text = text
        self._journal.flush(reason)
