"""The benign Buzzword-like client: whole-document XML POST per save.

The document model is a list of paragraphs; every save serializes all
of them into ``<textRun>`` elements inside one ``<doc>`` body.
"""

from __future__ import annotations

from repro.errors import ProtocolError
from repro.net.channel import Channel
from repro.services import buzzword

__all__ = ["BuzzwordClient"]


class BuzzwordClient:
    """Edits one Buzzword document."""

    def __init__(self, channel: Channel, doc_id: str):
        self._channel = channel
        self.doc_id = doc_id
        self.paragraphs: list[str] = []

    def open(self) -> list[str]:
        """Fetch the document's paragraphs (empty when new)."""
        response = self._channel.send(buzzword.get_request(self.doc_id))
        if response.status == 404:
            self.paragraphs = []
        elif response.ok:
            self.paragraphs = buzzword.text_runs(response.body)
        else:
            raise ProtocolError(f"open failed: {response.body}")
        return list(self.paragraphs)

    def save(self) -> None:
        """POST the whole document as XML."""
        xml = buzzword.document_xml(self.paragraphs)
        response = self._channel.send(
            buzzword.post_request(self.doc_id, xml)
        )
        if not response.ok:
            raise ProtocolError(f"save failed: {response.body}")
