"""The benign Buzzword-like client: whole-document XML POST per save.

The document model is a list of paragraphs; every save serializes all
of them into ``<textRun>`` elements inside one ``<doc>`` body.  The
XML framing lives in :class:`repro.services.backend.BuzzwordBackend`;
this adapter keeps the paragraph-list surface (callers edit
``client.paragraphs`` directly, as the real Buzzword UI would) on top
of the shared resilient core, which models the document as one text —
paragraphs joined by newlines.

Like the other adapters: constructed with a
:class:`repro.net.policy.RetryPolicy` the client retries transient
faults and returns typed ``SaveOutcome(ok=False)`` on unrecoverable
ones; without a policy failed exchanges raise.
"""

from __future__ import annotations

from repro.client.resilient import ResilientClient, SaveOutcome
from repro.net.channel import Channel
from repro.net.policy import RetryPolicy
from repro.services.backend import (
    BUZZWORD,
    join_paragraphs,
    split_paragraphs,
)

__all__ = ["BuzzwordClient"]


class BuzzwordClient(ResilientClient):
    """Edits one Buzzword document."""

    def __init__(self, channel: Channel, doc_id: str,
                 policy: RetryPolicy | None = None):
        super().__init__(channel, doc_id, BUZZWORD, policy=policy)
        self.paragraphs: list[str] = []
        self._para_snapshot: list[str] = []

    def open(self) -> list[str]:
        """Fetch the document's paragraphs (empty when new)."""
        super().open()
        self._adopt_editor()
        return list(self.paragraphs)

    def save(self) -> SaveOutcome:
        """POST the whole document as XML."""
        if self.paragraphs != self._para_snapshot:
            # the paragraph list was edited directly; it wins over (and
            # lands in) the underlying text buffer
            self.editor.set_text(join_paragraphs(self.paragraphs))
        outcome = super().save()
        self._adopt_editor()
        return outcome

    def _adopt_editor(self) -> None:
        """Re-derive the paragraph view from the text buffer (the two
        representations are newline-joined/split of each other)."""
        self.paragraphs = split_paragraphs(self.editor.text)
        self._para_snapshot = list(self.paragraphs)
