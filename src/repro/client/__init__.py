"""Client-side application models: the editor buffer and the benign
clients for each simulated service.  All clients are oblivious to the
extension — they speak plaintext and never cooperate with the mediator.
"""

from repro.client.bespin_client import BespinClient
from repro.client.buzzword_client import BuzzwordClient
from repro.client.coalesce import EditCoalescer
from repro.client.editor import EditorBuffer
from repro.client.resilient import ResilientClient
from repro.client.userjs_client import SelfEncryptingGDocsClient
from repro.client.gdocs_client import CONFLICT_COMPLAINT, GDocsClient, SaveOutcome

__all__ = [
    "EditCoalescer",
    "EditorBuffer",
    "ResilientClient",
    "GDocsClient",
    "SaveOutcome",
    "CONFLICT_COMPLAINT",
    "BespinClient",
    "BuzzwordClient",
    "SelfEncryptingGDocsClient",
]
