"""Rollback detection (a freshness extension beyond the paper).

The paper's schemes verify that a stored document is *internally*
consistent, but an old, internally consistent version replayed by the
server verifies just as well — the rollback attack demonstrated in
``tests/integration/test_attack_scenarios.py``.  Detecting staleness
fundamentally needs trusted state *outside* the document; the natural
place is the same place the paper already trusts: the client-side
extension.

Mechanism: every RPC update bumps a monotonic version counter bound
into the (AES-protected) checksum record (:mod:`repro.core.rpc`); the
:class:`FreshnessMonitor` remembers, per document, the highest version
this client has produced or observed.  When a document is later loaded
with a *lower* version, the server replayed an old snapshot.

Limits (documented, not hidden): the monitor's memory is per client, so
a rollback to a state this client never saw — or a rollback served only
to a *different* collaborator — is not detected; that needs SPORC-style
cross-client machinery, which the paper explicitly leaves out of scope.
"""

from __future__ import annotations

from repro.errors import IntegrityError
from repro.obs import counter

__all__ = ["RollbackError", "FreshnessMonitor"]

#: reads that presented an older version than this client has seen
_STALE_READS = counter("extension.freshness.stale_reads")


class RollbackError(IntegrityError):
    """The server presented an older version than this client has seen."""


class FreshnessMonitor:
    """Per-document high-water marks of the RPC version counter."""

    def __init__(self) -> None:
        self._high_water: dict[str, int] = {}

    def last_seen(self, doc_id: str) -> int | None:
        """The highest version observed for ``doc_id`` (None if never)."""
        return self._high_water.get(doc_id)

    def observe(self, doc_id: str, version: int) -> None:
        """Record a version this client produced or accepted."""
        current = self._high_water.get(doc_id, -1)
        if version > current:
            self._high_water[doc_id] = version

    def check(self, doc_id: str, version: int) -> None:
        """Raise :class:`RollbackError` when ``version`` regresses."""
        current = self._high_water.get(doc_id)
        if current is not None and version < current:
            _STALE_READS.inc()
            raise RollbackError(
                f"document {doc_id!r} loaded at version {version}, but "
                f"this client has already seen version {current} "
                f"(server rollback/replay)"
            )

    def forget(self, doc_id: str) -> None:
        """Drop state (e.g. the user deliberately restored an old
        revision out of band)."""
        self._high_water.pop(doc_id, None)
