"""Covert-channel countermeasures (SVI-B).

Against a *malicious client* the extension cannot prevent all leakage,
but it controls the narrow interface to the server and can therefore
disrupt the channels the paper enumerates:

* **delta canonicalization** — "maintaining each group of delta updates
  and merging them into a canonical form before sending": any two
  deltas with the same effect leave the extension identical, destroying
  the delta-shape channel (the Ord(q) insert/delete trick);
* **random padding** — "randomly pad the content (without affecting the
  correctness of the content)": a throwaway form field of random length
  hides the true message size from the length channel;
* **random delays** — "add random delays ... to every outgoing update
  request": jitter swamps timing modulation (updates are asynchronous,
  so the user doesn't notice).

``repro.security.covert`` measures each channel's bandwidth with and
without these switches (ablation C).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.delta import Delta
from repro.encoding.base32 import ALPHABET

__all__ = ["Countermeasures", "PAD_FIELD"]

#: throwaway form field used for padding; servers ignore unknown fields
PAD_FIELD = "pad"


@dataclass
class Countermeasures:
    """Switchboard of mitigations applied by the mediator."""

    canonicalize_deltas: bool = False
    pad_requests: bool = False
    pad_max_chars: int = 512
    random_delay: bool = False
    delay_max_seconds: float = 0.5
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    @classmethod
    def none(cls) -> "Countermeasures":
        """No mitigations (the paper's default configuration)."""
        return cls()

    @classmethod
    def all(cls, seed: int = 0) -> "Countermeasures":
        """Every mitigation on."""
        return cls(
            canonicalize_deltas=True,
            pad_requests=True,
            random_delay=True,
            rng=random.Random(seed),
        )

    # -- the three mitigations ---------------------------------------

    def shape_delta(self, delta: Delta) -> Delta:
        """Canonicalize if enabled (destroys delta-shape encodings)."""
        if self.canonicalize_deltas:
            return delta.canonical()
        return delta

    def pad_fields(self, fields: dict[str, str]) -> dict[str, str]:
        """Append a random-length throwaway field if enabled."""
        if not self.pad_requests:
            return fields
        length = self.rng.randint(0, self.pad_max_chars)
        padding = "".join(self.rng.choice(ALPHABET) for _ in range(length))
        return {**fields, PAD_FIELD: padding}

    def delay(self) -> float:
        """Extra seconds to hold an outgoing update, if enabled."""
        if not self.random_delay:
            return 0.0
        return self.rng.uniform(0.0, self.delay_max_seconds)
