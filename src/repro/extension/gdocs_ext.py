"""The Google Documents extension (SIV, Fig. 1 and Fig. 2).

``GDocsExtension`` is the :class:`repro.net.channel.Mediator` that the
paper's pseudocode sketches:

* a ``docContents`` full save → encrypt the contents field;
* a ``delta`` incremental save → translate through ``transform_delta``;
* a bare session-open POST and the document GET → allowed;
* **everything else is dropped** — including every server-side feature
  request (spell check, translate, export, drawing), which is precisely
  how those features "become unavailable" in SVII-A;

and on the return path:

* decrypt document content delivered by opens/fetches (so the oblivious
  client sees plaintext);
* neutralize ``contentFromServer`` / ``contentFromServerHash`` in every
  Ack — the paper found single-user editing works flawlessly with the
  empty string and ``0`` substituted, and multi-user editing degrades
  to conflict complaints (reproduced in the integration tests).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.delta import Delta
from repro.core.transform import EncryptionEngine
from repro.encoding.wire import RECORD_CHARS, looks_encrypted, split_header
from repro.errors import (
    CiphertextFormatError,
    DecryptionError,
    DeltaError,
    IntegrityError,
    PasswordError,
    ProtocolError,
)
from repro.extension.countermeasures import Countermeasures
from repro.extension.freshness import FreshnessMonitor
from repro.extension.passwords import PasswordVault
from repro.net.http import HttpRequest, HttpResponse
from repro.net.latency import SimClock
from repro.obs import counter
from repro.services.catalog import A_AUDIT_LINK, F_AUDIT, F_INDEX, \
    encode_records
from repro.services.gdocs import protocol

__all__ = ["GDocsExtension"]

#: save rewrites served from the idempotency cache — each one is a
#: retry/replay whose re-transformation would have double-advanced the
#: ciphertext mirror
_IDEM_REPLAYS = counter("extension.idem_replays")
#: Acks whose contentFromServerHash disagreed with the mirror (stored
#: ciphertext corrupted in flight or tampered at rest)
_ACK_MISMATCHES = counter("extension.ack_hash_mismatches")
#: merged Acks whose mergePatch was applied to the mirror — the stale
#: client fast-forwarded to the merged document without a resync
_MERGE_FOLLOWS = counter("extension.merge_follows")
#: merged Acks the extension could not follow (stego framing, missing
#: patch, misaligned patch, hash mismatch, undecryptable result) and
#: downgraded to the paper's conflict behaviour
_MERGE_DOWNGRADES = counter("extension.merge_downgrades")

#: rewritten save requests remembered per extension (ring-capped)
IDEM_REWRITE_CACHE_SIZE = 64


class GDocsExtension:
    """Request mediator providing private editing on Google Documents."""

    def __init__(
        self,
        vault: PasswordVault,
        scheme: str = "recb",
        block_chars: int = 8,
        rng=None,
        index_factory=None,
        countermeasures: Countermeasures | None = None,
        clock: SimClock | None = None,
        decrypt_acks: bool = False,
        stego: bool = False,
        freshness: FreshnessMonitor | None = None,
        verify_acks: bool = False,
        indexer=None,
        audit: bool = False,
    ):
        self._vault = vault
        self._scheme = scheme
        self._block_chars = block_chars
        self._rng = rng
        self._index_factory = index_factory
        self._counter = countermeasures or Countermeasures.none()
        self._clock = clock
        #: beyond-the-paper option: decrypt Ack content instead of
        #: blanking it, which repairs conflict resync (ablation in
        #: tests/integration/test_collaboration.py)
        self._decrypt_acks = decrypt_acks
        #: SVI-A extension: disguise ciphertext as pseudo-prose so a
        #: censoring provider cannot recognize (and refuse) it
        self._stego = stego
        #: beyond-the-paper rollback detector (RPC documents only)
        self._freshness = freshness
        #: check every Ack's contentFromServerHash against the mirror's
        #: expected stored bytes, flagging a conflict on divergence so
        #: the client resyncs.  Costs one hash of the full mirror wire
        #: per save — off by default, enabled by fault-tolerant sessions
        self._verify_acks = verify_acks
        #: workspace seam (PR 10): a
        #: repro.extension.catalog.WorkspaceIndexer fed the plaintext of
        #: every save the extension transforms; its encrypted index
        #: delta records ride the rewritten request's ``idx`` field
        self._indexer = indexer
        #: opt every save into the server's hash-chained audit trail
        #: (``aud=1``); acknowledged links are collected per doc in
        #: ``audit_trail`` for the workspace's trust store
        self._audit = audit
        #: doc_id -> (rev, content hash, audit link) of the newest
        #: clean, audited ack witnessed on this channel
        self.audit_trail: dict[str, tuple[int, str, str]] = {}
        self._engines: dict[str, EncryptionEngine] = {}
        #: (doc_id, idempotency key) -> the rewritten request already
        #: produced for that save; a client retry must re-send the SAME
        #: ciphertext, not re-transform (which would double-advance the
        #: mirror)
        self._idem_rewrites: OrderedDict[tuple[str, str], HttpRequest] = \
            OrderedDict()
        self.warnings: list[str] = []

    # -- engine management ----------------------------------------------

    def engine(self, doc_id: str) -> EncryptionEngine:
        """The per-document encryption state (created on first use)."""
        if doc_id not in self._engines:
            self._engines[doc_id] = EncryptionEngine(
                password=self._vault.get(doc_id),
                scheme=self._scheme,
                block_chars=self._block_chars,
                rng=self._rng,
                index_factory=self._index_factory,
            )
        return self._engines[doc_id]

    # -- Mediator: outgoing ------------------------------------------------

    def on_request(self, request: HttpRequest) -> HttpRequest | None:
        """Fig. 2: encrypt docContents, transform delta, drop the rest."""
        if request.path != protocol.DOC_PATH:
            return None  # not part of the understood protocol: drop
        params = request.query
        doc_id = params.get("docID")
        if not doc_id:
            return None
        if params.get("action"):
            return None  # every feature endpoint is blocked
        if request.method == "GET":
            return request  # document fetch: ciphertext comes back
        if request.method != "POST":
            return None

        form = request.form if request.body else {}
        if protocol.F_DOC_CONTENTS in form or protocol.F_DELTA in form:
            idem = form.get(protocol.F_IDEM)
            if idem is not None:
                cached = self._idem_rewrites.get((doc_id, idem))
                if cached is not None:
                    # A retry of a save we already transformed: re-send
                    # the identical ciphertext.  Re-transforming would
                    # advance the mirror a second time for one edit.
                    _IDEM_REPLAYS.inc()
                    return cached
            if protocol.F_DOC_CONTENTS in form:
                rewritten = self._rewrite_full_save(doc_id, request, form)
            else:
                rewritten = self._rewrite_delta_save(doc_id, request, form)
            if idem is not None:
                self._idem_rewrites[(doc_id, idem)] = rewritten
                while len(self._idem_rewrites) > IDEM_REWRITE_CACHE_SIZE:
                    self._idem_rewrites.popitem(last=False)
            return rewritten
        if not form:
            return request  # session open carries no content
        return None  # unknown POST shape: drop

    def _rewrite_full_save(
        self, doc_id: str, request: HttpRequest, form: dict[str, str]
    ) -> HttpRequest:
        engine = self.engine(doc_id)
        plaintext = form[protocol.F_DOC_CONTENTS]
        if engine.mirror is not None and engine.mirror.text == plaintext:
            # A session-opening full save of unchanged content: re-send
            # the mirror's existing ciphertext byte-identically (no
            # gratuitous re-encryption; the server can dedup it).
            ciphertext = engine.mirror.wire()
        else:
            ciphertext = engine.encrypt(plaintext)
        self._note_version(doc_id, engine)
        if self._stego:
            from repro.encoding.stego import stego_wrap
            ciphertext = stego_wrap(ciphertext)
        fields = {**form, protocol.F_DOC_CONTENTS: ciphertext}
        if self._indexer is not None:
            self._attach_catalog_fields(
                fields, self._indexer.set_text(doc_id, plaintext))
        return self._finish_update(request, fields)

    def _rewrite_delta_save(
        self, doc_id: str, request: HttpRequest, form: dict[str, str]
    ) -> HttpRequest:
        engine = self.engine(doc_id)
        delta = Delta.parse(form[protocol.F_DELTA])
        delta = self._counter.shape_delta(delta)
        cdelta = engine.mirror.apply_delta(delta) if engine.mirror else None
        if cdelta is None:
            # No mirror: the session never full-saved through us.
            raise PasswordError(
                f"no ciphertext mirror for {doc_id!r}; cannot transform "
                "delta"
            )
        self._note_version(doc_id, engine)
        if self._stego:
            from repro.encoding.stego import stego_rewrite_cdelta
            cdelta = stego_rewrite_cdelta(
                cdelta, engine.mirror._header.wire_length
            )
        fields = {**form, protocol.F_DELTA: cdelta.serialize()}
        if self._indexer is not None:
            self._attach_catalog_fields(
                fields, self._indexer.apply(doc_id, delta))
        return self._finish_update(request, fields)

    def _attach_catalog_fields(self, fields: dict[str, str],
                               records) -> None:
        """Ride the workspace's catalog maintenance on this save: the
        encrypted index delta records and (when enabled) the audit-trail
        opt-in.  Only indexer-equipped sessions ever reach here, so the
        legacy single-document wire stays byte-identical."""
        if records:
            fields[F_INDEX] = encode_records(records)
        if self._audit:
            fields[F_AUDIT] = "1"

    def _finish_update(
        self, request: HttpRequest, fields: dict[str, str]
    ) -> HttpRequest:
        fields = self._counter.pad_fields(fields)
        delay = self._counter.delay()
        if delay and self._clock is not None:
            self._clock.advance(delay)
        return request.with_form(fields)

    # -- Mediator: incoming -------------------------------------------------

    def on_response(
        self, request: HttpRequest, response: HttpResponse
    ) -> HttpResponse:
        """Decrypt content on the return path; neutralize Ack fields."""
        if not response.ok:
            return response
        doc_id = request.query.get("docID", "")
        if request.method == "GET":
            return self._decrypt_fetch(doc_id, response)
        try:
            fields = response.form
        except ProtocolError:
            # The body was mangled in flight and no longer parses as a
            # form.  Pass it through untouched: the client's own Ack
            # parse fails next and takes its malformed-ack recovery
            # path, which is the correct owner of that decision.
            return response
        if protocol.A_CONTENT_HASH in fields:
            return self._neutralize_ack(doc_id, response, fields)
        if protocol.F_SID in fields:
            return self._decrypt_open(doc_id, response, fields)
        return response

    def _decrypt_fetch(
        self, doc_id: str, response: HttpResponse
    ) -> HttpResponse:
        body = self._unwrap_if_stego(response.body)
        if body is not response.body:
            response = response.with_body(body)
        if not looks_encrypted(response.body):
            return response
        plain = self._try_decrypt(doc_id, response.body)
        if plain is None:
            return response  # appears as ciphertext (wrong password)
        return response.with_body(plain)

    def _decrypt_open(
        self, doc_id: str, response: HttpResponse, fields: dict[str, str]
    ) -> HttpResponse:
        content = self._unwrap_if_stego(fields.get(protocol.A_CONTENT, ""))
        fields = {**fields, protocol.A_CONTENT: content}
        if not looks_encrypted(content):
            return response
        plain = self._try_decrypt(doc_id, content)
        if plain is None:
            return response
        return response.with_form({**fields, protocol.A_CONTENT: plain})

    def _neutralize_ack(
        self, doc_id: str, response: HttpResponse, fields: dict[str, str]
    ) -> HttpResponse:
        divergent = self._verify_acks and self._ack_diverges(doc_id, fields)
        link = fields.get(A_AUDIT_LINK, "")
        if link and not divergent \
                and fields.get(protocol.A_STATUS) == "ok" \
                and fields.get(protocol.A_CONFLICT) != "1":
            try:
                rev = int(fields.get(protocol.A_REV, ""))
            except ValueError:
                rev = None
            if rev is not None:
                self.audit_trail[doc_id] = (
                    rev, fields.get(protocol.A_CONTENT_HASH, ""), link)
        content = self._unwrap_if_stego(fields.get(protocol.A_CONTENT, ""))
        if self._decrypt_acks and looks_encrypted(content):
            plain = self._try_decrypt(doc_id, content)
            if plain is not None:
                return response.with_form({
                    **fields,
                    protocol.A_CONTENT: plain,
                    protocol.A_CONTENT_HASH: protocol.content_hash(plain),
                })
        if fields.get(protocol.A_MERGED) == "1":
            followed = self._follow_merge(doc_id, fields)
            if followed is not None:
                return response.with_form(followed)
        neutral = {
            **fields,
            protocol.A_CONTENT: protocol.NEUTRAL_CONTENT,
            protocol.A_CONTENT_HASH: protocol.NEUTRAL_HASH,
        }
        if fields.get(protocol.A_MERGED) == "1":
            # A merging server rebased our delta past concurrent edits
            # but the patch could not be followed (no mirror, stego
            # framing, misaligned or undecryptable result).  Letting
            # the client continue on a stale mirror would corrupt the
            # stored ciphertext — downgrade to the paper's conflict
            # behaviour (complain + full-save recovery).
            _MERGE_DOWNGRADES.inc()
            neutral[protocol.A_MERGED] = "0"
            neutral[protocol.A_CONFLICT] = "1"
            neutral[protocol.A_MERGE_PATCH] = ""
        if divergent:
            # The server's stored bytes are not what we believe we
            # stored (corrupted in flight, tampered at rest).  Turn the
            # silent divergence into a conflict so the client resyncs.
            neutral[protocol.A_CONFLICT] = "1"
        return response.with_form(neutral)

    def _follow_merge(
        self, doc_id: str, fields: dict[str, str]
    ) -> dict[str, str] | None:
        """Fast-forward the mirror over a merged Ack's ``mergePatch``.

        The merging server rebased our cdelta past concurrent edits and
        sent back the mirror-image patch — a cdelta from *our* post-save
        wire to the merged wire.  Apply it to the mirror, verify the
        result against the Ack's content hash, and decrypt it so the
        oblivious client resyncs its editor to the merged plaintext: the
        whole merge costs zero extra round-trips and the server still
        only ever sees ciphertext.

        Returns the rewritten Ack fields, or None when following is
        unsafe — stego framing (the patch is in stego-wire coordinates),
        no mirror yet, a patch off the record grid, a hash mismatch
        (our mirror disagrees with what the server stored), or a patched
        wire that fails decryption — and the caller downgrades the Ack
        to the conflict path.
        """
        if self._stego:
            return None
        engine = self._engines.get(doc_id)
        mirror = engine.mirror if engine is not None else None
        if mirror is None:
            return None
        reported = fields.get(protocol.A_CONTENT_HASH, "")
        if not reported or reported == protocol.NEUTRAL_HASH:
            return None
        wire = mirror.wire()
        if protocol.content_hash(wire) == reported:
            # A replayed/duplicated merge Ack — the patch is already in
            # (patch application is not idempotent, so never re-apply).
            patched = wire
        else:
            patched = self._apply_merge_patch(wire, fields)
            if patched is None:
                return None
            if protocol.content_hash(patched) != reported:
                self.warnings.append(
                    f"{doc_id}: merge patch result disagrees with the "
                    "server's content hash (mirror stale?)"
                )
                return None
        plain = self._try_decrypt(doc_id, patched)
        if plain is None:
            return None
        _MERGE_FOLLOWS.inc()
        return {
            **fields,
            protocol.A_CONTENT: plain,
            protocol.A_CONTENT_HASH: protocol.content_hash(plain),
            protocol.A_MERGE_PATCH: "",
        }

    def _apply_merge_patch(
        self, wire: str, fields: dict[str, str]
    ) -> str | None:
        """Parse, grid-check, and apply the Ack's patch to ``wire``."""
        from repro.services import ot

        patch_text = fields.get(protocol.A_MERGE_PATCH, "")
        if not patch_text:
            return None
        try:
            patch = Delta.parse(patch_text)
        except DeltaError:
            return None
        if self._scheme == "recb":
            # Honest rECB cdeltas only splice whole records, and OT
            # preserves that — a patch off the record grid cannot be a
            # merge of honest cdeltas, so refuse before it touches the
            # mirror (rpc deltas also edit the header's version counter,
            # so their alignment is checked by decryption instead).
            try:
                header, _ = split_header(wire)
            except CiphertextFormatError:
                return None
            if not ot.grid_aligned(patch, header.wire_length,
                                   RECORD_CHARS):
                return None
        try:
            return patch.apply(wire)
        except DeltaError:
            return None

    def _ack_diverges(self, doc_id: str, fields: dict[str, str]) -> bool:
        """Does the Ack's content hash disagree with the mirror?

        Only meaningful when the server reports neither conflict nor
        merge (those already signal divergence) and we hold a mirror to
        compare against.
        """
        if fields.get(protocol.A_CONFLICT) == "1":
            return False
        if fields.get(protocol.A_MERGED) == "1":
            return False
        reported = fields.get(protocol.A_CONTENT_HASH, "")
        if not reported or reported == protocol.NEUTRAL_HASH:
            return False
        engine = self._engines.get(doc_id)
        mirror = engine.mirror if engine is not None else None
        if mirror is None:
            return False
        stored = mirror.wire()
        if self._stego:
            from repro.encoding.stego import stego_wrap
            stored = stego_wrap(stored)
        if protocol.content_hash(stored) == reported:
            return False
        _ACK_MISMATCHES.inc()
        self.warnings.append(
            f"{doc_id}: ack content hash diverges from mirror "
            "(stored ciphertext corrupted?)"
        )
        return True

    def _try_decrypt(self, doc_id: str, wire_text: str) -> str | None:
        engine = self.engine(doc_id)
        try:
            plain = engine.decrypt(wire_text)
        except (DecryptionError, IntegrityError, CiphertextFormatError,
                PasswordError) as exc:
            self.warnings.append(f"{doc_id}: {exc}")
            return None
        try:
            self._note_version(doc_id, engine, accepting=True)
        except IntegrityError as exc:  # RollbackError
            self.warnings.append(f"{doc_id}: {exc}")
            return None
        return plain

    def _note_version(self, doc_id: str, engine: EncryptionEngine,
                      accepting: bool = False) -> None:
        """Track the RPC version counter through the freshness monitor."""
        if self._freshness is None:
            return
        mirror = engine.mirror
        version = getattr(mirror, "version", None)
        if version is None:
            return
        if accepting:
            self._freshness.check(doc_id, version)
        self._freshness.observe(doc_id, version)

    def _unwrap_if_stego(self, content: str) -> str:
        from repro.encoding.stego import looks_stego, stego_unwrap
        if looks_stego(content):
            try:
                return stego_unwrap(content)
            except CiphertextFormatError as exc:
                self.warnings.append(f"stego unwrap failed: {exc}")
        return content
