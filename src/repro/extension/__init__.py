"""The browser-extension layer: mediators for all three services,
password management, covert-channel countermeasures, and the high-level
:class:`PrivateEditingSession`."""

from repro.extension.bespin_ext import BespinExtension
from repro.extension.buzzword_ext import BuzzwordExtension
from repro.extension.countermeasures import Countermeasures
from repro.extension.freshness import FreshnessMonitor, RollbackError
from repro.extension.gdocs_ext import GDocsExtension
from repro.extension.passwords import PasswordVault
from repro.extension.proxy import MediatingProxy
from repro.extension.session import PrivateEditingSession

__all__ = [
    "GDocsExtension",
    "BespinExtension",
    "BuzzwordExtension",
    "PasswordVault",
    "Countermeasures",
    "FreshnessMonitor",
    "RollbackError",
    "MediatingProxy",
    "PrivateEditingSession",
]
