"""The workspace indexer: encrypted search maintained as IncE runs.

The trusted half of the tenant catalog (the untrusted half is
:mod:`repro.services.catalog`).  A :class:`WorkspaceIndexer` owns the
tenant's search key material and keeps, per document, a plaintext
shadow plus a word-count map.  Every time the extension transforms a
save it hands the indexer the same plaintext delta it is about to
encrypt; the indexer touches only the *changed span* (expanded to word
boundaries — the IncE idea applied to indexing), updates its counts,
and emits encrypted index delta records for exactly the words whose
presence flipped:

* token — never leaves the client; the server sees only the trapdoor
  ``HMAC(k_search, word)``;
* posting — the doc id encrypted under a blob key derived from
  ``k_blob`` and the trapdoor, with a *deterministic* nonce
  ``HMAC(k_blob, trapdoor | doc_id)``: the same (word, doc) pair
  always produces the same blob, which is what lets the server dedup
  adds and honour removes over fully opaque bytes.

Determinism is a deliberate trade (and exactly the one the searchable-
encryption literature makes for updatable indexes): the server learns
that two updates touched the same (token, doc) pair, but never which
word or which plaintext.

Layering: this module lives in the trusted layer; it may import the
catalog's wire builders/codec but must never bind the server classes
(``tools/layering_check.py``).
"""

from __future__ import annotations

import hashlib
import hmac
import re
from collections import Counter

from repro.core.delta import Delete, Delta, Insert, Retain
from repro.obs import counter

__all__ = ["WorkspaceIndexer", "extract_words"]

#: index records emitted by workspace indexers (adds + removes)
_RECORDS_EMITTED = counter("extension.index_records")

_WORD_RE = re.compile(r"[a-z0-9]+")
_WORD_CHAR = re.compile(r"[a-zA-Z0-9]")

#: xor keystream block size (one HMAC-SHA256 output per block)
_BLOCK = 32


def extract_words(text: str) -> list[str]:
    """The tokenizer both the indexer and the search oracle use:
    lowercase alphanumeric runs (diacritics and CJK are out of scope
    for the reproduction — the paper's protocol carries ASCII-centric
    wire forms and the index inherits the simplification)."""
    return _WORD_RE.findall(text.lower())


class WorkspaceIndexer:
    """Tenant search keys + per-document word state + record emission."""

    def __init__(self, secret: str):
        raw = secret.encode("utf-8")
        self._k_search = hashlib.sha256(b"workspace-search|" + raw).digest()
        self._k_blob = hashlib.sha256(b"workspace-blob|" + raw).digest()
        self._trapdoors: dict[str, str] = {}
        # blobs are deterministic per (trapdoor, doc) — memoizing them
        # makes re-flipping a word (the typing workload's fragments)
        # cost a dict hit instead of three HMACs
        self._blobs: dict[tuple[str, str], str] = {}
        self._texts: dict[str, str] = {}
        self._counts: dict[str, Counter] = {}

    # -- key-derived primitives -----------------------------------------

    def trapdoor(self, word: str) -> str:
        """The opaque search token for ``word`` (cached per word)."""
        word = word.lower()
        cached = self._trapdoors.get(word)
        if cached is None:
            cached = hmac.digest(self._k_search, word.encode("utf-8"),
                                 "sha256").hex()[:32]
            self._trapdoors[word] = cached
        return cached

    def _nonce(self, trapdoor: str, doc_id: str) -> bytes:
        material = f"{trapdoor}|{doc_id}".encode("utf-8")
        return hmac.digest(self._k_blob, material, "sha256")[:8]

    def _keystream(self, trapdoor: str, nonce: bytes, length: int) -> bytes:
        out = bytearray()
        block = 0
        while len(out) < length:
            out.extend(hmac.digest(
                self._k_blob,
                nonce + trapdoor.encode("ascii") + block.to_bytes(4, "big"),
                "sha256",
            ))
            block += 1
        return bytes(out[:length])

    def blob(self, trapdoor: str, doc_id: str) -> str:
        """The (deterministic) encrypted posting for (trapdoor, doc)."""
        cached = self._blobs.get((trapdoor, doc_id))
        if cached is not None:
            return cached
        nonce = self._nonce(trapdoor, doc_id)
        plain = doc_id.encode("utf-8")
        stream = self._keystream(trapdoor, nonce, len(plain))
        ct = bytes(a ^ b for a, b in zip(plain, stream))
        encoded = (nonce + ct).hex()
        self._blobs[(trapdoor, doc_id)] = encoded
        return encoded

    def decrypt_blob(self, trapdoor: str, blob: str) -> str | None:
        """The doc id inside ``blob``, or None when the blob does not
        authenticate (forged or corrupted postings decrypt to ids whose
        recomputed nonce cannot match)."""
        try:
            raw = bytes.fromhex(blob)
        except ValueError:
            return None
        if len(raw) <= 8:
            return None
        nonce, ct = raw[:8], raw[8:]
        stream = self._keystream(trapdoor, nonce, len(ct))
        try:
            doc_id = bytes(a ^ b for a, b in zip(ct, stream)).decode("utf-8")
        except UnicodeDecodeError:
            return None
        if self._nonce(trapdoor, doc_id) != nonce:
            return None
        return doc_id

    # -- per-document state ---------------------------------------------

    def adopt(self, doc_id: str, text: str) -> None:
        """Take ``text`` as the document's current state *without*
        emitting records (opening a document that is already indexed)."""
        self._texts[doc_id] = text
        self._counts[doc_id] = Counter(extract_words(text))

    def forget(self, doc_id: str) -> None:
        """Drop all local state for ``doc_id`` (document closed)."""
        self._texts.pop(doc_id, None)
        self._counts.pop(doc_id, None)

    def text(self, doc_id: str) -> str:
        """The indexer's plaintext shadow of ``doc_id``."""
        return self._texts.get(doc_id, "")

    def set_text(self, doc_id: str, text: str
                 ) -> list[tuple[str, str, str]]:
        """Full-save path: diff the whole document's word counts."""
        counts = self._counts.setdefault(doc_id, Counter())
        changes = Counter(extract_words(text))
        changes.subtract(counts)
        records = self._emit(doc_id, counts, changes)
        self._texts[doc_id] = text
        return records

    def apply(self, doc_id: str, delta: Delta
              ) -> list[tuple[str, str, str]]:
        """Delta-save path: re-tokenize only the changed spans.

        The caller (the extension's delta-save rewrite) hands over the
        exact plaintext delta it encrypts, so the shadow tracks the
        ciphertext mirror revision for revision.  A coalesced burst may
        touch several distant edit sites; each contiguous changed span
        is diffed independently (one first-to-last span would drag the
        whole retained region between two sites through the tokenizer).
        """
        old = self._texts.get(doc_id, "")
        spans = _changed_spans(delta)
        new = delta.apply(old)
        self._texts[doc_id] = new
        if not spans:
            return []
        # expand every span to word boundaries: the prefix before a
        # span and the suffix beyond it are retained (identical in old
        # and new), so one expansion serves both coordinate systems
        expanded = []
        for start_old, end_old, start_new, end_new in spans:
            while start_old > 0 and _WORD_CHAR.match(old[start_old - 1]):
                start_old -= 1
                start_new -= 1
            while end_old < len(old) and _WORD_CHAR.match(old[end_old]):
                end_old += 1
                end_new += 1
            expanded.append((start_old, end_old, start_new, end_new))
        # expansions can run into each other through a gap that is all
        # word chars; merge overlaps so no word is diffed twice (the
        # retained text between merged spans cancels in the diff)
        merged = [expanded[0]]
        for span in expanded[1:]:
            prev = merged[-1]
            if span[0] <= prev[1]:
                merged[-1] = (prev[0], max(prev[1], span[1]),
                              prev[2], max(prev[3], span[3]))
            else:
                merged.append(span)
        counts = self._counts.setdefault(doc_id, Counter())
        changes: Counter = Counter()
        for start_old, end_old, start_new, end_new in merged:
            changes.update(extract_words(new[start_new:end_new]))
            changes.subtract(extract_words(old[start_old:end_old]))
        return self._emit(doc_id, counts, changes)

    def _emit(self, doc_id: str, counts: Counter, changes: Counter
              ) -> list[tuple[str, str, str]]:
        """Fold ``changes`` into ``counts``; records for 0↔n flips."""
        records: list[tuple[str, str, str]] = []
        for word, change in changes.items():
            if change == 0:
                continue
            before = counts[word]
            after = before + change
            if after > 0:
                counts[word] = after
            else:
                after = 0
                del counts[word]
            if before == 0 and after > 0:
                trap = self.trapdoor(word)
                records.append(("+", trap, self.blob(trap, doc_id)))
            elif before > 0 and after == 0:
                trap = self.trapdoor(word)
                records.append(("-", trap, self.blob(trap, doc_id)))
        _RECORDS_EMITTED.inc(len(records))
        return records


#: retains at most this long do not split a changed span — short hops
#: (fixing a word, a small selection) diff as one region, so the span
#: list stays small on dense local editing
_SPAN_MERGE_GAP = 32


def _changed_spans(delta: Delta
                   ) -> list[tuple[int, int, int, int]]:
    """The contiguous regions ``delta`` touches, in document order,
    as ``(start_old, end_old, start_new, end_new)`` — empty for a pure
    retain.  Retained text inside a span (gaps ≤ :data:`_SPAN_MERGE_GAP`)
    is identical in old and new, so diffing across it is harmless; a
    *long* retain closes the span, which is what keeps a burst spanning
    two distant edit sites from dragging everything between them into
    the tokenizer."""
    spans: list[tuple[int, int, int, int]] = []
    pos_old = pos_new = 0
    cur: list[int] | None = None
    for op in delta.ops:
        if isinstance(op, Retain):
            if cur is not None and op.count > _SPAN_MERGE_GAP:
                spans.append(tuple(cur))
                cur = None
            pos_old += op.count
            pos_new += op.count
        else:
            if cur is None:
                cur = [pos_old, pos_old, pos_new, pos_new]
            if isinstance(op, Insert):
                pos_new += len(op.text)
            else:
                pos_old += op.count
            cur[1], cur[3] = pos_old, pos_new
    if cur is not None:
        spans.append(tuple(cur))
    return spans
