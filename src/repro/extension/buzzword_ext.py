"""The Buzzword extension: encrypt the text inside ``<textRun>`` tags.

SIII: "By encrypting the text embedded in <textRun> tags, we keep
submitted document content secure."  The XML structure (paragraphs,
ordering) stays visible to the server — only the run contents are
ciphertext.  Each run is an independent ciphertext document under the
document's key, because Buzzword re-sends everything on every save
anyway.
"""

from __future__ import annotations

from repro.core.document import create_document, load_document
from repro.core.keys import KeyMaterial
from repro.encoding.wire import looks_encrypted
from repro.errors import (
    CiphertextFormatError,
    DecryptionError,
    IntegrityError,
    PasswordError,
)
from repro.extension.passwords import PasswordVault
from repro.net.http import HttpRequest, HttpResponse
from repro.services import buzzword

__all__ = ["BuzzwordExtension"]

_DOC_PREFIX = "/doc/"


class BuzzwordExtension:
    """Mediator encrypting Buzzword text runs."""

    def __init__(self, vault: PasswordVault, scheme: str = "recb",
                 block_chars: int = 8, rng=None):
        self._vault = vault
        self._scheme = scheme
        self._block_chars = block_chars
        self._rng = rng
        self._keys: dict[str, KeyMaterial] = {}
        self.warnings: list[str] = []

    def _key_for(self, doc_id: str) -> KeyMaterial:
        if doc_id not in self._keys:
            self._keys[doc_id] = KeyMaterial.from_password(
                self._vault.get(doc_id), rng=self._rng
            )
        return self._keys[doc_id]

    def on_request(self, request: HttpRequest) -> HttpRequest | None:
        """Encrypt every textRun in POSTed XML; drop unknown requests."""
        if not request.path.startswith(_DOC_PREFIX):
            return None
        doc_id = request.path[len(_DOC_PREFIX):]
        if request.method == "POST":
            keys = self._key_for(doc_id)
            encrypted = buzzword.map_text_runs(
                request.body,
                lambda run: create_document(
                    run,
                    key_material=keys,
                    scheme=self._scheme,
                    block_chars=self._block_chars,
                    rng=self._rng,
                ).wire(),
            )
            return request.with_body(encrypted)
        if request.method == "GET" and "/" not in doc_id:
            return request  # plain document fetch
        return None  # sub-resources (e.g. /wordcount) are unknown: drop

    def on_response(
        self, request: HttpRequest, response: HttpResponse
    ) -> HttpResponse:
        """Decrypt fetched textRuns for the oblivious client."""
        if not (response.ok and request.method == "GET"):
            return response
        doc_id = request.path[len(_DOC_PREFIX):]

        def decrypt_run(run: str) -> str:
            if not looks_encrypted(run):
                return run
            try:
                return load_document(
                    run, password=self._vault.get(doc_id)
                ).text
            except (DecryptionError, IntegrityError, CiphertextFormatError,
                PasswordError) as exc:
                self.warnings.append(f"{doc_id}: {exc}")
                return run

        return response.with_body(
            buzzword.map_text_runs(response.body, decrypt_run)
        )
