"""Per-service stack wiring: extension + client factories by name.

The session builder (and anything else assembling a full mediated
stack) picks a service out of :data:`repro.services.registry` and gets
the matching extension and client here.  This is the one place the
service-name → concrete-class mapping for the *trusted* side of the
stack lives; everything provider-specific below it is already behind
:class:`repro.services.backend.ServiceBackend`.

Google Documents is the protocol-rich case, so its extension takes the
full option set (countermeasures, stego, freshness, Ack handling...).
The Bespin and Buzzword extensions mediate much simpler whole-file
protocols and accept only the encryption options; the gdocs-only
options are simply not applicable there and are ignored.  The
``replicated`` service speaks gdocs on the wire, so it uses the gdocs
extension and client unchanged.
"""

from __future__ import annotations

from repro.client.bespin_client import BespinClient
from repro.client.buzzword_client import BuzzwordClient
from repro.client.gdocs_client import GDocsClient
from repro.client.resilient import ResilientClient
from repro.extension.bespin_ext import BespinExtension
from repro.extension.buzzword_ext import BuzzwordExtension
from repro.extension.gdocs_ext import GDocsExtension
from repro.extension.passwords import PasswordVault
from repro.net.channel import Channel
from repro.net.policy import RetryPolicy
from repro.services.registry import SERVICE_NAMES

__all__ = ["SERVICE_NAMES", "build_extension", "build_client"]


def build_extension(
    service: str,
    vault: PasswordVault,
    *,
    scheme: str = "recb",
    block_chars: int = 8,
    rng=None,
    index_factory=None,
    countermeasures=None,
    clock=None,
    decrypt_acks: bool = False,
    stego: bool = False,
    freshness=None,
    verify_acks: bool = False,
    indexer=None,
    audit: bool = False,
):
    """The mediating extension for ``service``.

    gdocs-only options (countermeasures, stego, freshness, Ack
    handling, index choice, the workspace indexer / audit-trail seam)
    are ignored by the whole-file extensions — their protocols have no
    Acks, deltas, or indexes to apply them to.
    """
    if service in ("gdocs", "replicated"):
        return GDocsExtension(
            vault,
            scheme=scheme,
            block_chars=block_chars,
            rng=rng,
            index_factory=index_factory,
            countermeasures=countermeasures,
            clock=clock,
            decrypt_acks=decrypt_acks,
            stego=stego,
            freshness=freshness,
            verify_acks=verify_acks,
            indexer=indexer,
            audit=audit,
        )
    if service == "bespin":
        return BespinExtension(vault, scheme=scheme,
                               block_chars=block_chars, rng=rng)
    if service == "buzzword":
        return BuzzwordExtension(vault, scheme=scheme,
                                 block_chars=block_chars, rng=rng)
    raise ValueError(
        f"unknown service {service!r}; expected one of {SERVICE_NAMES}"
    )


def build_client(service: str, channel: Channel, doc_id: str,
                 policy: RetryPolicy | None = None) -> ResilientClient:
    """The benign (extension-oblivious) client for ``service``."""
    if service in ("gdocs", "replicated"):
        return GDocsClient(channel, doc_id, policy=policy)
    if service == "bespin":
        return BespinClient(channel, doc_id, policy=policy)
    if service == "buzzword":
        return BuzzwordClient(channel, doc_id, policy=policy)
    raise ValueError(
        f"unknown service {service!r}; expected one of {SERVICE_NAMES}"
    )
