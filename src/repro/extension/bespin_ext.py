"""The Bespin extension: encrypt whole files inside PUT requests.

SIII: "By wrapping the PUT request with code that encrypts all user
data, the server only sees encrypted contents."  No incremental
machinery is involved — every save re-encrypts the file (which is why
the paper's incremental scheme matters for Google Documents, and why
the CoClo baseline looks like this).
"""

from __future__ import annotations

from repro.core.transform import EncryptionEngine
from repro.encoding.wire import looks_encrypted
from repro.errors import (
    CiphertextFormatError,
    DecryptionError,
    IntegrityError,
    PasswordError,
)
from repro.extension.passwords import PasswordVault
from repro.net.http import HttpRequest, HttpResponse

__all__ = ["BespinExtension"]

_FILE_PREFIX = "/file/at/"
_LIST_PREFIX = "/file/list/"


class BespinExtension:
    """Mediator wrapping the Bespin PUT/GET file protocol."""

    def __init__(self, vault: PasswordVault, scheme: str = "recb",
                 block_chars: int = 8, rng=None):
        self._vault = vault
        self._scheme = scheme
        self._block_chars = block_chars
        self._rng = rng
        self._engines: dict[str, EncryptionEngine] = {}
        self.warnings: list[str] = []

    def engine(self, path: str) -> EncryptionEngine:
        """Per-file encryption engine (created on first use)."""
        if path not in self._engines:
            self._engines[path] = EncryptionEngine(
                password=self._vault.get(path),
                scheme=self._scheme,
                block_chars=self._block_chars,
                rng=self._rng,
            )
        return self._engines[path]

    def on_request(self, request: HttpRequest) -> HttpRequest | None:
        """Encrypt PUT bodies; allow GET/DELETE/list; drop the rest."""
        if request.path.startswith(_FILE_PREFIX):
            name = request.path[len(_FILE_PREFIX):]
            if request.method == "PUT":
                return request.with_body(
                    self.engine(name).encrypt(request.body)
                )
            if request.method in ("GET", "DELETE"):
                return request
            return None
        if request.path.startswith(_LIST_PREFIX) and request.method == "GET":
            return request  # listings carry file names only
        return None

    def on_response(
        self, request: HttpRequest, response: HttpResponse
    ) -> HttpResponse:
        """Decrypt fetched files for the oblivious client."""
        if (
            response.ok
            and request.method == "GET"
            and request.path.startswith(_FILE_PREFIX)
            and looks_encrypted(response.body)
        ):
            name = request.path[len(_FILE_PREFIX):]
            try:
                return response.with_body(self.engine(name).decrypt(response.body))
            except (DecryptionError, IntegrityError, CiphertextFormatError,
                PasswordError) as exc:
                self.warnings.append(f"{name}: {exc}")
        return response
