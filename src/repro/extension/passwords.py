"""Per-document password management (SIV-C).

When a protected document is loaded, the real extension "prompts the
user with a dialog asking for various encryption parameters (e.g.,
password and schemes)".  The :class:`PasswordVault` models that: a
registry of known passwords plus an optional prompt callback standing in
for the dialog.  Sharing an encrypted document means sharing the
password out of band — so two users' vaults simply hold the same entry.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import PasswordError

__all__ = ["PasswordVault"]


class PasswordVault:
    """Maps document identity → password, with a prompt fallback."""

    def __init__(
        self,
        passwords: dict[str, str] | None = None,
        prompt: Callable[[str], str | None] | None = None,
    ):
        self._passwords = dict(passwords or {})
        self._prompt = prompt

    def register(self, doc_id: str, password: str) -> None:
        """Store a password (the 'set a password' dialog on create)."""
        if not password:
            raise PasswordError("password must be non-empty")
        self._passwords[doc_id] = password

    def forget(self, doc_id: str) -> None:
        """Drop the stored password for ``doc_id``."""
        self._passwords.pop(doc_id, None)

    def knows(self, doc_id: str) -> bool:
        """Is a password registered for ``doc_id``?"""
        return doc_id in self._passwords

    def get(self, doc_id: str) -> str:
        """Password for ``doc_id``, prompting if unknown."""
        if doc_id in self._passwords:
            return self._passwords[doc_id]
        if self._prompt is not None:
            answer = self._prompt(doc_id)
            if answer:
                self._passwords[doc_id] = answer
                return answer
        raise PasswordError(f"no password available for {doc_id!r}")
