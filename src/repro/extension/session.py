"""PrivateEditingSession: the one-call user experience of SIV-C.

"A user first installs the extension and activates it ... goes to
docs.google.com and uses its existing interface ... The extension
intercepts this request and prompts the user to set a password.  The
newly created document is now an encrypted document."

This module wires the whole stack — simulated server, channel with
latency, extension mediator, and the oblivious client — behind one
object, which is what the examples and macro-benchmarks drive.

The stack is service-parameterized: ``service`` picks any name from
:data:`repro.services.registry.SERVICE_NAMES` ("gdocs", "bespin",
"buzzword", "replicated"), and the registry plus
:mod:`repro.extension.stacks` assemble the matching server, mediating
extension, and client.  The user-facing surface (open / type / save /
``server_view``) is identical across services — the paper's claim that
the mediation approach generalizes, in executable form.
"""

from __future__ import annotations

from repro.client.resilient import SaveOutcome
from repro.extension.countermeasures import Countermeasures
from repro.extension.freshness import FreshnessMonitor
from repro.extension.passwords import PasswordVault
from repro.extension.stacks import build_client, build_extension
from repro.net.channel import Channel
from repro.net.latency import LatencyModel
from repro.services import registry

__all__ = ["PrivateEditingSession"]


class PrivateEditingSession:
    """A user editing one cloud document privately, on any service."""

    def __init__(
        self,
        doc_id: str,
        password: str,
        server=None,
        scheme: str = "recb",
        block_chars: int = 8,
        latency: LatencyModel | None = None,
        countermeasures: Countermeasures | None = None,
        extension_enabled: bool = True,
        rng=None,
        index_factory=None,
        decrypt_acks: bool = False,
        stego: bool = False,
        freshness: FreshnessMonitor | None = None,
        faults=None,
        retry_policy=None,
        verify_acks: bool = False,
        service: str = "gdocs",
        transport=None,
        clock=None,
        max_log: int | None = None,
        indexer=None,
        audit: bool = False,
    ):
        #: which cloud this session runs against (a
        #: repro.services.registry.SERVICE_NAMES name)
        self.service = service
        #: transport: an optional repro.net.transport.Transport that
        #: replaces the in-process server entirely (e.g. an
        #: AsyncioSocketTransport to a remote repro.net.server); when
        #: set, no local server is built and ``server`` is ignored.
        #: clock: share one SimClock across many sessions (load tests).
        self.transport = transport
        if transport is not None:
            self.server = None
        else:
            self.server = server if server is not None \
                else registry.make_server(service)
        #: faults: an optional repro.net.faults.FaultPlan making the
        #: cloud unreliable; retry_policy: the client's
        #: repro.net.policy.RetryPolicy answer to it; verify_acks: have
        #: the extension hash-check every Ack against its mirror
        self.faults = faults
        target = transport if transport is not None else self.server
        self.channel = Channel(target, latency=latency, clock=clock,
                               max_log=max_log, faults=faults)
        self.vault = PasswordVault({doc_id: password})
        self.extension = None
        if extension_enabled:
            self.extension = build_extension(
                service,
                self.vault,
                scheme=scheme,
                block_chars=block_chars,
                rng=rng,
                index_factory=index_factory,
                countermeasures=countermeasures,
                clock=self.channel.clock,
                decrypt_acks=decrypt_acks,
                stego=stego,
                freshness=freshness,
                verify_acks=verify_acks,
                # the workspace seam (PR 10): a shared
                # repro.extension.catalog.WorkspaceIndexer plus the
                # audit-trail opt-in, threaded per session by
                # repro.client.workspace.Workspace
                indexer=indexer,
                audit=audit,
            )
            self.channel.set_mediator(self.extension)
        self.client = build_client(service, self.channel, doc_id,
                                   policy=retry_policy)

    # -- user actions, delegated to the oblivious client ----------------

    def open(self) -> str:
        """Open (or create) the document; returns its plaintext."""
        self.client.open()
        return self.client.editor.text

    def type_text(self, pos: int, text: str) -> None:
        """User action: insert ``text`` at ``pos``."""
        self.client.type_text(pos, text)

    def delete_text(self, pos: int, count: int) -> None:
        """User action: delete ``count`` characters at ``pos``."""
        self.client.delete_text(pos, count)

    def save(self) -> SaveOutcome:
        """Autosave (full on the session's first save, delta after;
        whole-file services re-send everything every time)."""
        return self.client.save()

    def close(self) -> None:
        """Flush pending edits and end the session."""
        self.client.close()

    @property
    def text(self) -> str:
        """What the user sees."""
        return self.client.editor.text

    # -- inspection -------------------------------------------------------

    def server_view(self) -> str:
        """What the (untrusted) server stores for this document.

        Over a socket transport the bytes come back across the wire
        (the transport's ``server_view`` control frame); in-process the
        registry reads the local server's store directly — either way,
        the convergence oracle sees the same thing.
        """
        remote = getattr(self.transport, "server_view", None)
        if remote is not None:
            return remote(self.client.doc_id)
        return registry.server_view(self.service, self.server,
                                    self.client.doc_id)

    @property
    def complaints(self) -> list[str]:
        return self.client.complaints

    @property
    def now(self) -> float:
        """Simulated wall-clock (advanced by channel latency)."""
        return self.channel.clock.now()
