"""Standalone-proxy deployment (SIII, interception option 1).

"This is the most general approach, which could work for even
non-browser applications ...  The main disadvantage of using a proxy is
the difficulty in handling encrypted SSL/TLS communication."

A :class:`MediatingProxy` is one process mediating *many* applications:
it routes each request by host to the right upstream service and the
right mediator (the same mediator objects the browser extension uses —
deployment is orthogonal to mediation).  The TLS limitation is modelled
honestly: an ``https://`` request is opaque to a proxy, and the policy
for it is explicit — ``tls_policy="block"`` fails closed (private but
broken), ``tls_policy="tunnel"`` passes it through unmediated (works
but **leaks plaintext**, which the tests demonstrate).

The browser-extension deployment (the paper's choice) does not have
this problem because it hooks the browser *before* TLS encryption —
exactly the reason the paper gives for choosing it.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import BlockedRequestError
from repro.net.channel import Mediator
from repro.net.http import HttpRequest, HttpResponse

__all__ = ["MediatingProxy"]

Upstream = Callable[[HttpRequest], HttpResponse]


class MediatingProxy:
    """Routes and mediates requests for multiple services by host."""

    def __init__(
        self,
        upstreams: dict[str, Upstream],
        mediators: dict[str, Mediator],
        tls_policy: str = "block",
    ):
        if tls_policy not in ("block", "tunnel"):
            raise ValueError(f"unknown tls_policy {tls_policy!r}")
        self._upstreams = upstreams
        self._mediators = mediators
        self.tls_policy = tls_policy
        self.blocked: list[HttpRequest] = []
        self.tunnelled: list[HttpRequest] = []

    def __call__(self, request: HttpRequest) -> HttpResponse:
        host = request.host
        upstream = self._upstreams.get(host)
        if upstream is None:
            self.blocked.append(request)
            return HttpResponse(502, f"proxy: unknown upstream {host!r}")

        if request.url.startswith("https://"):
            if self.tls_policy == "block":
                self.blocked.append(request)
                return HttpResponse(
                    403,
                    "proxy: TLS traffic cannot be mediated; blocked "
                    "(fail closed)",
                )
            # tunnel: the proxy cannot see inside, so it cannot encrypt —
            # the request reaches the provider exactly as the client
            # sent it (i.e. plaintext).
            self.tunnelled.append(request)
            return upstream(request)

        mediator = self._mediators.get(host)
        if mediator is None:
            self.blocked.append(request)
            return HttpResponse(403, f"proxy: no mediator for {host!r}")

        mediated = mediator.on_request(request)
        if mediated is None:
            self.blocked.append(request)
            raise BlockedRequestError(
                f"proxy dropped unrecognized request "
                f"{request.method} {request.url}"
            )
        response = upstream(mediated)
        return mediator.on_response(mediated, response)
