"""Comparison baselines: CoClo-style whole-document re-encryption and
the naive fixed-alignment block store (the strawman of SV-C)."""

from repro.baselines.coclo import CocloDocument
from repro.baselines.naive_blocks import NaiveAlignedDocument

__all__ = ["CocloDocument", "NaiveAlignedDocument"]
