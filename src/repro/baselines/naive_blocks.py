"""Naive fixed-alignment block store: the strawman of SV-C.

"A straightforward approach would require re-aligning and re-encrypting
all subsequent blocks when a single character is inserted or deleted."
This baseline does exactly that: blocks are aligned at fixed
``block_chars`` boundaries of the document, so any length-changing edit
at position p forces every block from p onward to be re-packed and
re-encrypted.  The ablation benchmark shows this degenerating to
whole-document cost for edits near the front — the dilemma the
IndexedSkipList exists to solve.
"""

from __future__ import annotations

from repro.core import blocks
from repro.core.delta import Delete, Delta, Insert, Retain
from repro.core.keys import KeyMaterial
from repro.core.recb import RecbCodec
from repro.crypto.random import RandomSource, SystemRandomSource
from repro.encoding.wire import RECORD_CHARS, DocumentHeader, encode_records

__all__ = ["NaiveAlignedDocument"]


def _aligned_chunks(text: str, block_chars: int) -> list[str]:
    """Fixed-boundary chunking: block i always covers characters
    ``[i*b, (i+1)*b)`` — no slack, hence the realignment problem."""
    return [
        text[i : i + block_chars] for i in range(0, len(text), block_chars)
    ]


class NaiveAlignedDocument:
    """rECB over fixed-aligned blocks with realign-on-edit."""

    def __init__(
        self,
        text: str,
        password: str | None = None,
        key_material: KeyMaterial | None = None,
        block_chars: int = blocks.MAX_BLOCK_CHARS,
        rng: RandomSource | None = None,
    ):
        if key_material is None:
            if password is None:
                raise ValueError("a password or key material is required")
            key_material = KeyMaterial.from_password(password, rng=rng)
        self._keys = key_material
        self._block_chars = blocks.validate_block_chars(block_chars)
        self._rng = rng if rng is not None else SystemRandomSource()
        self._codec = RecbCodec(key_material.key, self._rng)
        self._state = self._codec.fresh_state()
        self._header = DocumentHeader(
            scheme="recb",
            block_chars=self._block_chars,
            nonce_bits=self._codec.nonce_bits,
            salt=key_material.salt,
        )
        self._text = text
        self._records = self._codec.encrypt_chunks(
            self._state, _aligned_chunks(text, self._block_chars)
        )
        #: cumulative count of blocks re-encrypted by updates (the
        #: ablation's cost metric, independent of wall clock)
        self.blocks_reencrypted = 0

    @property
    def text(self) -> str:
        return self._text

    @property
    def char_length(self) -> int:
        return len(self._text)

    def wire(self) -> str:
        """The full stored form (header + r0 record + data records)."""
        prefix = self._codec.prefix(self._state, None)
        return self._header.encode() + encode_records(prefix + self._records)

    def wire_length(self) -> int:
        """Length of :meth:`wire` in characters."""
        return self._header.wire_length + (1 + len(self._records)) * RECORD_CHARS

    def apply_delta(self, delta: Delta) -> Delta:
        """Apply an edit; realign and re-encrypt every affected-or-later
        block; return the cdelta."""
        new_text = delta.apply(self._text)
        span = delta.source_span()
        if span is None:
            return Delta(())
        first_block = span[0] // self._block_chars
        # Pure same-length replacement within one block still realigns
        # nothing after it, but any length change shifts all later
        # boundaries: re-encrypt from the first touched block to the end.
        if delta.length_change == 0 and span[1] <= (first_block + 1) * self._block_chars:
            end_block = first_block + 1
        else:
            end_block = None  # to the end

        new_chunks = _aligned_chunks(new_text, self._block_chars)
        tail = (
            new_chunks[first_block:end_block]
            if end_block is not None
            else new_chunks[first_block:]
        )
        new_records = self._codec.encrypt_chunks(self._state, tail)
        self.blocks_reencrypted += len(new_records)

        old_count = len(self._records)
        if end_block is None:
            self._records = self._records[:first_block] + new_records
        else:
            self._records = (
                self._records[:first_block]
                + new_records
                + self._records[end_block:]
            )
        self._text = new_text

        base = self._header.wire_length + RECORD_CHARS  # header + r0 record
        replaced_old = (
            old_count - first_block if end_block is None
            else end_block - first_block
        )
        ops = []
        pos = base + first_block * RECORD_CHARS
        if pos:
            ops.append(Retain(pos))
        if replaced_old:
            ops.append(Delete(replaced_old * RECORD_CHARS))
        if new_records:
            ops.append(Insert(encode_records(new_records)))
        return Delta(ops)

    def insert(self, pos: int, text: str) -> Delta:
        """Insert text; realigns and re-encrypts every later block."""
        return self.apply_delta(Delta.insertion(pos, text))

    def delete(self, pos: int, count: int) -> Delta:
        """Delete a range; realigns and re-encrypts every later block."""
        return self.apply_delta(Delta.deletion(pos, count))
