"""CoClo-style baseline: re-encrypt the whole document on every update.

The paper positions itself against CoClo [12], "which requires
reencrypting and transmitting the entire document for every update".
This baseline gives that comparison a concrete implementation with the
*same* cipher, wire format, and key handling as the incremental scheme —
so the ablation benchmark isolates exactly the incremental-vs-whole
question (CPU per update and bytes transmitted per update).
"""

from __future__ import annotations

from repro.core import blocks
from repro.core.delta import Delete, Delta, Insert, Retain
from repro.core.document import EncryptedDocument, create_document
from repro.core.keys import KeyMaterial
from repro.crypto.random import RandomSource

__all__ = ["CocloDocument"]


class CocloDocument:
    """Whole-document re-encryption under the rECB block layout.

    API mirrors :class:`repro.core.document.EncryptedDocument` closely
    enough for the benchmarks: ``apply_delta`` returns the cdelta the
    client must transmit — which is always a full replacement.
    """

    def __init__(
        self,
        text: str,
        password: str | None = None,
        key_material: KeyMaterial | None = None,
        scheme: str = "recb",
        block_chars: int = blocks.MAX_BLOCK_CHARS,
        rng: RandomSource | None = None,
    ):
        if key_material is None:
            if password is None:
                raise ValueError("a password or key material is required")
            key_material = KeyMaterial.from_password(password, rng=rng)
        self._keys = key_material
        self._scheme = scheme
        self._block_chars = block_chars
        self._rng = rng
        self._doc: EncryptedDocument = self._encrypt(text)

    def _encrypt(self, text: str) -> EncryptedDocument:
        return create_document(
            text,
            key_material=self._keys,
            scheme=self._scheme,
            block_chars=self._block_chars,
            rng=self._rng,
        )

    # -- EncryptedDocument-compatible surface -----------------------------

    @property
    def text(self) -> str:
        return self._doc.text

    @property
    def char_length(self) -> int:
        return self._doc.char_length

    def wire(self) -> str:
        """The full stored form (header + record area)."""
        return self._doc.wire()

    def wire_length(self) -> int:
        """Length of :meth:`wire` in characters."""
        return self._doc.wire_length()

    def blowup(self) -> float:
        """Stored characters per plaintext character."""
        return self._doc.blowup()

    def apply_delta(self, delta: Delta) -> Delta:
        """Re-encrypt everything; the cdelta replaces the whole record
        area (header retained: same key, same salt)."""
        old_area = self._doc.wire_length() - self._doc._header.wire_length
        new_text = delta.apply(self._doc.text)
        self._doc = self._encrypt(new_text)
        new_wire = self._doc.wire()
        header_len = self._doc._header.wire_length
        ops = [Retain(header_len)]
        if old_area:
            ops.append(Delete(old_area))
        ops.append(Insert(new_wire[header_len:]))
        return Delta(ops)

    def insert(self, pos: int, text: str) -> Delta:
        """Insert text; re-encrypts the whole document (CoClo's cost)."""
        return self.apply_delta(Delta.insertion(pos, text))

    def delete(self, pos: int, count: int) -> Delta:
        """Delete a range; re-encrypts the whole document."""
        return self.apply_delta(Delta.deletion(pos, count))
