"""Deriving a delta between two document versions.

The micro-benchmark (SVII-B) needs, "for every (D, D') pair, a delta
string ... such that it transforms D to D'".  Two derivations are
provided:

* :func:`simple_delta` — trim the common prefix and suffix, replace the
  middle.  O(n), and for the benchmark's *random* string pairs (which
  share almost nothing) it is also near-minimal.
* :func:`myers_delta` — Myers' O((N+M)·D) greedy diff, minimal in edit
  distance; used when the two versions are actually related (real
  editing).  A ``max_distance`` bound caps the quadratic blow-up on
  unrelated inputs by falling back to :func:`simple_delta`.

Both return deltas that satisfy ``delta.apply(old) == new`` (a
property-test invariant).
"""

from __future__ import annotations

from repro.core.delta import Delete, Delta, DeltaOp, Insert, Retain

__all__ = ["simple_delta", "myers_delta", "derive_delta"]


def simple_delta(old: str, new: str) -> Delta:
    """Common-prefix/suffix trim; replace the differing middle."""
    if old == new:
        return Delta(())
    prefix = 0
    limit = min(len(old), len(new))
    while prefix < limit and old[prefix] == new[prefix]:
        prefix += 1
    suffix = 0
    while (
        suffix < limit - prefix
        and old[len(old) - 1 - suffix] == new[len(new) - 1 - suffix]
    ):
        suffix += 1
    ops: list[DeltaOp] = []
    if prefix:
        ops.append(Retain(prefix))
    deleted = len(old) - prefix - suffix
    if deleted:
        ops.append(Delete(deleted))
    inserted = new[prefix : len(new) - suffix]
    if inserted:
        ops.append(Insert(inserted))
    return Delta(ops)


def myers_delta(old: str, new: str, max_distance: int | None = None) -> Delta:
    """Minimal-edit delta via Myers' greedy algorithm.

    ``max_distance`` bounds the edit distance explored; beyond it the
    function falls back to :func:`simple_delta` (still correct, just not
    minimal).
    """
    n, m = len(old), len(new)
    if old == new:
        return Delta(())
    bound = max_distance if max_distance is not None else n + m
    bound = min(bound, n + m)

    # Standard greedy forward Myers with a trace for backtracking.
    offset = bound
    v = [0] * (2 * bound + 2)
    trace: list[list[int]] = []
    found = False
    for d in range(bound + 1):
        trace.append(v.copy())
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v[offset + k - 1] < v[offset + k + 1]):
                x = v[offset + k + 1]          # down: insertion from new
            else:
                x = v[offset + k - 1] + 1      # right: deletion from old
            y = x - k
            while x < n and y < m and old[x] == new[y]:
                x += 1
                y += 1
            v[offset + k] = x
            if x >= n and y >= m:
                found = True
                break
        if found:
            break
    if not found:
        return simple_delta(old, new)

    # Backtrack through the trace collecting reversed edit steps.
    steps: list[tuple[str, int]] = []  # ("=", n) / ("-", 1) / ("+", y_index)
    x, y = n, m
    for depth in range(d, 0, -1):
        prev = trace[depth]
        k = x - y
        if k == -depth or (
            k != depth and prev[offset + k - 1] < prev[offset + k + 1]
        ):
            prev_k = k + 1  # came from an insertion
        else:
            prev_k = k - 1  # came from a deletion
        prev_x = prev[offset + prev_k]
        prev_y = prev_x - prev_k
        while x > prev_x and y > prev_y:
            steps.append(("=", 1))
            x -= 1
            y -= 1
        if prev_k == k + 1:
            y -= 1
            steps.append(("+", y))
        else:
            x -= 1
            steps.append(("-", 1))
    while x > 0 and y > 0:
        steps.append(("=", 1))
        x -= 1
        y -= 1

    ops: list[DeltaOp] = []
    retain = 0
    delete = 0
    insert_chars: list[str] = []

    def flush() -> None:
        nonlocal retain, delete
        if retain:
            ops.append(Retain(retain))
            retain = 0
        if delete:
            ops.append(Delete(delete))
            delete = 0
        if insert_chars:
            ops.append(Insert("".join(insert_chars)))
            insert_chars.clear()

    for kind, value in reversed(steps):
        if kind == "=":
            if delete or insert_chars:
                flush()
            retain += 1
        elif kind == "-":
            if retain and (delete or insert_chars):
                flush()
            delete += 1
        else:
            if retain and (delete or insert_chars):
                flush()
            insert_chars.append(new[value])
    if delete or insert_chars:
        flush()
    return Delta(ops)


def derive_delta(old: str, new: str, minimal_threshold: int = 400) -> Delta:
    """Practical derivation: Myers when the edit looks small, trim
    otherwise (how a real client would behave)."""
    return myers_delta(old, new, max_distance=minimal_threshold)
