"""Document corpora matching the paper's benchmark setups.

* SVII-B micro-benchmark: ``(D, D')`` pairs with lengths uniform in
  [100, 10000];
* SVII-C macro-benchmark: "small" files of roughly 500 characters and
  "large" files of roughly 10000 characters;
* SVII-D block-size sweep: documents of exactly 10000 characters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.workloads.text import make_text

__all__ = [
    "SMALL_FILE_CHARS",
    "LARGE_FILE_CHARS",
    "MICRO_MIN_CHARS",
    "MICRO_MAX_CHARS",
    "MicroPair",
    "small_document",
    "large_document",
    "document_of_length",
    "micro_pairs",
]

SMALL_FILE_CHARS = 500
LARGE_FILE_CHARS = 10_000
MICRO_MIN_CHARS = 100
MICRO_MAX_CHARS = 10_000


@dataclass(frozen=True)
class MicroPair:
    """One micro-benchmark test case: a before/after document pair."""

    before: str
    after: str


def document_of_length(length: int, seed: int = 0) -> str:
    """A deterministic prose document of exactly ``length`` chars."""
    return make_text(length, random.Random(seed))


def small_document(seed: int = 0) -> str:
    """A ~500-character file (the macro-benchmark "small" case)."""
    return document_of_length(SMALL_FILE_CHARS, seed)


def large_document(seed: int = 0) -> str:
    """A ~10000-character file (the macro-benchmark "large" case)."""
    return document_of_length(LARGE_FILE_CHARS, seed)


def micro_pairs(
    count: int,
    seed: int = 0,
    min_chars: int = MICRO_MIN_CHARS,
    max_chars: int = MICRO_MAX_CHARS,
    related: bool = False,
) -> Iterator[MicroPair]:
    """Generate (D, D') pairs as in SVII-B.

    With ``related=False`` (the paper's setup) D and D' are independent
    random documents; ``related=True`` instead derives D' from D by a
    burst of local edits, modelling a realistic save-to-save difference.
    """
    rng = random.Random(seed)
    for _ in range(count):
        before = make_text(rng.randint(min_chars, max_chars), rng)
        if related:
            after = _perturb(before, rng)
        else:
            after = make_text(rng.randint(min_chars, max_chars), rng)
        yield MicroPair(before, after)


def _perturb(text: str, rng: random.Random) -> str:
    """Apply a few local edits to ``text``."""
    out = text
    for _ in range(rng.randint(1, 5)):
        if out and rng.random() < 0.5:
            pos = rng.randrange(len(out))
            count = min(len(out) - pos, rng.randint(1, 30))
            out = out[:pos] + out[pos + count :]
        else:
            pos = rng.randint(0, len(out))
            out = out[:pos] + make_text(rng.randint(1, 40), rng) + out[pos:]
    return out
