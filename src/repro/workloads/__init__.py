"""Workload generation: documents, edit scripts, diffs, session traces."""

from repro.workloads.diff import derive_delta, myers_delta, simple_delta
from repro.workloads.documents import (
    LARGE_FILE_CHARS,
    MICRO_MAX_CHARS,
    MICRO_MIN_CHARS,
    SMALL_FILE_CHARS,
    MicroPair,
    document_of_length,
    large_document,
    micro_pairs,
    small_document,
)
from repro.workloads.edits import (
    CATEGORIES,
    edit_stream,
    sentence_delete,
    sentence_insert,
    sentence_replace,
    typing_burst,
)
from repro.workloads.text import make_text, random_sentence, split_sentences
from repro.workloads.traces import EditingTrace, TraceEvent, make_trace

__all__ = [
    "simple_delta",
    "myers_delta",
    "derive_delta",
    "MicroPair",
    "micro_pairs",
    "small_document",
    "large_document",
    "document_of_length",
    "SMALL_FILE_CHARS",
    "LARGE_FILE_CHARS",
    "MICRO_MIN_CHARS",
    "MICRO_MAX_CHARS",
    "CATEGORIES",
    "edit_stream",
    "sentence_insert",
    "sentence_delete",
    "sentence_replace",
    "typing_burst",
    "make_text",
    "random_sentence",
    "split_sentences",
    "EditingTrace",
    "TraceEvent",
    "make_trace",
]
