"""Synthetic English-like text generation.

The paper's benchmarks use "probabilistically generated test cases";
this module produces deterministic (seeded) documents that look like
prose — words, sentences, paragraphs — so sentence-level macro-bench
edits (SVII-C) have real sentence structure to operate on.
"""

from __future__ import annotations

import random

__all__ = [
    "WORDS",
    "random_word",
    "random_sentence",
    "make_text",
    "split_sentences",
]

#: a compact vocabulary; enough variety that block contents don't repeat
WORDS = (
    "the quick brown fox jumps over a lazy dog while clouds drift past "
    "mountain rivers and silent forests where hidden paths wind toward "
    "distant villages full of markets music laughter old stories bright "
    "lanterns warm bread cold rain paper letters secret gardens broken "
    "clocks wooden boats copper bells velvet curtains amber light"
).split()


def random_word(rng: random.Random) -> str:
    """Draw one word from the vocabulary."""
    return rng.choice(WORDS)


def random_sentence(rng: random.Random, min_words: int = 4,
                    max_words: int = 14) -> str:
    """Generate one capitalized, period-terminated sentence."""
    count = rng.randint(min_words, max_words)
    words = [random_word(rng) for _ in range(count)]
    words[0] = words[0].capitalize()
    return " ".join(words) + "."


def make_text(length: int, rng: random.Random) -> str:
    """Generate prose of exactly ``length`` characters.

    Sentences are appended until the target is passed, then the text is
    cut to size (so its statistical shape matches real typing rather
    than ending exactly on a sentence boundary).
    """
    if length <= 0:
        return ""
    pieces: list[str] = []
    total = 0
    while total < length:
        sentence = random_sentence(rng)
        pieces.append(sentence)
        total += len(sentence) + 1
    return " ".join(pieces)[:length]


def split_sentences(text: str) -> list[tuple[int, int]]:
    """Locate sentences as ``(start, end)`` spans.

    A sentence runs up to and including its period (plus one trailing
    space when present).  Text without periods is one sentence.
    """
    spans: list[tuple[int, int]] = []
    start = 0
    i = 0
    n = len(text)
    while i < n:
        if text[i] == ".":
            end = i + 1
            if end < n and text[end] == " ":
                end += 1
            spans.append((start, end))
            start = end
            i = end
        else:
            i += 1
    if start < n:
        spans.append((start, n))
    return spans
