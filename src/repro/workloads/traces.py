"""Editing-session traces: what Selenium drove in the paper, as data.

A trace is a timed sequence of user actions — open the document, type in
bursts, pause, close — from which the simulated client derives its
save/delta traffic (the client batches all edits since the last autosave
into one delta, exactly as Google Documents did with its periodic
timeout-triggered saves).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


from repro.core.delta import Delta
from repro.workloads import edits as edit_gen

__all__ = ["TraceEvent", "EditingTrace", "make_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One user edit at a simulated wall-clock time (seconds)."""

    at: float
    delta: Delta


@dataclass(frozen=True)
class EditingTrace:
    """A full editing session over a starting document."""

    initial_text: str
    events: tuple[TraceEvent, ...]

    def final_text(self) -> str:
        """The document after every trace event has applied."""
        text = self.initial_text
        for event in self.events:
            text = event.delta.apply(text)
        return text

    def deltas_between(self, start: float, end: float) -> list[Delta]:
        """Edits with ``start < at <= end`` (one autosave window)."""
        return [e.delta for e in self.events if start < e.at <= end]


def make_trace(
    initial_text: str,
    seed: int = 0,
    duration: float = 60.0,
    mean_gap: float = 2.0,
    category: str = "inserts & deletes",
    sentence_edit_prob: float = 0.3,
) -> EditingTrace:
    """Generate a session: mostly typing bursts, occasionally a
    sentence-level edit, spaced by exponential think-time gaps."""
    rng = random.Random(seed)
    events: list[TraceEvent] = []
    text = initial_text
    clock = 0.0
    while True:
        clock += rng.expovariate(1.0 / mean_gap)
        if clock > duration:
            break
        if rng.random() < sentence_edit_prob and text:
            delta = next(iter(edit_gen.edit_stream(text, category, rng, 1)))
        else:
            delta = edit_gen.typing_burst(text, rng)
        events.append(TraceEvent(at=clock, delta=delta))
        text = delta.apply(text)
    return EditingTrace(initial_text=initial_text, events=tuple(events))
