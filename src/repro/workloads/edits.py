"""Edit-script generators for the macro-benchmarks (SVII-C).

A macro test case is "a whole document save followed by either replacing
an existing sentence with a different one or inserting or deleting an
arbitrary sentence or group of sentences".  The generators here produce
those deltas against a given document, in the four categories of
Fig. 5 / Fig. 8: inserts only, deletes only, inserts & deletes
(including replacement), plus character-level typing edits used by the
session traces.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.delta import Delta
from repro.workloads.text import random_sentence, split_sentences

__all__ = [
    "sentence_insert",
    "sentence_delete",
    "sentence_replace",
    "typing_burst",
    "edit_stream",
    "CATEGORIES",
]

#: macro-benchmark workload categories, paper row order
CATEGORIES = ("inserts only", "deletes only", "inserts & deletes")


def sentence_insert(document: str, rng: random.Random,
                    max_sentences: int = 3) -> Delta:
    """Insert one or more fresh sentences at a sentence boundary."""
    spans = split_sentences(document)
    boundaries = [0] + [end for _, end in spans]
    pos = rng.choice(boundaries)
    text = " ".join(
        random_sentence(rng) for _ in range(rng.randint(1, max_sentences))
    )
    if pos:
        text = " " + text if document[pos - 1] != " " else text
    return Delta.insertion(pos, text)


def sentence_delete(document: str, rng: random.Random,
                    max_sentences: int = 3) -> Delta:
    """Delete an arbitrary sentence or group of sentences."""
    spans = split_sentences(document)
    if not spans:
        raise ValueError("document has no sentences to delete")
    first = rng.randrange(len(spans))
    last = min(len(spans) - 1, first + rng.randint(0, max_sentences - 1))
    start = spans[first][0]
    end = spans[last][1]
    return Delta.deletion(start, end - start)


def sentence_replace(document: str, rng: random.Random) -> Delta:
    """Replace an existing sentence with a different one."""
    spans = split_sentences(document)
    if not spans:
        raise ValueError("document has no sentences to replace")
    start, end = rng.choice(spans)
    replacement = random_sentence(rng)
    if document[end - 1 : end] == " ":
        replacement += " "
    return Delta.replacement(start, end - start, replacement)


def typing_burst(document: str, rng: random.Random,
                 max_chars: int = 20) -> Delta:
    """A character-level typing burst at a random position (used by
    session traces: a user types a few characters between autosaves)."""
    pos = rng.randint(0, len(document))
    text = "".join(
        rng.choice("abcdefghijklmnopqrstuvwxyz ")
        for _ in range(rng.randint(1, max_chars))
    )
    return Delta.insertion(pos, text)


def edit_stream(document: str, category: str, rng: random.Random,
                count: int) -> Iterator[Delta]:
    """Yield ``count`` deltas of the given category, each applying to
    the document as evolved by the previous ones."""
    current = document
    for _ in range(count):
        if category == "inserts only":
            delta = sentence_insert(current, rng)
        elif category == "deletes only":
            if not current:
                delta = sentence_insert(current, rng)  # refill when drained
            else:
                delta = sentence_delete(current, rng)
        elif category == "inserts & deletes":
            roll = rng.random()
            if not current or roll < 0.34:
                delta = sentence_insert(current, rng)
            elif roll < 0.67:
                delta = sentence_delete(current, rng)
            else:
                delta = sentence_replace(current, rng)
        else:
            raise ValueError(f"unknown category {category!r}")
        yield delta
        current = delta.apply(current)
