"""Instrument kinds and the registry.

Design constraints, in order:

1. **Hot-path cost.** ``Counter.inc`` sits inside ``AES.encrypt_block``
   and the skip-list search loops; it must be a slot attribute add
   behind one global-flag check, nothing more.  Callers in tight loops
   accumulate locally and ``inc(n)`` once per operation.
2. **No dependencies.** Pure stdlib, no imports from the rest of
   ``repro`` — every layer can instrument itself without cycles.
3. **Deterministic naming.** Instruments live in a flat dotted
   namespace (``crypto.aes.calls``); re-requesting a name returns the
   same instrument, and requesting it as a different kind is an error.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Counter", "Gauge", "Histogram", "Timer", "Registry", "Scope",
    "Capture", "capture", "counter", "gauge", "histogram", "span",
    "default_registry", "set_enabled", "is_enabled", "value_of",
]

#: process-wide instrumentation switch; read by every ``inc``/``set``/
#: ``observe``.  A module-global read is the cheapest gate available to
#: pure Python (one dict lookup).
_ENABLED = True


def set_enabled(flag: bool) -> bool:
    """Turn all instrumentation on or off; returns the previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


def is_enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return _ENABLED


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` events (callers batch loop-local counts into one call)."""
        if _ENABLED:
            self.value += n

    def reset(self) -> None:
        """Zero the count."""
        self.value = 0


class Gauge:
    """A value that goes up and down (current level of something)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        if _ENABLED:
            self.value = value

    def add(self, n: float) -> None:
        """Shift the current level by ``n`` (may be negative)."""
        if _ENABLED:
            self.value += n

    def reset(self) -> None:
        """Zero the level."""
        self.value = 0.0


class Histogram:
    """A distribution of observations with percentile summaries.

    Keeps exact ``count``/``total``/``min``/``max`` plus a bounded
    ring of the most recent observations (``max_samples``, default
    4096) from which percentiles are computed — long benchmark
    sessions cannot grow memory without bound.
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_samples", "_max_samples", "_next")
    kind = "histogram"

    def __init__(self, name: str, max_samples: int = 4096):
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self._max_samples = max_samples
        self.reset()

    def observe(self, value: float) -> None:
        """Record one observation."""
        if not _ENABLED:
            return
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self._max_samples:
            self._samples.append(value)
        else:
            self._samples[self._next] = value
            self._next = (self._next + 1) % self._max_samples

    def reset(self) -> None:
        """Forget all observations."""
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._next = 0

    @property
    def mean(self) -> float:
        """Exact mean over *all* observations (not just retained ones)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of retained observations.

        Nearest-rank over the sample ring; exact while fewer than
        ``max_samples`` observations have been made.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1,
                          round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        """The exported shape: count, sum, min/max, mean, p50/p90/p99."""
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class Timer:
    """Times code blocks into a :class:`Histogram` of seconds."""

    __slots__ = ("histogram",)

    def __init__(self, hist: Histogram):
        self.histogram = hist

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager: observe the block's wall-clock duration."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.histogram.observe(time.perf_counter() - start)


class Registry:
    """A named, flat namespace of instruments.

    Creation is get-or-create: two calls with the same name return the
    same instrument (guarded by a lock so concurrent layers may
    register freely); the same name requested as a different kind
    raises ``ValueError``.
    """

    def __init__(self, name: str = "repro"):
        self.name = name
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, requested {cls.kind}"
                    )
                return existing
            instrument = cls(name, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, max_samples: int = 4096) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get_or_create(name, Histogram, max_samples=max_samples)

    def timer(self, name: str) -> Timer:
        """Get or create a timer over the histogram ``name``."""
        return Timer(self.histogram(name))

    def scope(self, prefix: str) -> "Scope":
        """A view that prefixes every instrument name with ``prefix.``."""
        return Scope(self, prefix)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The instrument registered under ``name``, or None."""
        return self._instruments.get(name)

    def names(self) -> list[str]:
        """All registered instrument names, sorted."""
        return sorted(self._instruments)

    def instruments(self) -> Iterator[Counter | Gauge | Histogram]:
        """Yield every instrument in name order."""
        for name in self.names():
            yield self._instruments[name]

    def snapshot(self) -> dict[str, float]:
        """Scalar view of every instrument, for diffing.

        Counters and gauges map to their value; histograms map to their
        observation *count* (the diffable quantity).
        """
        out: dict[str, float] = {}
        for instrument in self.instruments():
            if isinstance(instrument, Histogram):
                out[instrument.name] = instrument.count
            else:
                out[instrument.name] = instrument.value
        return out

    def reset(self) -> None:
        """Zero every instrument (names stay registered)."""
        for instrument in self._instruments.values():
            instrument.reset()


class Scope:
    """A prefixed view of a registry (``scope('crypto.aes')``)."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: Registry, prefix: str):
        self._registry = registry
        self._prefix = prefix.rstrip(".")

    def _full(self, name: str) -> str:
        return f"{self._prefix}.{name}" if self._prefix else name

    def counter(self, name: str) -> Counter:
        """Get or create ``<prefix>.<name>`` as a counter."""
        return self._registry.counter(self._full(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create ``<prefix>.<name>`` as a gauge."""
        return self._registry.gauge(self._full(name))

    def histogram(self, name: str, max_samples: int = 4096) -> Histogram:
        """Get or create ``<prefix>.<name>`` as a histogram."""
        return self._registry.histogram(self._full(name),
                                        max_samples=max_samples)

    def timer(self, name: str) -> Timer:
        """Get or create a timer over ``<prefix>.<name>``."""
        return self._registry.timer(self._full(name))

    def scope(self, prefix: str) -> "Scope":
        """A nested scope ``<prefix>.<sub>``."""
        return Scope(self._registry, self._full(prefix))


_DEFAULT = Registry("repro")


def default_registry() -> Registry:
    """The process-global registry all library instrumentation uses."""
    return _DEFAULT


def counter(name: str) -> Counter:
    """Get or create ``name`` on the default registry."""
    return _DEFAULT.counter(name)


def gauge(name: str) -> Gauge:
    """Get or create ``name`` on the default registry."""
    return _DEFAULT.gauge(name)


def histogram(name: str, max_samples: int = 4096) -> Histogram:
    """Get or create ``name`` on the default registry."""
    return _DEFAULT.histogram(name, max_samples=max_samples)


def value_of(name: str, registry: Registry | None = None) -> float:
    """Scalar value of ``name`` (0 if unregistered) — snapshot semantics."""
    reg = registry if registry is not None else _DEFAULT
    instrument = reg.get(name)
    if instrument is None:
        return 0
    if isinstance(instrument, Histogram):
        return instrument.count
    return instrument.value


@contextmanager
def span(name: str, registry: Registry | None = None) -> Iterator[None]:
    """Trace span: time the block into histogram ``name`` (seconds)."""
    reg = registry if registry is not None else _DEFAULT
    hist = reg.histogram(name)
    start = time.perf_counter()
    try:
        yield
    finally:
        hist.observe(time.perf_counter() - start)


class Capture:
    """Deltas of every instrument across a :func:`capture` block.

    Indexable by metric name after the block exits; names absent from
    either snapshot read as 0 change.
    """

    def __init__(self) -> None:
        self._deltas: dict[str, float] = {}

    def _finish(self, before: dict[str, float],
                after: dict[str, float]) -> None:
        for name in set(before) | set(after):
            self._deltas[name] = after.get(name, 0) - before.get(name, 0)

    def __getitem__(self, name: str) -> float:
        return self._deltas.get(name, 0)

    def get(self, name: str, default: float = 0) -> float:
        """Delta for ``name``, or ``default`` if it never appeared."""
        return self._deltas.get(name, default)

    def nonzero(self) -> dict[str, float]:
        """All metrics that changed during the block."""
        return {k: v for k, v in sorted(self._deltas.items()) if v}


@contextmanager
def capture(registry: Registry | None = None) -> Iterator[Capture]:
    """Snapshot/diff context manager.

    ::

        with obs.capture() as cap:
            doc.apply_delta(delta)
        assert cap["crypto.aes.calls"] <= bound

    The yielded :class:`Capture` is populated when the block exits.
    """
    reg = registry if registry is not None else _DEFAULT
    cap = Capture()
    before = reg.snapshot()
    try:
        yield cap
    finally:
        cap._finish(before, reg.snapshot())
