"""repro.obs — lightweight, zero-dependency metrics and tracing.

The paper's central performance claim (SV, Fig. 4-5) is *asymptotic*:
IncE touches only the edited cluster, doing ``O(log n + cluster)`` work
per delta.  Wall-clock benchmarks cannot distinguish a correct
implementation from one that quietly regressed to ``O(n)``
re-encryption on a fast machine — but *operation counts* can.  This
package provides the counting substrate:

* :class:`Counter`, :class:`Gauge`, :class:`Histogram` — the three
  instrument kinds, owned by a :class:`Registry` of dotted names;
* :func:`span` / :class:`Timer` — wall-clock tracing into histograms;
* :func:`capture` — snapshot/diff context manager, the primitive the
  sub-linearity regression tests are written against;
* :mod:`repro.obs.export` — text and JSON renderings of a registry
  (the JSON form is the benchmark "metrics sidecar").

Every hot path of the library is instrumented against the process-global
default registry (:func:`default_registry`): the AES core counts block
invocations, the document engine counts blocks re-encrypted per delta,
the block indexes count search-path node visits, the channel counts
exchanges and wire bytes.  Instrumentation can be globally disabled
with :func:`set_enabled` (used to measure its own overhead).

The package is self-contained — it imports nothing from the rest of
``repro`` — so any layer may instrument itself without import cycles.
"""

from repro.obs.metrics import (
    Capture,
    Counter,
    Gauge,
    Histogram,
    Registry,
    Scope,
    Timer,
    capture,
    counter,
    default_registry,
    gauge,
    histogram,
    is_enabled,
    set_enabled,
    span,
    value_of,
)

__all__ = [
    "Capture",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "Scope",
    "Timer",
    "capture",
    "counter",
    "default_registry",
    "gauge",
    "histogram",
    "is_enabled",
    "set_enabled",
    "span",
    "value_of",
]
