"""Text and JSON renderings of a metrics registry.

Two consumers:

* humans — ``render_text`` produces the aligned listing printed by
  ``repro <cmd> --metrics`` and ``repro stats``;
* tooling — ``to_json`` produces the benchmark **metrics sidecar**
  (schema id ``repro.obs/v1``), validated by ``validate_metrics`` in
  ``make metrics-smoke`` and re-rendered by ``repro stats``.

The JSON shape::

    {
      "schema": "repro.obs/v1",
      "registry": "repro",
      "counters":   {"crypto.aes.calls": 1234, ...},
      "gauges":     {"services.gdocs.stored_bytes": 8192.0, ...},
      "histograms": {"net.latency_seconds":
                        {"count": 9, "sum": ..., "min": ..., "max": ...,
                         "mean": ..., "p50": ..., "p90": ..., "p99": ...},
                     ...}
    }
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    default_registry,
)

__all__ = [
    "SCHEMA_ID", "to_json", "render_text", "render_json_text",
    "validate_metrics", "write_sidecar", "load_sidecar",
]

SCHEMA_ID = "repro.obs/v1"

_HIST_FIELDS = ("count", "sum", "min", "max", "mean", "p50", "p90", "p99")


def to_json(registry: Registry | None = None) -> dict[str, Any]:
    """Serialize ``registry`` (default: the global one) to the sidecar shape."""
    reg = registry if registry is not None else default_registry()
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, float]] = {}
    for instrument in reg.instruments():
        if isinstance(instrument, Counter):
            counters[instrument.name] = instrument.value
        elif isinstance(instrument, Gauge):
            gauges[instrument.name] = instrument.value
        elif isinstance(instrument, Histogram):
            histograms[instrument.name] = instrument.summary()
    return {
        "schema": SCHEMA_ID,
        "registry": reg.name,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def validate_metrics(obj: Any) -> None:
    """Validate a decoded sidecar against the ``repro.obs/v1`` schema.

    Raises ``ValueError`` naming the first offending path; returns None
    on success.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"sidecar must be an object, got {type(obj).__name__}")
    if obj.get("schema") != SCHEMA_ID:
        raise ValueError(
            f"unknown schema {obj.get('schema')!r}, expected {SCHEMA_ID!r}"
        )
    if not isinstance(obj.get("registry"), str):
        raise ValueError("'registry' must be a string")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(obj.get(section), dict):
            raise ValueError(f"{section!r} must be an object")
    for name, value in obj["counters"].items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ValueError(
                f"counters[{name!r}] must be a non-negative integer, "
                f"got {value!r}"
            )
    for name, value in obj["gauges"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"gauges[{name!r}] must be a number, got {value!r}")
    for name, summary in obj["histograms"].items():
        if not isinstance(summary, dict):
            raise ValueError(f"histograms[{name!r}] must be an object")
        for fld in _HIST_FIELDS:
            value = summary.get(fld)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(
                    f"histograms[{name!r}].{fld} must be a number, "
                    f"got {value!r}"
                )


def _fmt(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return f"{value:.6g}"


def render_json_text(obj: dict[str, Any], title: str | None = None) -> str:
    """Render a decoded sidecar as the aligned human listing."""
    rows: list[tuple[str, str]] = []
    for name, value in sorted(obj.get("counters", {}).items()):
        rows.append((name, _fmt(value)))
    for name, value in sorted(obj.get("gauges", {}).items()):
        rows.append((name, _fmt(value)))
    for name, summary in sorted(obj.get("histograms", {}).items()):
        rows.append((
            name,
            f"count={_fmt(summary['count'])} mean={_fmt(summary['mean'])} "
            f"p50={_fmt(summary['p50'])} p99={_fmt(summary['p99'])} "
            f"max={_fmt(summary['max'])}",
        ))
    if not rows:
        return "(no metrics recorded)"
    width = max(len(name) for name, _ in rows)
    lines = [f"{name.ljust(width)}  {value}" for name, value in rows]
    if title:
        lines.insert(0, title)
    return "\n".join(lines)


def render_text(registry: Registry | None = None,
                title: str | None = None) -> str:
    """Render ``registry`` as the aligned human listing."""
    return render_json_text(to_json(registry), title=title)


def write_sidecar(path: str, registry: Registry | None = None) -> dict[str, Any]:
    """Serialize ``registry`` to ``path`` as JSON; returns the object."""
    obj = to_json(registry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(obj, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return obj


def load_sidecar(path: str) -> dict[str, Any]:
    """Read and validate a sidecar file; returns the decoded object."""
    with open(path, "r", encoding="utf-8") as handle:
        obj = json.load(handle)
    validate_metrics(obj)
    return obj
