"""Backend parity: one resilience contract, four cloud services.

Since the resilience machinery moved into the shared
:class:`repro.client.resilient.ResilientClient` core, every backend —
gdocs, Bespin, Buzzword, and the replicated facade — makes the same
two promises under the same hostile network, and this matrix holds all
of them to it, cell by cell (scheme × service × fault kind):

* **convergence** — after the fault plan quiesces and the recovery
  saves land, the bytes the provider stores decrypt to exactly the
  text the user sees (``registry.decrypt_view`` states the oracle
  uniformly, whatever shape the provider stores);
* **zero plaintext** — nothing that crossed the wire (completed
  exchanges *and* requests whose exchange died in flight) contains the
  secret token, fault or no fault;
* **typed outcomes** — mid-fault saves may fail, but as a
  ``SaveOutcome(ok=False)``, never a raise (the Bespin/Buzzword bug
  this matrix regression-guards: their old clients threw a bare
  ``ProtocolError`` through the whole session on any failed save).

The gdocs-only cells with richer obligations (conflict resync,
scheduled strikes, replay determinism) live in ``test_fault_matrix.py``
— this file is the cross-provider half of the chaos story referenced
by ``docs/faults.md``.
"""

from __future__ import annotations

import pytest

from repro.crypto.random import DeterministicRandomSource
from repro.extension.session import PrivateEditingSession
from repro.net.faults import FAULT_KINDS, FaultPlan, FaultSpec, updates_only
from repro.net.policy import RetryPolicy
from repro.services import registry

#: lowercase letters cannot appear in Base32 ciphertext, so a sighting
#: of this token on the wire is unambiguously a plaintext leak
SECRET = "zebrafish manifesto"

SCHEMES = ("recb", "rpc")
SERVICES = registry.SERVICE_NAMES

#: high enough that nearly every cell injects at least once, and far
#: above the 5% floor the parity claim is meaningless below
RATE = 0.45


def _seed(scheme: str, service: str, kind: str) -> int:
    """A stable, human-reproducible seed per cell (shown on failure)."""
    return (1000 + SCHEMES.index(scheme) * 400
            + SERVICES.index(service) * 100
            + FAULT_KINDS.index(kind))


def _run_cell(scheme: str, service: str, kind: str, seed: int, *,
              transport=None, doc: str | None = None):
    plan = FaultPlan([FaultSpec(kind=kind, rate=RATE, match=updates_only)],
                     seed=seed)
    session = PrivateEditingSession(
        doc or f"parity-{kind}", "parity-password", scheme=scheme,
        faults=plan, retry_policy=RetryPolicy(seed=seed),
        verify_acks=True, rng=DeterministicRandomSource(seed),
        service=service, transport=transport,
    )
    session.open()
    session.type_text(0, SECRET + " first draft. ")
    outcomes = [session.save()]
    session.type_text(0, "Second pass: ")
    outcomes.append(session.save())
    session.delete_text(0, len("Second pass: "))
    outcomes.append(session.save())

    # the weather clears; recovery saves must reconcile everything.
    # Resync/conflict repair can legitimately take a couple of rounds;
    # un-revisioned whole-file stores additionally need the last save
    # to land *after* any reorder-held stale request flushes.
    plan.quiesce()
    outcome = session.save()
    for _ in range(4):
        if outcome.ok and not outcome.conflict and not outcome.resynced:
            break
        outcome = session.save()
    if not registry.backend_for(service).capabilities.revisioned:
        outcome = session.save()
    outcomes.append(outcome)
    return plan, session, outcomes


def _leaks(plan: FaultPlan, session: PrivateEditingSession) -> list[str]:
    """Every wire surface an adversary saw that contains the secret."""
    sightings = []
    for request in plan.observed:
        if SECRET in request.body or SECRET in request.url:
            sightings.append(f"request {request.method} {request.url}")
    for exchange in session.channel.exchange_log:
        if SECRET in exchange.request.body:
            sightings.append(f"logged request {exchange.request.url}")
        if SECRET in exchange.response.body:
            sightings.append(f"response to {exchange.request.url}")
    return sightings


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("service", SERVICES)
@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_parity_cell_converges_without_leaking(scheme, service, kind,
                                               request):
    seed = _seed(scheme, service, kind)
    request.node.user_properties.append(("fault_seed", seed))
    plan, session, outcomes = _run_cell(scheme, service, kind, seed)

    # every save outcome is typed: a failure is ok=False, never a raise
    assert outcomes[-1].ok, (
        f"recovery save failed after quiesce on {service} (seed {seed}): "
        f"{outcomes[-1].error}"
    )
    recovered = registry.decrypt_view(
        service, session.server_view(), "parity-password", scheme
    )
    assert recovered == session.text, (
        f"{service} store and client diverged under {kind}/{scheme} "
        f"(seed {seed})"
    )
    assert _leaks(plan, session) == [], (
        f"plaintext leaked on {service} (seed {seed})"
    )


@pytest.mark.parametrize("service", SERVICES)
def test_parity_cells_injected(service):
    """The matrix is not vacuous per service: across all kinds, the
    rate-driven plans strike many times (checked in aggregate)."""
    injected = 0
    for kind in FAULT_KINDS:
        plan, _, _ = _run_cell("recb", service, kind,
                               _seed("recb", service, kind))
        injected += len(plan.injections)
    assert injected >= len(FAULT_KINDS)


# -- the socket-transport column (PR 7) ----------------------------------
#
# The same parity contract must hold when the fault plan wraps the real
# wire: faults strike *outside* the pooled TCP transport, retries and
# resyncs ride pipelined connections, and the stored bytes come back
# through the server's `view` op instead of a direct store read.


@pytest.fixture(scope="module")
def socket_server():
    from repro.net.server import ServerThread

    with ServerThread(shards=4) as address:
        yield address


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_parity_cell_over_the_socket_transport(scheme, kind,
                                               socket_server, request):
    from repro.net.transport import AsyncioSocketTransport

    host, port = socket_server
    seed = 5000 + _seed(scheme, "gdocs", kind)
    request.node.user_properties.append(("fault_seed", seed))
    transport = AsyncioSocketTransport(host, port, service="gdocs",
                                       tenant="parity")
    try:
        # unique doc per cell: unlike the in-process cells, the served
        # backend outlives each session
        plan, session, outcomes = _run_cell(
            scheme, "gdocs", kind, seed, transport=transport,
            doc=f"parity-{kind}-{scheme}-socket",
        )
        assert outcomes[-1].ok, (
            f"recovery save failed over the socket (seed {seed}): "
            f"{outcomes[-1].error}"
        )
        recovered = registry.decrypt_view(
            "gdocs", session.server_view(), "parity-password", scheme
        )
        assert recovered == session.text, (
            f"served store and client diverged under {kind}/{scheme} "
            f"(seed {seed})"
        )
        assert _leaks(plan, session) == [], (
            f"plaintext leaked over the socket (seed {seed})"
        )
    finally:
        transport.close()


# -- the N-writer merging collaboration cell (PR 8) ----------------------
#
# The parity cells above are one writer vs a hostile network; this cell
# is the many-writer version of the same two promises: 32 faulted
# sessions hammer ONE gdocs document with the server-side OT merge
# path on, and afterwards every writer sees the same text, the stored
# bytes decrypt to it, and nothing on the wire ever held the sentinel.


def test_many_writer_merge_cell_converges_under_faults():
    from repro.bench.collab import run_collab

    cell = run_collab(writers=32, rounds=2, service="gdocs", merge=True,
                      fault_rate=0.05)
    assert cell.converged, "32 faulted writers did not converge"
    assert cell.leak_clean, "sentinel sighted on the wire"
    assert cell.merges > 0, "the merge path never fired"
    # the drain budget is linear in the writer count; blowing it means
    # merging regressed to the one-landing-per-round conflict crawl
    assert cell.drain_rounds <= 4 + 2 * 32


@pytest.mark.parametrize("service", ("bespin", "buzzword"))
def test_whole_file_save_failure_is_typed(service):
    """Regression (the satellite bugfix): a Bespin/Buzzword save that
    the provider refuses comes back as ``SaveOutcome(ok=False)`` with
    the failure counted — the old clients raised a bare
    ``ProtocolError`` through the caller instead."""
    # every update 500s: the save can never land until the plan stops
    plan = FaultPlan(
        [FaultSpec(kind="http_5xx", rate=1.0, match=updates_only)],
        seed=9,
    )
    session = PrivateEditingSession(
        "typed-failure", "parity-password", faults=plan,
        retry_policy=RetryPolicy(seed=9, max_attempts=2),
        service=service,
    )
    session.open()
    session.type_text(0, SECRET)
    outcome = session.save()  # must not raise
    assert not outcome.ok
    assert outcome.error, "a failed save must say why"
    plan.quiesce()
    settled = session.save()
    assert settled.ok
    recovered = registry.decrypt_view(
        service, session.server_view(), "parity-password", "recb"
    )
    assert recovered == session.text
