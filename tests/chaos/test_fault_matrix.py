"""The chaos matrix: scheme × fault kind × timing, all seeded.

Every cell drives a resilient :class:`PrivateEditingSession` through a
seeded :class:`FaultPlan` and asserts the two invariants that
``docs/faults.md`` promises:

* **convergence** — after the fault plan quiesces and one clean save
  lands, the ciphertext the server stores decrypts to exactly the text
  the user sees (no lost saves, no double-applied deltas, no diverged
  mirror);
* **zero plaintext** — nothing an eavesdropper observed (completed
  exchanges *and* requests whose exchange died in flight) contains the
  secret token, fault or no fault.

A failing cell prints its seed in the test id; re-running that one id
replays the identical fault schedule (all randomness flows from the
seed, all time from the simulated clock).

The matrix is the authoritative list referenced by the fault-class →
test table in ``docs/faults.md``.
"""

from __future__ import annotations

import pytest

from repro.core.transform import EncryptionEngine
from repro.crypto.random import DeterministicRandomSource
from repro.extension.session import PrivateEditingSession
from repro.net.faults import FAULT_KINDS, FaultPlan, FaultSpec, updates_only
from repro.net.policy import RetryPolicy
from repro.services.gdocs.server import GDocsServer

#: lowercase letters cannot appear in Base32 ciphertext, so a sighting
#: of this token on the wire is unambiguously a plaintext leak
SECRET = "zebrafish manifesto"

SCHEMES = ("recb", "rpc")
TIMINGS = ("rate", "scheduled")


def _seed(scheme: str, kind: str, timing: str) -> int:
    """A stable, human-reproducible seed per cell (shown in test ids)."""
    return (SCHEMES.index(scheme) * 100
            + FAULT_KINDS.index(kind) * 10
            + TIMINGS.index(timing) + 1)


def _plan(kind: str, timing: str, seed: int) -> FaultPlan:
    if timing == "rate":
        # faults strike content updates probabilistically; 0.45 is high
        # enough that nearly every cell injects at least once
        spec = FaultSpec(kind=kind, rate=0.45, match=updates_only)
    else:
        # deterministically kill the session's first save (exchange 0
        # is the open, exchange 1 the full save)
        spec = FaultSpec(kind=kind, at=(1,), limit=1)
    return FaultPlan([spec], seed=seed)


def _leaks(plan: FaultPlan, session: PrivateEditingSession) -> list[str]:
    """Every wire surface an adversary saw that contains the secret."""
    sightings = []
    for request in plan.observed:
        if SECRET in request.body or SECRET in request.url:
            sightings.append(f"request {request.method} {request.url}")
    for exchange in session.channel.exchange_log:
        if SECRET in exchange.request.body:
            sightings.append(f"logged request {exchange.request.url}")
        if SECRET in exchange.response.body:
            sightings.append(f"response to {exchange.request.url}")
    return sightings


def _run_cell(scheme: str, kind: str, timing: str, seed: int):
    plan = _plan(kind, timing, seed)
    session = PrivateEditingSession(
        f"doc-{kind}", "matrix-password", scheme=scheme,
        faults=plan, retry_policy=RetryPolicy(seed=seed),
        verify_acks=True, rng=DeterministicRandomSource(seed),
    )
    session.open()
    session.type_text(0, SECRET + " first draft. ")
    outcomes = [session.save()]
    session.type_text(0, "Second pass: ")
    outcomes.append(session.save())
    session.delete_text(0, len("Second pass: "))
    outcomes.append(session.save())
    # the weather clears; one clean save must reconcile everything
    plan.quiesce()
    outcomes.append(session.save())
    return plan, session, outcomes


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("kind", FAULT_KINDS)
@pytest.mark.parametrize("timing", TIMINGS)
def test_cell_converges_without_leaking(scheme, kind, timing, request):
    seed = _seed(scheme, kind, timing)
    # surface the seed in the recorded test id for replay instructions
    request.node.user_properties.append(("fault_seed", seed))
    plan, session, outcomes = _run_cell(scheme, kind, timing, seed)

    # every save outcome is typed: a failure is ok=False, never a raise
    assert outcomes[-1].ok, (
        f"recovery save failed after quiesce (seed {seed}): "
        f"{outcomes[-1].error}"
    )
    # convergence: the stored ciphertext round-trips to the user's text
    stored = session.server_view()
    recovered = EncryptionEngine(
        password="matrix-password", scheme=scheme
    ).decrypt(stored)
    assert recovered == session.text, (
        f"server and client diverged under {kind}/{timing} "
        f"(seed {seed})"
    )
    # zero plaintext anywhere an adversary could look
    assert _leaks(plan, session) == [], f"plaintext leaked (seed {seed})"


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("timing", TIMINGS)
def test_scheduled_cells_injected(scheme, timing):
    """The matrix is not vacuous: scheduled cells inject exactly once,
    rate cells almost always at least once (checked in aggregate)."""
    injected = 0
    for kind in FAULT_KINDS:
        seed = _seed(scheme, kind, timing)
        plan, _, _ = _run_cell(scheme, kind, timing, seed)
        if timing == "scheduled":
            assert [k for _, k in plan.injections] == [kind]
        injected += len(plan.injections)
    assert injected >= len(FAULT_KINDS)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_conflict_cell_resyncs_and_converges(scheme):
    """The tenth fault class: a *revision* conflict (another writer got
    there first).  The resilient client re-fetches, rebases its pending
    edit over the concurrent change, and converges — where the legacy
    client only complains (test_collaboration.py)."""
    server = GDocsServer()
    password = "matrix-password"

    alice = PrivateEditingSession(
        "shared", password, server=server, scheme=scheme,
        retry_policy=RetryPolicy(seed=1), verify_acks=True,
        rng=DeterministicRandomSource(1),
    )
    bob = PrivateEditingSession(
        "shared", password, server=server, scheme=scheme,
        retry_policy=RetryPolicy(seed=2), verify_acks=True,
        rng=DeterministicRandomSource(2),
    )
    # alice establishes the document and enters delta mode
    alice.open()
    alice.type_text(0, SECRET + " shared ground. ")
    assert alice.save().ok

    # bob joins and publishes his own full save — the revision moves on
    # while alice is not looking
    bob.open()
    assert bob.text == SECRET + " shared ground. "
    bob.type_text(len(bob.text), "omega.")
    assert bob.save().ok

    # alice's next save is a *delta against a stale revision*
    alice.type_text(0, "alpha ")
    outcome = alice.save()
    assert outcome.ok
    assert outcome.resynced, "alice's stale-revision save must resync"
    assert alice.text.startswith("alpha ")
    assert alice.text.endswith("omega.")
    # alice's rebased edit is pending; one more save publishes it
    assert alice.save().ok

    stored = server.store.get("shared").content
    recovered = EncryptionEngine(
        password=password, scheme=scheme
    ).decrypt(stored)
    assert recovered == alice.text
    for exchange in list(alice.channel.exchange_log) + \
            list(bob.channel.exchange_log):
        assert SECRET not in exchange.request.body
        assert SECRET not in exchange.response.body


def test_matrix_replays_identically():
    """Determinism contract: the same cell run twice injects the same
    faults at the same exchanges and lands identical ciphertext."""
    runs = []
    for _ in range(2):
        plan, session, _ = _run_cell("rpc", "corrupt", "rate", seed=77)
        runs.append((plan.injections, session.server_view(),
                     session.text))
    assert runs[0] == runs[1]


# The cross-provider half of the matrix — Bespin, Buzzword, and the
# replicated facade under the same fault kinds, through the shared
# resilient client — lives in test_backend_parity.py.
