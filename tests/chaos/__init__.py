"""Chaos suite: the fault matrix of docs/faults.md."""
