"""The extensions composed: stego + freshness + replication together.

Each extension is tested alone elsewhere; this smoke-checks that they
stack — a censoring, partially-flaky, rollback-attempting environment
against one fully-armed client stack.
"""

from repro.crypto.random import DeterministicRandomSource
from repro.encoding.stego import looks_stego
from repro.extension import FreshnessMonitor, PrivateEditingSession
from repro.services.gdocs.server import GDocsServer
from repro.services.replicated import FlakyServer, ReplicatedService


class _Shim:
    """Adapts a ReplicatedService to PrivateEditingSession's server duck
    type."""

    def __init__(self, service):
        self._service = service
        self.store = None

    def __call__(self, request):
        """Forward to the replicated facade."""
        return self._service(request)


def test_stego_freshness_replication_compose():
    # three *censoring* providers, one of them flaky
    backends = [
        FlakyServer(GDocsServer(reject_encrypted=True)) for _ in range(3)
    ]
    service = ReplicatedService(backends)
    monitor = FreshnessMonitor()

    session = PrivateEditingSession(
        "doc", "pw", server=_Shim(service), scheme="rpc",
        rng=DeterministicRandomSource(1),
        stego=True, freshness=monitor,
    )
    session.open()
    session.type_text(0, "contraband thoughts, replicated and disguised")
    session.save()

    backends[1].outage(1)
    session.type_text(0, "[v2] ")
    session.save()          # 2/3 quorum write
    session.type_text(0, "[v3] ")
    session.save()          # heals backend 1 with stego'd ciphertext
    session.close()

    # every replica converged on stego text that passes the censor
    replicas = {b._backend.store.get("doc").content for b in backends}
    assert len(replicas) == 1
    stored = replicas.pop()
    assert looks_stego(stored)
    assert "contraband" not in stored
    assert service.backend_health("doc") == [True, True, True]

    # the same monitor-carrying user reopens and reads the latest
    reader = PrivateEditingSession(
        "doc", "pw", server=_Shim(service), scheme="rpc",
        rng=DeterministicRandomSource(2),
        stego=True, freshness=monitor,
    )
    assert reader.open() == session.text

    # a rollback by ALL providers is caught by freshness
    for backend in backends:
        doc = backend._backend.store.get("doc")
        doc.content = doc.history[-2]
        doc.revision += 1
    late = PrivateEditingSession(
        "doc", "pw", server=_Shim(service), scheme="rpc",
        rng=DeterministicRandomSource(3),
        stego=True, freshness=monitor,
    )
    seen = late.open()
    assert seen != session.text
    assert any("version" in w for w in late.extension.warnings)
