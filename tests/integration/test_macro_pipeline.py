"""The macro-benchmark harness itself: paired runs, honest accounting.

These tests pin the properties EXPERIMENTS.md relies on when citing
Fig. 5 / Fig. 8 outputs — small, fast configurations only.
"""

import pytest

from repro.bench.macro import MacroCase, run_macro_case
from repro.net.latency import INSTANT, WAN_2011


def small_case(**overrides):
    defaults = dict(file_chars=400, category="inserts only", scheme="recb",
                    block_chars=8, edits_per_session=3, trials=2)
    defaults.update(overrides)
    return MacroCase(**defaults)


class TestHarness:
    def test_report_has_all_samples(self):
        report = run_macro_case(small_case())
        assert len(report.initial_load.values) == 2       # one per trial
        assert len(report.edit_ops.values) == 6           # edits x trials

    def test_extension_adds_nonnegative_overhead(self):
        report = run_macro_case(small_case(trials=3))
        assert report.initial_load.mean > 0
        # Individual edit overheads may jitter but the mean must not be
        # meaningfully negative (paired latency draws cancel).
        assert report.edit_ops.mean > -0.02

    def test_rpc_at_least_as_costly_as_recb(self):
        recb = run_macro_case(small_case(scheme="recb", trials=3))
        rpc = run_macro_case(small_case(scheme="rpc", trials=3))
        # RPC adds chain re-encryption + a checksum record per save.
        assert rpc.initial_load.mean > -0.02
        assert rpc.edit_ops.mean >= recb.edit_ops.mean - 0.03

    def test_block_size_8_load_cheaper_than_1(self):
        wide = run_macro_case(small_case(block_chars=8, file_chars=4000))
        narrow = run_macro_case(small_case(block_chars=1, file_chars=4000))
        assert wide.initial_load.mean < narrow.initial_load.mean

    def test_instant_network_isolates_crypto_cost(self):
        """With a zero-latency network, overhead ratios blow up (the
        denominator is just client processing) — confirming the latency
        model is what anchors the percentages."""
        wan = run_macro_case(small_case(file_chars=2000, block_chars=1))
        instant = run_macro_case(small_case(file_chars=2000, block_chars=1),
                                 latency_factory=lambda seed: INSTANT())
        assert instant.initial_load.mean > wan.initial_load.mean

    def test_deterministic_given_seeds(self):
        a = run_macro_case(small_case())
        b = run_macro_case(small_case())
        # Workload and latency draws are seeded; only wall-clock noise
        # differs, so the means must be close.
        assert abs(a.initial_load.mean - b.initial_load.mean) < 0.15
