"""Active-adversary scenarios through the full stack (SVI-A).

The malicious provider tampers with its own store; detection (or not)
happens when a client next loads the document through the extension.
"""

import pytest

from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import looks_encrypted
from repro.extension import PrivateEditingSession
from repro.security.adversary import ActiveServerAdversary
from repro.security.attacks import (
    flip_record_byte,
    remove_record,
    replicate_record,
    swap_records,
)

SECRET = "wire 1.000.000 to account 44-55; then wire 1.000.000 again"


def owned_session(scheme, seed):
    session = PrivateEditingSession(
        "doc", "pw", scheme=scheme, rng=DeterministicRandomSource(seed),
    )
    session.open()
    session.type_text(0, SECRET)
    session.save()
    session.close()
    return session


def reopen(session, seed):
    reader = PrivateEditingSession(
        "doc", "pw", server=session.server,
        rng=DeterministicRandomSource(seed),
    )
    return reader, reader.open()


class TestActiveServerVsRpc:
    @pytest.mark.parametrize("mutate", [
        lambda w: replicate_record(w, 3),
        lambda w: remove_record(w, 3),
        lambda w: swap_records(w, 2, 4),
        lambda w: flip_record_byte(w, 2, 5),
    ])
    def test_tampering_never_yields_plaintext(self, mutate):
        session = owned_session("rpc", 1)
        adversary = ActiveServerAdversary(session.server.store)
        adversary.overwrite("doc", mutate(adversary.current_ciphertext("doc")))
        reader, seen = reopen(session, 2)
        # The extension refuses to decrypt: the user sees ciphertext and
        # the extension records an integrity warning.
        assert looks_encrypted(seen)
        assert reader.client.editor.text != SECRET
        assert any(
            "chain" in w or "checksum" in w or "marker" in w or "length" in w
            or "tamper" in w.lower()
            for w in _warnings(reader)
        )


class TestActiveServerVsRecb:
    def test_replication_silently_alters_content(self):
        """rECB's stated weakness: a replicated record decrypts cleanly
        and the user sees silently altered content."""
        session = owned_session("recb", 3)
        adversary = ActiveServerAdversary(session.server.store)
        adversary.overwrite(
            "doc", replicate_record(adversary.current_ciphertext("doc"), 2)
        )
        _, seen = reopen(session, 4)
        assert not looks_encrypted(seen)  # decryption succeeded!
        assert seen != SECRET             # ...but content changed
        assert len(seen) == len(SECRET) + 8


class TestRollback:
    def test_rollback_is_undetected_by_design(self):
        """Freshness is out of scope for per-document schemes: an old
        version verifies perfectly (documented limitation)."""
        session = PrivateEditingSession(
            "doc", "pw", scheme="rpc", rng=DeterministicRandomSource(5),
        )
        session.open()
        session.type_text(0, "version one")
        session.save()
        session.type_text(0, "version two: ")
        session.save()
        session.close()

        adversary = ActiveServerAdversary(session.server.store)
        adversary.rollback("doc")
        _, seen = reopen(session, 6)
        assert seen == "version one"  # verifies, decrypts, stale


def _warnings(reader):
    extension = reader.extension
    return extension.warnings if extension else []
