"""End-to-end private editing sessions (SIV-C's user story)."""

import pytest

from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import looks_encrypted
from repro.extension import PrivateEditingSession
from repro.net.latency import WAN_2011
from repro.security.adversary import EavesdropperTap

SECRET = "Project Aurora launches May 3rd; budget 4.2M."


@pytest.mark.parametrize("scheme", ["recb", "rpc"])
@pytest.mark.parametrize("block_chars", [1, 8])
class TestConfidentiality:
    def test_server_never_sees_plaintext(self, scheme, block_chars):
        session = PrivateEditingSession(
            "doc", "pw", scheme=scheme, block_chars=block_chars,
            rng=DeterministicRandomSource(1),
        )
        tap = EavesdropperTap()
        session.channel.add_tap(tap)
        session.open()
        session.type_text(0, SECRET)
        session.save()
        session.type_text(8, "Borealis, formerly ")
        session.save()
        session.delete_text(0, 8)
        session.save()
        session.close()

        stored = session.server_view()
        assert looks_encrypted(stored)
        for needle in ("Aurora", "Borealis", "May 3rd", "4.2M"):
            assert needle not in stored
            assert tap.plaintext_sightings(needle) == 0

    def test_user_sees_consistent_plaintext(self, scheme, block_chars):
        session = PrivateEditingSession(
            "doc", "pw", scheme=scheme, block_chars=block_chars,
            rng=DeterministicRandomSource(2),
        )
        session.open()
        session.type_text(0, SECRET)
        session.save()
        session.type_text(len(SECRET), " (draft)")
        session.save()
        assert session.text == SECRET + " (draft)"
        assert session.complaints == []


class TestSessionLifecycle:
    def test_reopen_across_sessions(self):
        first = PrivateEditingSession(
            "doc", "pw", scheme="rpc", rng=DeterministicRandomSource(3),
        )
        first.open()
        first.type_text(0, SECRET)
        first.close()

        second = PrivateEditingSession(
            "doc", "pw", server=first.server,
            rng=DeterministicRandomSource(4),
        )
        assert second.open() == SECRET
        second.type_text(0, ">> ")
        second.save()
        assert second.text == ">> " + SECRET

    def test_wrong_password_shows_ciphertext(self):
        owner = PrivateEditingSession(
            "doc", "right", rng=DeterministicRandomSource(5),
        )
        owner.open()
        owner.type_text(0, SECRET)
        owner.save()

        intruder = PrivateEditingSession(
            "doc", "wrong", server=owner.server,
            rng=DeterministicRandomSource(6),
        )
        seen = intruder.open()
        assert looks_encrypted(seen)
        assert SECRET not in seen

    def test_disabled_extension_is_plaintext(self):
        session = PrivateEditingSession(
            "doc", "pw", extension_enabled=False,
        )
        session.open()
        session.type_text(0, SECRET)
        session.save()
        assert session.server_view() == SECRET

    def test_latency_model_advances_clock(self):
        session = PrivateEditingSession(
            "doc", "pw", latency=WAN_2011(1),
            rng=DeterministicRandomSource(7),
        )
        session.open()
        session.type_text(0, "timed")
        session.save()
        assert session.now > 0.1  # two WAN exchanges

    def test_long_session_many_saves(self):
        session = PrivateEditingSession(
            "doc", "pw", scheme="rpc", rng=DeterministicRandomSource(8),
        )
        session.open()
        session.type_text(0, "seed text. ")
        session.save()
        expected = session.text
        for i in range(25):
            session.type_text(len(session.text), f"edit {i}. ")
            expected += f"edit {i}. "
            outcome = session.save()
            assert outcome.kind == "delta"
        assert session.text == expected
        # an independent session reads the final state back
        reader = PrivateEditingSession(
            "doc", "pw", server=session.server,
            rng=DeterministicRandomSource(9),
        )
        assert reader.open() == expected


class TestDeltaTrafficShape:
    def test_incremental_saves_are_small(self):
        """The point of incremental encryption: a delta save's body is
        tiny relative to the full document."""
        session = PrivateEditingSession(
            "doc", "pw", rng=DeterministicRandomSource(10),
        )
        session.open()
        session.type_text(0, "x" * 5000)
        session.save()
        full_bytes = session.channel.exchange_log[-1].request.wire_bytes
        session.type_text(2500, "y")
        session.save()
        delta_bytes = session.channel.exchange_log[-1].request.wire_bytes
        assert delta_bytes < full_bytes / 20
