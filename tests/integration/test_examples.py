"""Every example script must run clean (they double as living docs)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3  # deliverable (b): at least three


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=180,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"
