"""Rollback detection with the freshness monitor (beyond-the-paper).

Without it, rollback is undetectable (shown in
``test_attack_scenarios.py``); with it, a client that has seen version
N refuses anything older.
"""

import pytest

from repro.core import load_document
from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import looks_encrypted
from repro.extension import FreshnessMonitor, PrivateEditingSession, RollbackError
from repro.security.adversary import ActiveServerAdversary


def session_with_monitor(monitor, server=None, seed=1):
    return PrivateEditingSession(
        "doc", "pw", server=server, scheme="rpc",
        rng=DeterministicRandomSource(seed), freshness=monitor,
    )


class TestVersionCounter:
    def test_version_increments_per_update(self, keys, nonce_rng):
        from repro.core.document import RpcDocument
        doc = RpcDocument.create("v", key_material=keys, rng=nonce_rng)
        assert doc.version == 0
        doc.insert(0, "a")
        assert doc.version == 1
        doc.delete(0, 1)
        assert doc.version == 2

    def test_version_survives_reload(self, keys, nonce_rng):
        from repro.core.document import RpcDocument
        doc = RpcDocument.create("v", key_material=keys, rng=nonce_rng)
        doc.insert(0, "abc")
        doc.insert(0, "def")
        reloaded = RpcDocument.load(doc.wire(), key_material=keys)
        assert reloaded.version == 2

    def test_rewrite_bumps_version(self, keys, nonce_rng):
        from repro.core.document import RpcDocument
        doc = RpcDocument.create("some text", key_material=keys,
                                 rng=nonce_rng)
        doc.insert(0, "x")
        before = doc.version
        doc.delete(0, doc.char_length)  # full-rewrite path
        assert doc.version == before + 1

    def test_version_zero_matches_unversioned_encoding(self, keys,
                                                       nonce_rng):
        """Backward compatibility: a fresh (version 0) document's wire
        is identical to what the pre-version scheme produced, because
        XOR with a zero version is the identity."""
        from repro.core.document import RpcDocument
        doc = RpcDocument.create("compat", key_material=keys, rng=nonce_rng)
        assert doc.version == 0
        doc.verify()


class TestMonitor:
    def test_observe_and_check(self):
        monitor = FreshnessMonitor()
        assert monitor.last_seen("d") is None
        monitor.observe("d", 3)
        monitor.check("d", 3)
        monitor.check("d", 7)  # newer is fine
        with pytest.raises(RollbackError):
            monitor.check("d", 2)

    def test_observe_never_regresses(self):
        monitor = FreshnessMonitor()
        monitor.observe("d", 5)
        monitor.observe("d", 2)
        assert monitor.last_seen("d") == 5

    def test_forget(self):
        monitor = FreshnessMonitor()
        monitor.observe("d", 5)
        monitor.forget("d")
        monitor.check("d", 0)  # no state, no complaint


class TestEndToEnd:
    def test_rollback_now_detected(self):
        monitor = FreshnessMonitor()
        session = session_with_monitor(monitor)
        session.open()
        session.type_text(0, "version one")
        session.save()
        session.type_text(0, "version two: ")
        session.save()
        session.close()

        adversary = ActiveServerAdversary(session.server.store)
        adversary.rollback("doc")

        # The same client (same monitor) reopens: rollback is caught,
        # the stale plaintext is NOT shown.
        reader = session_with_monitor(monitor, server=session.server,
                                      seed=2)
        seen = reader.open()
        assert looks_encrypted(seen)
        assert "version one" not in seen
        assert any("rollback" in w or "version" in w
                   for w in reader.extension.warnings)

    def test_honest_history_never_trips(self):
        monitor = FreshnessMonitor()
        session = session_with_monitor(monitor)
        session.open()
        session.type_text(0, "start")
        session.save()
        for i in range(10):
            session.type_text(0, f"{i} ")
            session.save()
        session.close()
        reader = session_with_monitor(monitor, server=session.server,
                                      seed=3)
        assert reader.open() == session.text
        assert reader.extension.warnings == []

    def test_fresh_client_cannot_detect(self):
        """The documented limit: a client with no memory of the
        document accepts the rolled-back version."""
        session = session_with_monitor(FreshnessMonitor())
        session.open()
        session.type_text(0, "version one")
        session.save()
        session.type_text(0, "version two: ")
        session.save()
        session.close()
        ActiveServerAdversary(session.server.store).rollback("doc")

        naive = session_with_monitor(FreshnessMonitor(),
                                     server=session.server, seed=4)
        assert naive.open() == "version one"
