"""Stego mode end-to-end: the extension vs. the censoring provider."""

import pytest

from repro.crypto.random import DeterministicRandomSource
from repro.errors import ProtocolError
from repro.extension import PrivateEditingSession
from repro.security.analysis import ENCRYPTION_THRESHOLD, encryption_score
from repro.services.gdocs.server import GDocsServer


class TestCensoringServer:
    def test_refuses_raw_ciphertext(self):
        session = PrivateEditingSession(
            "doc", "pw", server=GDocsServer(reject_encrypted=True),
            rng=DeterministicRandomSource(1),
        )
        session.open()
        session.type_text(0, "forbidden")
        with pytest.raises(ProtocolError):
            session.save()

    def test_accepts_plaintext(self):
        session = PrivateEditingSession(
            "doc", "pw", server=GDocsServer(reject_encrypted=True),
            extension_enabled=False,
        )
        session.open()
        session.type_text(0, "ordinary prose is fine")
        session.save()
        assert session.server_view() == "ordinary prose is fine"

    def test_refuses_ciphertext_via_delta_too(self):
        """A delta whose result turns the document into ciphertext is
        also refused (the censor checks outcomes, not just messages)."""
        from repro.client.gdocs_client import GDocsClient
        from repro.net.channel import Channel

        server = GDocsServer(reject_encrypted=True)
        client = GDocsClient(Channel(server), "doc")
        client.open()
        client.type_text(0, "innocent start")
        client.save()
        client.editor.set_text("PE1-RECB-8-64-AAAAAAAAAAAAAAAA." + "A" * 280)
        with pytest.raises(ProtocolError):
            client.save()


class TestStegoSession:
    def _session(self, server, seed, **kw):
        return PrivateEditingSession(
            "doc", "pw", server=server, scheme="rpc",
            rng=DeterministicRandomSource(seed), stego=True, **kw,
        )

    def test_full_lifecycle_past_the_censor(self):
        server = GDocsServer(reject_encrypted=True)
        session = self._session(server, 2)
        session.open()
        session.type_text(0, "samizdat: the true history")
        assert session.save().kind == "full"
        session.type_text(0, "chapter 1. ")
        assert session.save().kind == "delta"
        session.delete_text(0, 8)
        assert session.save().kind == "delta"
        session.close()

        stored = session.server_view()
        assert encryption_score(stored) < ENCRYPTION_THRESHOLD
        assert "samizdat" not in stored
        assert "history" not in stored

        reader = self._session(server, 3)
        assert reader.open() == session.text

    def test_stego_hides_from_detector_but_not_from_password(self):
        server = GDocsServer()
        session = self._session(server, 4)
        session.open()
        session.type_text(0, "hidden but shared")
        session.save()
        # wrong password + stego: sees gibberish words, not plaintext
        snoop = PrivateEditingSession(
            "doc", "wrong", server=server,
            rng=DeterministicRandomSource(5), stego=True,
        )
        seen = snoop.open()
        assert "hidden" not in seen

    def test_stego_costs_triple_the_wire(self):
        """The quantified 'may be impractical': ~3x on top of Fig. 7."""
        server = GDocsServer()
        plain_wire = PrivateEditingSession(
            "w", "pw", server=server, rng=DeterministicRandomSource(6),
        )
        plain_wire.open()
        plain_wire.type_text(0, "z" * 400)
        plain_wire.save()
        wire_len = len(plain_wire.server_view())

        stego = self._session(GDocsServer(), 7)
        stego.open()
        stego.type_text(0, "z" * 400)
        stego.save()
        stego_len = len(stego.server_view())
        assert 2.5 < stego_len / wire_len < 3.5
