"""Replication across untrusted providers (availability extension).

The extension + client stack runs unchanged on top of
:class:`ReplicatedService`; these tests exercise outages, healing,
quorum loss, and divergence detection.
"""

import pytest

from repro.crypto.random import DeterministicRandomSource
from repro.errors import ProtocolError
from repro.extension import PrivateEditingSession
from repro.services.gdocs.server import GDocsServer
from repro.services.replicated import FlakyServer, ReplicatedService


def replicated_session(n_backends=3, seed=1, **kw):
    backends = [FlakyServer(GDocsServer()) for _ in range(n_backends)]
    service = ReplicatedService(backends, **kw)
    session = PrivateEditingSession(
        "doc", "pw", server=_Shim(service), scheme="rpc",
        rng=DeterministicRandomSource(seed),
    )
    return session, service, backends


class _Shim:
    """Duck-type the PrivateEditingSession's server expectations."""

    def __init__(self, service):
        self._service = service
        self.store = None  # server_view() not meaningful here

    def __call__(self, request):
        return self._service(request)


class TestHappyPath:
    def test_all_replicas_converge(self):
        session, service, backends = replicated_session()
        session.open()
        session.type_text(0, "replicate me")
        session.save()
        session.type_text(0, "v2: ")
        session.save()
        stored = {b._backend.store.get("doc").content for b in backends}
        assert len(stored) == 1  # byte-identical ciphertext everywhere
        assert service.divergences == []
        assert service.backend_health("doc") == [True, True, True]

    def test_reader_survives_one_dead_provider(self):
        session, service, backends = replicated_session()
        session.open()
        session.type_text(0, "durable text")
        session.save()
        session.close()
        backends[0].outage(10_000)
        reader = PrivateEditingSession(
            "doc", "pw", server=_Shim(service),
            rng=DeterministicRandomSource(2),
        )
        assert reader.open() == "durable text"


class TestOutagesAndHealing:
    def test_writes_continue_through_minority_outage(self):
        session, service, backends = replicated_session()
        session.open()
        session.type_text(0, "start. ")
        session.save()
        backends[2].outage(1)
        session.type_text(0, "during outage. ")
        session.save()  # 2/3 ack -> success
        assert service.backend_health("doc") == [True, True, False]
        # Next save heals the straggler by ciphertext copy.
        session.type_text(0, "after. ")
        session.save()
        assert service.backend_health("doc") == [True, True, True]
        stored = {b._backend.store.get("doc").content for b in backends}
        assert len(stored) == 1
        assert any("healed" in f for f in service.failures)

    def test_quorum_loss_fails_closed(self):
        session, service, backends = replicated_session()
        session.open()
        session.type_text(0, "seed")
        session.save()
        backends[0].outage(10)
        backends[1].outage(10)
        session.type_text(0, "x")
        with pytest.raises(ProtocolError):
            session.save()

    def test_healed_content_is_authentic(self):
        """Healing copies ciphertext — the healed replica's copy still
        verifies under the document key."""
        session, service, backends = replicated_session()
        session.open()
        session.type_text(0, "authentic content here")
        session.save()
        backends[1].outage(1)
        session.type_text(0, "more. ")
        session.save()
        session.type_text(0, "heal trigger. ")
        session.save()
        from repro.core import load_document
        wire = backends[1]._backend.store.get("doc").content
        doc = load_document(wire, password="pw")
        assert doc.text == session.text


class TestDivergence:
    def test_minority_tampering_outvoted_and_logged(self):
        session, service, backends = replicated_session()
        session.open()
        session.type_text(0, "the agreed truth")
        session.save()
        session.close()
        # one provider silently swaps in different bytes
        backends[2]._backend.store.get("doc").content = "tampered!"
        reader = PrivateEditingSession(
            "doc", "pw", server=_Shim(service),
            rng=DeterministicRandomSource(3),
        )
        assert reader.open() == "the agreed truth"  # majority wins
        assert service.divergences  # and the minority is reported
