"""Replication across untrusted providers (availability extension).

The extension + client stack runs unchanged on top of
:class:`ReplicatedService`; these tests exercise outages, healing,
quorum loss, and divergence detection.
"""

import pytest

from repro.crypto.random import DeterministicRandomSource
from repro.errors import ProtocolError
from repro.extension import PrivateEditingSession
from repro.services.gdocs.server import GDocsServer
from repro.services.replicated import FlakyServer, ReplicatedService


def replicated_session(n_backends=3, seed=1, **kw):
    backends = [FlakyServer(GDocsServer()) for _ in range(n_backends)]
    service = ReplicatedService(backends, **kw)
    session = PrivateEditingSession(
        "doc", "pw", server=_Shim(service), scheme="rpc",
        rng=DeterministicRandomSource(seed),
    )
    return session, service, backends


class _Shim:
    """Duck-type the PrivateEditingSession's server expectations."""

    def __init__(self, service):
        self._service = service
        self.store = None  # server_view() not meaningful here

    def __call__(self, request):
        return self._service(request)


class TestHappyPath:
    def test_all_replicas_converge(self):
        session, service, backends = replicated_session()
        session.open()
        session.type_text(0, "replicate me")
        session.save()
        session.type_text(0, "v2: ")
        session.save()
        stored = {b._backend.store.get("doc").content for b in backends}
        assert len(stored) == 1  # byte-identical ciphertext everywhere
        assert service.divergences == []
        assert service.backend_health("doc") == [True, True, True]

    def test_reader_survives_one_dead_provider(self):
        session, service, backends = replicated_session()
        session.open()
        session.type_text(0, "durable text")
        session.save()
        session.close()
        backends[0].outage(10_000)
        reader = PrivateEditingSession(
            "doc", "pw", server=_Shim(service),
            rng=DeterministicRandomSource(2),
        )
        assert reader.open() == "durable text"


class TestOutagesAndHealing:
    def test_writes_continue_through_minority_outage(self):
        session, service, backends = replicated_session()
        session.open()
        session.type_text(0, "start. ")
        session.save()
        backends[2].outage(1)
        session.type_text(0, "during outage. ")
        session.save()  # 2/3 ack -> success
        assert service.backend_health("doc") == [True, True, False]
        # Next save heals the straggler by ciphertext copy.
        session.type_text(0, "after. ")
        session.save()
        assert service.backend_health("doc") == [True, True, True]
        stored = {b._backend.store.get("doc").content for b in backends}
        assert len(stored) == 1
        assert any("healed" in f for f in service.failures)

    def test_quorum_loss_fails_closed(self):
        session, service, backends = replicated_session()
        session.open()
        session.type_text(0, "seed")
        session.save()
        backends[0].outage(10)
        backends[1].outage(10)
        session.type_text(0, "x")
        with pytest.raises(ProtocolError):
            session.save()

    def test_healed_content_is_authentic(self):
        """Healing copies ciphertext — the healed replica's copy still
        verifies under the document key."""
        session, service, backends = replicated_session()
        session.open()
        session.type_text(0, "authentic content here")
        session.save()
        backends[1].outage(1)
        session.type_text(0, "more. ")
        session.save()
        session.type_text(0, "heal trigger. ")
        session.save()
        from repro.core import load_document
        wire = backends[1]._backend.store.get("doc").content
        doc = load_document(wire, password="pw")
        assert doc.text == session.text


class TestWholeFileReplication:
    """The facade is provider-agnostic: the same outage/heal story over
    three Bespin file stores, routed entirely through the
    :class:`~repro.services.backend.ServiceBackend` protocol."""

    def _stack(self):
        from repro.client.bespin_client import BespinClient
        from repro.extension.bespin_ext import BespinExtension
        from repro.extension.passwords import PasswordVault
        from repro.net.channel import Channel
        from repro.net.policy import RetryPolicy
        from repro.services.backend import BESPIN
        from repro.services.bespin import BespinServer

        backends = [FlakyServer(BespinServer()) for _ in range(3)]
        service = ReplicatedService(backends, service=BESPIN)
        channel = Channel(service)
        path = "proj/notes.txt"
        channel.set_mediator(BespinExtension(
            PasswordVault({path: "pw"}),
            rng=DeterministicRandomSource(5),
        ))
        client = BespinClient(channel, path, policy=RetryPolicy(seed=5))
        return client, service, backends, path

    def test_full_save_heals_whole_file_straggler(self):
        client, service, backends, path = self._stack()
        client.open()
        client.type_text(0, "replicated across file stores. ")
        assert client.save().ok
        backends[2].outage(1)
        client.type_text(0, "during outage. ")
        assert client.save().ok  # 2/3 quorum
        assert service.backend_health(path) == [True, True, False]
        # whole-file providers need no copy-heal: the very next full
        # save rewrites the entire store, straggler included
        client.type_text(0, "after. ")
        assert client.save().ok
        assert service.backend_health(path) == [True, True, True]
        stored = {b._backend.files[path] for b in backends}
        assert len(stored) == 1

    def test_explicit_heal_copies_ciphertext(self):
        from repro.core.transform import EncryptionEngine

        client, service, backends, path = self._stack()
        client.open()
        client.type_text(0, "authentic bespin bytes")
        assert client.save().ok
        backends[1].outage(1)
        client.type_text(0, "v2. ")
        assert client.save().ok
        assert service.backend_health(path) == [True, False, True]
        # operator-style on-demand heal, no further saves required
        assert service.heal(path) == 1
        assert service.backend_health(path) == [True, True, True]
        assert any("healed" in f for f in service.failures)
        stored = {b._backend.files[path] for b in backends}
        assert len(stored) == 1
        wire = stored.pop()
        assert "authentic" not in wire  # ciphertext at rest, replicated
        recovered = EncryptionEngine(password="pw",
                                     scheme="recb").decrypt(wire)
        assert recovered == client.editor.text


class TestDivergence:
    def test_minority_tampering_outvoted_and_logged(self):
        session, service, backends = replicated_session()
        session.open()
        session.type_text(0, "the agreed truth")
        session.save()
        session.close()
        # one provider silently swaps in different bytes
        backends[2]._backend.store.get("doc").content = "tampered!"
        reader = PrivateEditingSession(
            "doc", "pw", server=_Shim(service),
            rng=DeterministicRandomSource(3),
        )
        assert reader.open() == "the agreed truth"  # majority wins
        assert service.divergences  # and the minority is reported
