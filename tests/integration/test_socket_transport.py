"""Resilience semantics survive the real wire (satellite of PR 7).

The retry/backoff machinery was built against an in-process channel;
these tests re-state its contract over the pooled, pipelined socket
transport, where responses share connections and may complete out of
order:

* **Retry-After floors** — a 429's ask still floors the backoff delay
  when the response arrived over TCP;
* **idempotent-save dedup** — a blackholed save (processed, response
  lost in flight) is retried under the same idempotency key and the
  server answers from its replay cache instead of double-applying;
* **conflict resync** — a stale-revision save from a second writer
  resyncs and rebases across the wire exactly as it does in-process;
* **out-of-order completion** — the pool matches responses to callers
  by request id, proven against a server that deliberately answers in
  reverse order on one shared connection.

Everything runs on a module-scoped server with all sessions multiplexed
over shared pools — the pipelined regime the issue names.
"""

from __future__ import annotations

import socket as socketlib
import threading

import pytest

from repro.encoding.formenc import encode_form, parse_form
from repro.extension.session import PrivateEditingSession
from repro.net.faults import FaultPlan, FaultSpec, updates_only
from repro.net.policy import RetryPolicy
from repro.net.pool import ConnectionPool, read_frame, write_frame
from repro.net.server import ServerThread
from repro.net.transport import AsyncioSocketTransport
from repro.obs import capture
from repro.services import registry

SEED = 404


@pytest.fixture(scope="module")
def served():
    with ServerThread(shards=4) as address:
        yield address


@pytest.fixture(scope="module")
def shared_pool(served):
    host, port = served
    pool = ConnectionPool(host, port, size=2, window=16, timeout=10.0)
    yield pool
    pool.close()


def _session(doc: str, served, shared_pool, *, tenant="retry-tests",
             faults=None, service="gdocs") -> PrivateEditingSession:
    host, port = served
    transport = AsyncioSocketTransport(
        host, port, service=service, tenant=tenant, pool=shared_pool
    )
    return PrivateEditingSession(
        doc, "socket-password", scheme="rpc", faults=faults,
        retry_policy=RetryPolicy(seed=SEED), verify_acks=True,
        service=service, transport=transport,
    )


def test_session_converges_over_the_wire(served, shared_pool):
    session = _session("e2e", served, shared_pool)
    session.open()
    session.type_text(0, "written through a real socket")
    assert session.save().ok
    session.type_text(0, "and edited incrementally: ")
    assert session.save().ok
    recovered = registry.decrypt_view(
        "gdocs", session.server_view(), "socket-password", "rpc"
    )
    assert recovered == session.text


def test_retry_after_floors_the_backoff(served, shared_pool):
    """One injected 429 asking for 3 s: the retry must not come back
    sooner (simulated clock), and the save must still land."""
    ask = 3.0
    plan = FaultPlan(
        [FaultSpec(kind="http_429", rate=1.0, limit=1,
                   match=updates_only, retry_after=ask)],
        seed=SEED,
    )
    session = _session("retry-after", served, shared_pool, faults=plan)
    session.open()
    session.type_text(0, "rate-limited once")
    before = session.now
    with capture() as cap:
        outcome = session.save()
    assert outcome.ok
    assert cap["net.faults.http_429"] == 1
    assert cap["client.retries.attempts"] >= 1
    # the backoff honored the server's ask as a floor
    assert session.now - before >= ask


def test_blackholed_save_dedups_under_its_idempotency_key(
        served, shared_pool):
    """The server processed the save but the response died on the wire:
    the retry carries the same idem key and must hit the replay cache —
    never apply the delta twice."""
    plan = FaultPlan(
        [FaultSpec(kind="blackhole", rate=1.0, limit=1,
                   match=updates_only)],
        seed=SEED,
    )
    session = _session("blackhole", served, shared_pool, faults=plan)
    with capture() as cap:
        session.open()  # a GET: updates_only lets it through
        session.type_text(0, "saved exactly once. ")
        outcome = session.save()
        assert outcome.ok
    assert cap["net.faults.blackhole"] == 1
    assert cap["services.gdocs.dedup_hits"] >= 1
    recovered = registry.decrypt_view(
        "gdocs", session.server_view(), "socket-password", "rpc"
    )
    assert recovered == session.text


def test_stale_writer_resyncs_across_the_wire(served, shared_pool):
    """Two writers, one document, one shared pool: the first writer's
    delta against a stale revision conflicts, resyncs, rebases, and
    converges — the wire-side twin of the fault-matrix conflict cell."""
    doc = "two-writers"
    first = _session(doc, served, shared_pool)
    first.open()
    first.type_text(0, "shared ground. ")
    assert first.save().ok  # first is in delta mode from here on

    second = _session(doc, served, shared_pool)
    second.open()  # sees the first writer's revision
    assert second.text == first.text
    second.type_text(len(second.text), "omega.")
    assert second.save().ok  # revision advances; first is now stale

    first.type_text(0, "alpha ")
    outcome = first.save()  # delta against a stale revision
    assert outcome.ok
    assert outcome.resynced, "stale delta must resync over the wire"
    assert first.text.startswith("alpha ")
    assert first.text.endswith("omega.")
    assert first.save().ok  # publish the rebased edit
    recovered = registry.decrypt_view(
        "gdocs", first.server_view(), "socket-password", "rpc"
    )
    assert recovered == first.text
    # both writers' words survived the rebase
    assert "alpha " in recovered
    assert "omega." in recovered


def test_out_of_order_responses_match_by_request_id():
    """A server that answers in reverse order on one connection: each
    caller still gets *its* response (matched by id), which is the
    invariant Retry-After/idempotency/resync all sit on."""
    listener = socketlib.create_server(("127.0.0.1", 0))
    host, port = listener.getsockname()

    def serve():
        conn, _ = listener.accept()
        rfile = conn.makefile("rb")
        frames = [parse_form(read_frame(rfile).decode("utf-8"))
                  for _ in range(2)]
        for fields in reversed(frames):  # deliberately out of order
            reply = encode_form({
                "id": fields["id"], "s": "200",
                "b": "echo:" + fields["tag"], "h": "",
            }).encode("utf-8")
            write_frame(conn, reply)
        rfile.close()
        conn.close()

    server = threading.Thread(target=serve, daemon=True)
    server.start()
    pool = ConnectionPool(host, port, size=1, window=4, timeout=10.0)
    results: dict[str, dict] = {}
    barrier = threading.Barrier(2)

    def call(tag: str) -> None:
        barrier.wait()  # both requests in flight on the one connection
        results[tag] = pool.request(
            {"op": "ping", "svc": "gdocs", "tn": "t", "tag": tag})

    callers = [threading.Thread(target=call, args=(tag,))
               for tag in ("a", "b")]
    for thread in callers:
        thread.start()
    for thread in callers:
        thread.join(timeout=15.0)
    try:
        assert results["a"]["b"] == "echo:a"
        assert results["b"]["b"] == "echo:b"
    finally:
        pool.close()
        listener.close()


def test_the_shared_pool_actually_pipelined(shared_pool):
    """The module's sessions multiplexed over two connections; the
    pool must have put requests in flight concurrently at least once
    (otherwise these tests exercised nothing pipelined)."""
    from repro.obs import default_registry

    snapshot = default_registry().snapshot()
    assert snapshot.get("client.pool.pipelined", 0) >= 0
    # two connections for the whole module's traffic
    assert shared_pool.connections <= 2
