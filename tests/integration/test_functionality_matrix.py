"""SVII-A's functionality matrix, as executable checks.

"Because the Google Documents server now only has access to an
encrypted document, some features now become unavailable: (1)
translation; (2) spell checking; (3) drawing pictures; (4) exporting
... Other core features such as various content formatting tools and
the word counting tools work fine with our extension since they
operate on the client side."
"""

import pytest

from repro.crypto.random import DeterministicRandomSource
from repro.errors import BlockedRequestError
from repro.extension import PrivateEditingSession

FEATURES_BROKEN = ["spellcheck", "translate", "export", "draw"]
FEATURES_WORKING = ["word_count", "formatting", "editing", "save", "reload"]


@pytest.fixture
def session():
    s = PrivateEditingSession("doc", "pw", scheme="recb",
                              rng=DeterministicRandomSource(1))
    s.open()
    s.type_text(0, "the quick brown fox and a zzyzx typo")
    s.save()
    return s


class TestBrokenFeatures:
    """Server-side features are *blocked* by the extension (fail closed:
    they would otherwise upload or depend on plaintext)."""

    def test_spellcheck_blocked(self, session):
        with pytest.raises(BlockedRequestError):
            session.client.spellcheck()

    def test_translate_blocked(self, session):
        with pytest.raises(BlockedRequestError):
            session.client.translate()

    def test_export_blocked(self, session):
        with pytest.raises(BlockedRequestError):
            session.client.export()

    def test_drawing_blocked(self, session):
        with pytest.raises(BlockedRequestError):
            session.client.draw("circle 10 10 5")


class TestBrokenWithoutExtensionTheyWork:
    """Control: the same features work when the extension is off —
    confirming the loss is caused by encryption, not by our server."""

    @pytest.fixture
    def plain(self):
        s = PrivateEditingSession("doc", "pw", extension_enabled=False)
        s.open()
        s.type_text(0, "the quick brown fox and a zzyzx typo")
        s.save()
        return s

    def test_spellcheck_works_plain(self, plain):
        assert "zzyzx" in plain.client.spellcheck()

    def test_translate_works_plain(self, plain):
        assert plain.client.translate()  # non-empty translation

    def test_export_works_plain(self, plain):
        assert plain.client.export().startswith("{\\rtf1")

    def test_draw_works_plain(self, plain):
        assert plain.client.draw("line").startswith("PNG[")


class TestWorkingFeatures:
    def test_word_count_client_side(self, session):
        assert session.client.word_count() == 8

    def test_editing_and_save(self, session):
        session.type_text(0, "MORE ")
        outcome = session.save()
        assert outcome.kind == "delta" and not outcome.conflict

    def test_reload(self, session):
        reader = PrivateEditingSession(
            "doc", "pw", server=session.server,
            rng=DeterministicRandomSource(2),
        )
        assert reader.open() == session.text

    def test_passive_refresh(self, session):
        """Every passive reader gets automatic content refreshing."""
        reader = PrivateEditingSession(
            "doc", "pw", server=session.server,
            rng=DeterministicRandomSource(3),
        )
        reader.open()
        session.type_text(0, "breaking: ")
        session.save()
        assert reader.client.refresh() == session.text
