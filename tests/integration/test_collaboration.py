"""Collaborative editing under the extension (SVII-A).

"Collaborative editing is partially functional in that every passive
reader gets automatic content refreshing.  Simultaneous editing by
different parties leads to client's complaints of multiple people
editing the same region of the document.  This is due to the fact that
the extension does not update the contentFromServerHash value..."
"""

from repro.client.gdocs_client import CONFLICT_COMPLAINT, GDocsClient
from repro.crypto.random import DeterministicRandomSource
from repro.extension import GDocsExtension, PasswordVault
from repro.net.channel import Channel
from repro.services.gdocs.server import GDocsServer


def make_user(server, doc_id, password, seed, decrypt_acks=False):
    """One user's full stack: channel + extension + client, sharing the
    server (and, by password, the document key)."""
    channel = Channel(server)
    extension = GDocsExtension(
        PasswordVault({doc_id: password}),
        rng=DeterministicRandomSource(seed),
        decrypt_acks=decrypt_acks,
    )
    channel.set_mediator(extension)
    return GDocsClient(channel, doc_id)


class TestSharedDocument:
    def test_share_by_password(self):
        server = GDocsServer()
        alice = make_user(server, "doc", "shared-pw", 1)
        alice.open()
        alice.type_text(0, "alice's shared notes")
        alice.save()

        bob = make_user(server, "doc", "shared-pw", 2)
        assert bob.open() == "alice's shared notes"

    def test_passive_reader_gets_refreshes(self):
        server = GDocsServer()
        alice = make_user(server, "doc", "pw", 3)
        alice.open()
        alice.type_text(0, "v1")
        alice.save()
        reader = make_user(server, "doc", "pw", 4)
        reader.open()
        alice.type_text(2, " then v2")
        alice.save()
        assert reader.refresh() == "v1 then v2"


class TestSimultaneousEditing:
    def test_conflict_produces_the_papers_complaint(self):
        """Concurrent edits + blanked Ack fields → the complaint string
        the paper reports, faithfully reproduced."""
        server = GDocsServer()
        alice = make_user(server, "doc", "pw", 5)
        bob = make_user(server, "doc", "pw", 6)

        alice.open()
        alice.type_text(0, "base text from alice. ")
        alice.save()

        bob.open()  # sees alice's text
        bob.type_text(0, "bob's insert. ")
        bob.save()  # advances the server revision

        # alice edits against her stale revision
        alice.type_text(0, "alice again. ")
        outcome = alice.save()
        assert outcome.conflict
        assert CONFLICT_COMPLAINT in alice.complaints

    def test_recovery_overwrites_via_full_save(self):
        """After complaining, the client recovers with a full save —
        which silently clobbers the other editor's change (exactly the
        degraded collaboration the paper describes)."""
        server = GDocsServer()
        alice = make_user(server, "doc", "pw", 7)
        bob = make_user(server, "doc", "pw", 8)

        alice.open()
        alice.type_text(0, "base. ")
        alice.save()
        bob.open()
        bob.type_text(0, "bob. ")
        bob.save()

        alice.type_text(0, "alice. ")
        assert alice.save().conflict      # complaint
        outcome = alice.save()            # recovery
        assert outcome.kind == "full" and not outcome.conflict

        reader = make_user(server, "doc", "pw", 9)
        text = reader.open()
        assert "alice." in text
        assert "bob." not in text  # lost update

    def test_decrypt_acks_option_repairs_resync(self):
        """Beyond-the-paper ablation: decrypting Ack content (instead of
        blanking it) lets the conflicting client resync like the
        unencrypted client does — no complaint, no lost update."""
        server = GDocsServer()
        alice = make_user(server, "doc", "pw", 10, decrypt_acks=True)
        bob = make_user(server, "doc", "pw", 11, decrypt_acks=True)

        alice.open()
        alice.type_text(0, "base. ")
        alice.save()
        bob.open()
        bob.type_text(0, "bob. ")
        bob.save()

        alice.type_text(0, "alice. ")
        outcome = alice.save()
        assert outcome.conflict
        assert alice.complaints == []        # silent resync
        assert alice.editor.text == "bob. base. "  # adopted merge base
        alice.type_text(0, "alice. ")
        alice.save()
        reader = make_user(server, "doc", "pw", 12)
        text = reader.open()
        assert "alice." in text and "bob." in text  # nothing lost
