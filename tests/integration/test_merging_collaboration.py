"""Collaboration with a merging (OT) server — the other side of
SVII-A's story.

The paper's conflict complaints stem from a server we modelled as
*rejecting* stale deltas.  The real server merged them; with
``GDocsServer(merge_concurrent=True)``:

* plaintext clients collaborate seamlessly (control group);
* **encrypted collaboration works for rECB**: the merged Ack carries a
  ciphertext ``mergePatch`` the extension applies to its mirror — the
  server merges record-aligned ciphertext deltas it cannot read, and
  the stale client fast-forwards without a resync round-trip;
* RPC's document-wide checksum is structurally incompatible with blind
  merging: the result fails integrity verification, which the reader's
  extension catches (it never shows corrupted plaintext);
* when the extension *cannot* follow the patch (stego framing, hash
  mismatch), it downgrades the merged Ack to the conflict path,
  keeping its mirror safe.
"""

import pytest

from repro.client.gdocs_client import GDocsClient, SaveOutcome
from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import looks_encrypted
from repro.extension import GDocsExtension, PasswordVault
from repro.net.channel import Channel
from repro.net.faults import FaultPlan, FaultSpec, updates_only
from repro.net.policy import RetryPolicy
from repro.services.gdocs.server import GDocsServer


def plain_user(server, doc_id="doc"):
    return GDocsClient(Channel(server), doc_id)


def encrypted_user(server, seed, scheme="recb", decrypt_acks=True,
                   doc_id="doc", faults=None, resilient=False):
    channel = Channel(server, faults=faults)
    extension = GDocsExtension(
        PasswordVault({doc_id: "pw"}), scheme=scheme,
        rng=DeterministicRandomSource(seed),
        decrypt_acks=decrypt_acks,
    )
    channel.set_mediator(extension)
    policy = RetryPolicy(seed=seed) if resilient else None
    client = GDocsClient(channel, doc_id, policy=policy)
    return client, extension


BASE = "alpha bravo charlie delta echo foxtrot golf hotel india. "


class TestPlaintextControl:
    def test_concurrent_edits_merge(self):
        server = GDocsServer(merge_concurrent=True)
        alice = plain_user(server)
        bob = plain_user(server)
        alice.open()
        alice.type_text(0, BASE)
        alice.save()
        bob.open()
        bob.save()  # session-opening identity full save (deduped)

        # concurrent: bob edits the tail, alice the head
        bob.type_text(len(BASE), "BOB-TAIL.")
        bob.save()
        alice.type_text(0, "ALICE-HEAD. ")
        outcome = alice.save()

        assert not outcome.conflict
        assert server.merges_performed == 1
        merged = server.store.get("doc").content
        assert merged.startswith("ALICE-HEAD. ")
        assert merged.endswith("BOB-TAIL.")
        assert alice.editor.text == merged  # silent resync
        assert alice.complaints == []

    def test_chain_of_concurrent_edits(self):
        server = GDocsServer(merge_concurrent=True)
        alice = plain_user(server)
        bob = plain_user(server)
        alice.open()
        alice.type_text(0, BASE)
        alice.save()
        bob.open()
        bob.save()
        for i in range(3):
            bob.type_text(len(bob.editor.text), f"b{i}. ")
            bob.save()
        alice.type_text(0, "a0. ")
        outcome = alice.save()  # stale by 3 revisions
        assert not outcome.conflict
        text = server.store.get("doc").content
        assert text.startswith("a0. ")
        assert "b2. " in text


class TestEncryptedRecbMerging:
    def test_disjoint_encrypted_edits_merge(self):
        """The headline: the server merges ciphertext deltas it cannot
        read, and both users converge on the merged plaintext."""
        server = GDocsServer(merge_concurrent=True)
        alice, _ = encrypted_user(server, 1)
        bob, _ = encrypted_user(server, 2)

        alice.open()
        alice.type_text(0, BASE)
        alice.save()
        bob.open()
        assert bob.editor.text == BASE
        bob.save()  # identity full save; extension re-sends mirror wire

        bob.type_text(len(BASE), "BOB-TAIL.")
        bob.save()
        alice.type_text(0, "ALICE-HEAD. ")
        outcome = alice.save()

        assert not outcome.conflict
        assert server.merges_performed == 1
        stored = server.store.get("doc").content
        assert looks_encrypted(stored)
        assert "ALICE" not in stored and "BOB" not in stored

        # alice converged via the decrypted merged Ack
        assert alice.editor.text.startswith("ALICE-HEAD. ")
        assert alice.editor.text.endswith("BOB-TAIL.")

        # an independent reader decrypts the merged ciphertext cleanly
        reader, _ = encrypted_user(server, 3)
        text = reader.open()
        assert text == alice.editor.text

    def test_continued_editing_after_merge(self):
        server = GDocsServer(merge_concurrent=True)
        alice, _ = encrypted_user(server, 4)
        bob, _ = encrypted_user(server, 5)
        alice.open()
        alice.type_text(0, BASE)
        alice.save()
        bob.open()
        bob.save()
        bob.type_text(len(BASE), "B1.")
        bob.save()
        alice.type_text(0, "A1. ")
        alice.save()  # merged; mirror resynced
        alice.type_text(0, "A2. ")
        outcome = alice.save()  # normal delta on the merged base
        assert outcome.kind == "delta" and not outcome.conflict
        reader, _ = encrypted_user(server, 6)
        assert reader.open().startswith("A2. A1. ")


class TestRpcIncompatibleWithBlindMerge:
    def test_merged_rpc_fails_integrity_loudly(self):
        """Both clients' checksum patches are merged into a document
        with inconsistent bookkeeping — readers must refuse it, never
        show silently corrupted text."""
        server = GDocsServer(merge_concurrent=True)
        alice, _ = encrypted_user(server, 7, scheme="rpc")
        bob, _ = encrypted_user(server, 8, scheme="rpc")
        alice.open()
        alice.type_text(0, BASE)
        alice.save()
        bob.open()
        bob.save()
        bob.type_text(len(BASE), "BOB.")
        bob.save()
        alice.type_text(0, "ALICE. ")
        alice.save()
        if server.merges_performed == 0:
            pytest.skip("server declined to merge (cdelta did not fit)")
        reader, extension = encrypted_user(server, 9, scheme="rpc")
        seen = reader.open()
        assert seen != "ALICE. " + BASE + "BOB."
        assert looks_encrypted(seen)  # refused, shown as ciphertext
        assert extension.warnings


class TestMergePatchFollowing:
    def test_merged_ack_followed_without_decrypt_acks(self):
        """The merged Ack carries a ciphertext ``mergePatch``; the
        extension fast-forwards its mirror over it (no content echo,
        no resync round-trip) and hands the client the merged
        plaintext — even the paper-faithful extension collaborates."""
        server = GDocsServer(merge_concurrent=True)
        alice, _ = encrypted_user(server, 10, decrypt_acks=False)
        bob, _ = encrypted_user(server, 11, decrypt_acks=False)
        alice.open()
        alice.type_text(0, BASE)
        alice.save()
        bob.open()
        bob.save()
        bob.type_text(len(BASE), "BOB.")
        bob.save()
        alice.type_text(0, "ALICE. ")
        outcome = alice.save()
        assert outcome.ok and not outcome.conflict
        assert outcome.ack.merged
        assert alice.editor.text == "ALICE. " + BASE + "BOB."
        reader, _ = encrypted_user(server, 12, decrypt_acks=False)
        assert reader.open() == "ALICE. " + BASE + "BOB."

    def test_merged_ack_downgraded_to_conflict_under_stego(self):
        """Under steganographic framing the patch coordinates are over
        the stego wire, not the mirror — the extension must refuse to
        follow and downgrade to the paper's conflict behaviour rather
        than let the mirror drift."""
        server = GDocsServer(merge_concurrent=True)

        def stego_user(seed):
            channel = Channel(server)
            extension = GDocsExtension(
                PasswordVault({"doc": "pw"}),
                rng=DeterministicRandomSource(seed), stego=True,
            )
            channel.set_mediator(extension)
            return GDocsClient(channel, "doc"), extension

        alice, _ = stego_user(20)
        bob, _ = stego_user(21)
        alice.open()
        alice.type_text(0, BASE)
        alice.save()
        bob.open()
        bob.save()
        bob.type_text(len(BASE), "BOB.")
        bob.save()
        alice.type_text(0, "ALICE. ")
        outcome = alice.save()
        assert outcome.conflict  # downgraded by the extension
        alice.save()  # recovery full save
        reader, _ = stego_user(22)
        text = reader.open()
        assert text.startswith("ALICE. ")  # consistent, bob's edit lost


def _drain(*clients, rounds=12):
    """Save until every client's save is a clean no-op (quiesced).

    Returns True when the pair reached a fixed point inside the round
    budget — the same quiescing discipline ``repro.fuzz``'s concurrent
    mode uses before it compares states.
    """
    for _ in range(rounds):
        outcomes = [c.save() for c in clients]
        if all(o.ok and o.kind == "noop" for o in outcomes):
            return True
    return False


class TestMergingUnderFaults:
    """Resilient clients, a merging server, and a faulty network — the
    combination the fuzzer's concurrent mode exercised when it found
    the merged-Ack duplication bug (``tests/corpus/
    merged-ack-rebase-dup.json``).  Every save must come back as a
    typed :class:`SaveOutcome`, and the pair must converge.
    """

    def _pair(self, seed, faults=None):
        server = GDocsServer(merge_concurrent=True)
        alice, _ = encrypted_user(server, seed, resilient=True,
                                  faults=faults)
        bob, _ = encrypted_user(server, seed + 1, resilient=True)
        alice.open()
        alice.type_text(0, BASE)
        assert alice.save().ok
        bob.open()
        bob.save()
        return server, alice, bob

    def test_resilient_merged_ack_not_applied_twice(self):
        """Regression for the fuzzer's first find: a resilient client
        receiving a *merged* Ack must adopt the merged content — not
        rebase its just-applied delta over it, which applied the edit a
        second time (legacy clients always got this right)."""
        server, alice, bob = self._pair(60)
        bob.type_text(len(BASE), "BOB-TAIL.")
        bob.save()
        alice.type_text(0, "ALICE-HEAD. ")
        outcome = alice.save()
        assert outcome.ok and not outcome.conflict
        assert server.merges_performed == 1
        assert alice.editor.text.count("ALICE-HEAD. ") == 1
        assert alice.editor.text.count("BOB-TAIL.") == 1
        reader, _ = encrypted_user(server, 66)
        assert reader.open() == alice.editor.text

    @pytest.mark.parametrize("kind", ["drop", "dup", "blackhole"])
    def test_concurrent_merge_converges_under_schedule(self, kind):
        """A deterministic fault schedule hits alice's next two saves;
        retries + idempotency keys must keep the merge exactly-once."""
        plan = FaultPlan([FaultSpec(kind=kind, at=(4, 6), limit=2,
                                    match=updates_only)], seed=kind == "dup")
        server, alice, bob = self._pair(70, faults=plan)
        bob.type_text(len(BASE), "BOB-TAIL.")
        bob.save()
        alice.type_text(0, "ALICE-HEAD. ")
        outcome = alice.save()
        assert isinstance(outcome, SaveOutcome)  # typed, never raised
        assert _drain(alice, bob)
        reader, _ = encrypted_user(server, 77)
        text = reader.open()
        assert text == alice.editor.text
        assert text.count("ALICE-HEAD. ") == 1  # no replay duplication
        assert text.count("BOB-TAIL.") == 1

    @pytest.mark.parametrize("seed", range(5))
    def test_random_drop_dup_chaos_converges(self, seed):
        plan = FaultPlan(
            [FaultSpec(kind="drop", rate=0.25, match=updates_only),
             FaultSpec(kind="dup", rate=0.25, match=updates_only)],
            seed=900 + seed,
        )
        server, alice, bob = self._pair(80 + seed, faults=plan)
        for i in range(4):
            bob.type_text(len(bob.editor.text), f"b{i}.")
            assert isinstance(bob.save(), SaveOutcome)
            alice.type_text(0, f"a{i}.")
            assert isinstance(alice.save(), SaveOutcome)
        assert _drain(alice, bob), "clients failed to quiesce"
        # a no-op save never contacts the server, so a client whose
        # last save predates the other's merge is honestly stale —
        # refresh both (the fuzzer's concurrent mode does the same)
        alice.open()
        bob.open()
        reader, _ = encrypted_user(server, 500 + seed)
        text = reader.open()
        assert text == alice.editor.text == bob.editor.text
        for i in range(4):
            assert text.count(f"a{i}.") == 1
            assert text.count(f"b{i}.") == 1

    def test_exhausted_retries_surface_as_typed_outcome(self):
        """When the network eats every save, the resilient client must
        report ``ok=False`` on a SaveOutcome — never raise, never
        pretend success."""
        plan = FaultPlan([FaultSpec(kind="drop", rate=1.0,
                                    match=updates_only)], seed=3)
        server = GDocsServer(merge_concurrent=True)
        alice, _ = encrypted_user(server, 90, resilient=True, faults=plan)
        alice.open()
        alice.type_text(0, BASE)
        outcome = alice.save()
        assert isinstance(outcome, SaveOutcome)
        assert not outcome.ok
        assert outcome.error
