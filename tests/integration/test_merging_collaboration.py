"""Collaboration with a merging (OT) server — the other side of
SVII-A's story.

The paper's conflict complaints stem from a server we modelled as
*rejecting* stale deltas.  The real server merged them; with
``GDocsServer(merge_concurrent=True)``:

* plaintext clients collaborate seamlessly (control group);
* **encrypted collaboration works for rECB** when the extension can
  resync its mirror from Acks (``decrypt_acks=True``) — the server
  merges record-aligned ciphertext deltas it cannot read;
* RPC's document-wide checksum is structurally incompatible with blind
  merging: the result fails integrity verification, which the reader's
  extension catches (it never shows corrupted plaintext);
* the paper-faithful extension (no decrypt_acks) downgrades a merged
  Ack to the conflict path, keeping its mirror safe.
"""

import pytest

from repro.client.gdocs_client import GDocsClient
from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import looks_encrypted
from repro.extension import GDocsExtension, PasswordVault
from repro.net.channel import Channel
from repro.services.gdocs.server import GDocsServer


def plain_user(server, doc_id="doc"):
    return GDocsClient(Channel(server), doc_id)


def encrypted_user(server, seed, scheme="recb", decrypt_acks=True,
                   doc_id="doc"):
    channel = Channel(server)
    extension = GDocsExtension(
        PasswordVault({doc_id: "pw"}), scheme=scheme,
        rng=DeterministicRandomSource(seed),
        decrypt_acks=decrypt_acks,
    )
    channel.set_mediator(extension)
    client = GDocsClient(channel, doc_id)
    return client, extension


BASE = "alpha bravo charlie delta echo foxtrot golf hotel india. "


class TestPlaintextControl:
    def test_concurrent_edits_merge(self):
        server = GDocsServer(merge_concurrent=True)
        alice = plain_user(server)
        bob = plain_user(server)
        alice.open()
        alice.type_text(0, BASE)
        alice.save()
        bob.open()
        bob.save()  # session-opening identity full save (deduped)

        # concurrent: bob edits the tail, alice the head
        bob.type_text(len(BASE), "BOB-TAIL.")
        bob.save()
        alice.type_text(0, "ALICE-HEAD. ")
        outcome = alice.save()

        assert not outcome.conflict
        assert server.merges_performed == 1
        merged = server.store.get("doc").content
        assert merged.startswith("ALICE-HEAD. ")
        assert merged.endswith("BOB-TAIL.")
        assert alice.editor.text == merged  # silent resync
        assert alice.complaints == []

    def test_chain_of_concurrent_edits(self):
        server = GDocsServer(merge_concurrent=True)
        alice = plain_user(server)
        bob = plain_user(server)
        alice.open()
        alice.type_text(0, BASE)
        alice.save()
        bob.open()
        bob.save()
        for i in range(3):
            bob.type_text(len(bob.editor.text), f"b{i}. ")
            bob.save()
        alice.type_text(0, "a0. ")
        outcome = alice.save()  # stale by 3 revisions
        assert not outcome.conflict
        text = server.store.get("doc").content
        assert text.startswith("a0. ")
        assert "b2. " in text


class TestEncryptedRecbMerging:
    def test_disjoint_encrypted_edits_merge(self):
        """The headline: the server merges ciphertext deltas it cannot
        read, and both users converge on the merged plaintext."""
        server = GDocsServer(merge_concurrent=True)
        alice, _ = encrypted_user(server, 1)
        bob, _ = encrypted_user(server, 2)

        alice.open()
        alice.type_text(0, BASE)
        alice.save()
        bob.open()
        assert bob.editor.text == BASE
        bob.save()  # identity full save; extension re-sends mirror wire

        bob.type_text(len(BASE), "BOB-TAIL.")
        bob.save()
        alice.type_text(0, "ALICE-HEAD. ")
        outcome = alice.save()

        assert not outcome.conflict
        assert server.merges_performed == 1
        stored = server.store.get("doc").content
        assert looks_encrypted(stored)
        assert "ALICE" not in stored and "BOB" not in stored

        # alice converged via the decrypted merged Ack
        assert alice.editor.text.startswith("ALICE-HEAD. ")
        assert alice.editor.text.endswith("BOB-TAIL.")

        # an independent reader decrypts the merged ciphertext cleanly
        reader, _ = encrypted_user(server, 3)
        text = reader.open()
        assert text == alice.editor.text

    def test_continued_editing_after_merge(self):
        server = GDocsServer(merge_concurrent=True)
        alice, _ = encrypted_user(server, 4)
        bob, _ = encrypted_user(server, 5)
        alice.open()
        alice.type_text(0, BASE)
        alice.save()
        bob.open()
        bob.save()
        bob.type_text(len(BASE), "B1.")
        bob.save()
        alice.type_text(0, "A1. ")
        alice.save()  # merged; mirror resynced
        alice.type_text(0, "A2. ")
        outcome = alice.save()  # normal delta on the merged base
        assert outcome.kind == "delta" and not outcome.conflict
        reader, _ = encrypted_user(server, 6)
        assert reader.open().startswith("A2. A1. ")


class TestRpcIncompatibleWithBlindMerge:
    def test_merged_rpc_fails_integrity_loudly(self):
        """Both clients' checksum patches are merged into a document
        with inconsistent bookkeeping — readers must refuse it, never
        show silently corrupted text."""
        server = GDocsServer(merge_concurrent=True)
        alice, _ = encrypted_user(server, 7, scheme="rpc")
        bob, _ = encrypted_user(server, 8, scheme="rpc")
        alice.open()
        alice.type_text(0, BASE)
        alice.save()
        bob.open()
        bob.save()
        bob.type_text(len(BASE), "BOB.")
        bob.save()
        alice.type_text(0, "ALICE. ")
        alice.save()
        if server.merges_performed == 0:
            pytest.skip("server declined to merge (cdelta did not fit)")
        reader, extension = encrypted_user(server, 9, scheme="rpc")
        seen = reader.open()
        assert seen != "ALICE. " + BASE + "BOB."
        assert looks_encrypted(seen)  # refused, shown as ciphertext
        assert extension.warnings


class TestFaithfulExtensionDegradesSafely:
    def test_merged_ack_downgraded_to_conflict(self):
        """Without decrypt_acks the extension cannot follow a merge;
        it must force the client into full-save recovery rather than
        let the mirror drift."""
        server = GDocsServer(merge_concurrent=True)
        alice, _ = encrypted_user(server, 10, decrypt_acks=False)
        bob, _ = encrypted_user(server, 11, decrypt_acks=False)
        alice.open()
        alice.type_text(0, BASE)
        alice.save()
        bob.open()
        bob.save()
        bob.type_text(len(BASE), "BOB.")
        bob.save()
        alice.type_text(0, "ALICE. ")
        outcome = alice.save()
        assert outcome.conflict  # downgraded by the extension
        alice.save()  # recovery full save
        reader, _ = encrypted_user(server, 12, decrypt_acks=False)
        text = reader.open()
        assert text.startswith("ALICE. ")  # consistent, bob's edit lost
