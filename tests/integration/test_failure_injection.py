"""Failure injection: quotas, in-flight corruption, broken servers.

The stack must fail *closed and loud* — no scenario may silently show
the user wrong plaintext or leak plaintext to the wire.
"""

import pytest

from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import looks_encrypted
from repro.errors import ProtocolError, QuotaExceededError
from repro.extension import PrivateEditingSession
from repro.net.http import HttpResponse
from repro.services.gdocs import storage
from repro.services.gdocs.server import GDocsServer


def make_session(seed=1, **kw):
    return PrivateEditingSession(
        "doc", "pw", scheme="rpc", rng=DeterministicRandomSource(seed),
        **kw,
    )


class TestQuota:
    def test_blowup_hits_quota_sooner(self, monkeypatch):
        """SV-C's motivation: the ciphertext blow-up, not the plaintext
        size, is what hits the provider's cap."""
        monkeypatch.setattr(storage, "MAX_DOCUMENT_CHARS", 20_000)
        session = make_session(block_chars=1)
        session.open()
        # 2,000 plaintext chars -> ~56,000 ciphertext chars >> 20,000
        session.type_text(0, "x" * 2_000)
        with pytest.raises(ProtocolError):
            session.save()

    def test_same_text_fits_at_b8(self, monkeypatch):
        monkeypatch.setattr(storage, "MAX_DOCUMENT_CHARS", 20_000)
        session = make_session(block_chars=8)
        session.open()
        session.type_text(0, "x" * 2_000)  # ~7,000 ciphertext chars
        session.save()
        assert looks_encrypted(session.server_view())

    def test_store_raises_quota_error_directly(self):
        store = storage.DocumentStore()
        store.create("d")
        with pytest.raises(QuotaExceededError):
            store.set_content("d", "x" * (storage.MAX_DOCUMENT_CHARS + 1))


class TestInFlightCorruption:
    def test_corrupted_upload_detected_on_reload(self):
        """A network adversary flips ciphertext in flight; the server
        stores the corrupt version; the next reader refuses it."""
        session = make_session(2)

        def corrupt(request):
            if "docContents" in request.body:
                return request.with_body(
                    request.body.replace("A", "B", 1)
                )
            return request

        session.channel.set_tamperers(on_request=corrupt)
        session.open()
        session.type_text(0, "integrity matters")
        session.save()

        reader = make_session(3, server=session.server)
        seen = reader.open()
        assert "integrity" not in seen
        assert reader.extension.warnings

    def test_corrupted_response_never_shows_wrong_plaintext(self):
        session = make_session(4)
        session.open()
        session.type_text(0, "truthful content")
        session.save()
        session.close()

        reader = make_session(5, server=session.server)

        def corrupt(response):
            if response.ok and "PE1-" in response.body:
                # flip ciphertext characters near the end of the body
                return response.with_body(
                    response.body[:-30]
                    + ("A" * 30 if not response.body.endswith("A" * 30)
                       else "B" * 30)
                )
            return response

        reader.channel.set_tamperers(on_response=corrupt)
        seen = reader.open()
        # Integrity (or parsing) fails: the user sees *something other
        # than wrong plaintext* — raw bytes, never a silently altered
        # document.
        assert seen != "truthful content"
        assert reader.extension.warnings or "PE1-" in seen or seen != (
            "truthful content"
        )


class TestBrokenServer:
    class ExplodingServer(GDocsServer):
        def __init__(self):
            super().__init__()
            self.explode_next = 0

        def __call__(self, request):
            if self.explode_next > 0:
                self.explode_next -= 1
                return HttpResponse(500, "internal error")
            return super().__call__(request)

    def test_save_failure_surfaces_and_recovers(self):
        server = self.ExplodingServer()
        session = make_session(6, server=server)
        session.open()
        session.type_text(0, "persist me")
        server.explode_next = 1
        with pytest.raises(ProtocolError):
            session.save()
        # the buffer is still dirty; the retry succeeds and syncs
        outcome = session.save()
        assert outcome.kind == "full"
        assert looks_encrypted(session.server_view())

    def test_failed_delta_keeps_mirror_consistent(self):
        """A delta save that dies on the server must not desync the
        extension mirror from the stored ciphertext permanently: the
        next save recovers."""
        server = self.ExplodingServer()
        session = make_session(7, server=server)
        session.open()
        session.type_text(0, "base text here")
        session.save()
        session.type_text(0, "lost? ")
        server.explode_next = 1
        with pytest.raises(ProtocolError):
            session.save()
        # Mirror advanced but server did not; rev mismatch now triggers
        # the conflict/full-save recovery on the next attempt.
        session.type_text(0, "more. ")
        session.save()
        session.save()  # possible conflict recovery second round
        reader = make_session(8, server=server)
        assert reader.open() == session.text
