"""The command-line interface, end to end on real files."""

import subprocess
import sys

import pytest

from repro.cli import main

PLAINTEXT = "my secret diary entry about the merger\n"


def run_cli(argv, tmp_path=None):
    """Invoke the CLI in-process; returns exit code."""
    return main(argv)


@pytest.fixture
def plain_file(tmp_path):
    path = tmp_path / "plain.txt"
    path.write_text(PLAINTEXT)
    return path


class TestEncryptDecrypt:
    def test_round_trip(self, tmp_path, plain_file):
        wire = tmp_path / "doc.wire"
        out = tmp_path / "out.txt"
        assert run_cli(["encrypt", "--password", "pw",
                        "-o", str(wire), str(plain_file)]) == 0
        stored = wire.read_text()
        assert "merger" not in stored
        assert run_cli(["decrypt", "--password", "pw",
                        "-o", str(out), str(wire)]) == 0
        assert out.read_text() == PLAINTEXT

    @pytest.mark.parametrize("scheme", ["recb", "rpc"])
    def test_schemes(self, tmp_path, plain_file, scheme):
        wire = tmp_path / "doc.wire"
        out = tmp_path / "out.txt"
        assert run_cli(["encrypt", "--password", "pw", "--scheme", scheme,
                        "-o", str(wire), str(plain_file)]) == 0
        assert run_cli(["decrypt", "--password", "pw",
                        "-o", str(out), str(wire)]) == 0
        assert out.read_text() == PLAINTEXT

    def test_wrong_password_fails(self, tmp_path, plain_file):
        wire = tmp_path / "doc.wire"
        run_cli(["encrypt", "--password", "pw", "-o", str(wire),
                 str(plain_file)])
        assert run_cli(["decrypt", "--password", "nope",
                        "-o", str(tmp_path / "x"), str(wire)]) == 1

    def test_stego_round_trip(self, tmp_path, plain_file):
        wire = tmp_path / "doc.stego"
        out = tmp_path / "out.txt"
        run_cli(["encrypt", "--password", "pw", "--stego",
                 "-o", str(wire), str(plain_file)])
        stored = wire.read_text()
        assert not stored.startswith("PE1-")
        assert run_cli(["decrypt", "--password", "pw",
                        "-o", str(out), str(wire)]) == 0
        assert out.read_text() == PLAINTEXT

    def test_password_env_var(self, tmp_path, plain_file, monkeypatch):
        monkeypatch.setenv("REPRO_PASSWORD", "pw")
        wire = tmp_path / "doc.wire"
        assert run_cli(["encrypt", "-o", str(wire), str(plain_file)]) == 0

    def test_missing_password_exits(self, tmp_path, plain_file,
                                    monkeypatch):
        monkeypatch.delenv("REPRO_PASSWORD", raising=False)
        with pytest.raises(SystemExit):
            run_cli(["encrypt", "-o", str(tmp_path / "x"),
                     str(plain_file)])


class TestEdit:
    def test_in_place_edit(self, tmp_path, plain_file):
        wire = tmp_path / "doc.wire"
        out = tmp_path / "out.txt"
        run_cli(["encrypt", "--password", "pw", "-o", str(wire),
                 str(plain_file)])
        before = wire.read_text()
        assert run_cli(["edit", "--password", "pw", "--at", "3",
                        "--insert", "very ", "--in-place",
                        str(wire)]) == 0
        after = wire.read_text()
        assert after != before
        # Incremental: most of the old ciphertext records survive verbatim.
        from repro.encoding.wire import RECORD_CHARS, split_header
        _, area_before = split_header(before)
        _, area_after = split_header(after)
        chunks_before = {
            area_before[i:i + RECORD_CHARS]
            for i in range(0, len(area_before), RECORD_CHARS)
        }
        chunks_after = {
            area_after[i:i + RECORD_CHARS]
            for i in range(0, len(area_after), RECORD_CHARS)
        }
        assert len(chunks_before & chunks_after) >= len(chunks_before) // 2
        run_cli(["decrypt", "--password", "pw", "-o", str(out),
                 str(wire)])
        assert out.read_text().startswith("my very secret")

    def test_delete_edit(self, tmp_path, plain_file):
        wire = tmp_path / "doc.wire"
        out = tmp_path / "out.txt"
        run_cli(["encrypt", "--password", "pw", "-o", str(wire),
                 str(plain_file)])
        run_cli(["edit", "--password", "pw", "--at", "0",
                 "--delete", "3", "--in-place", str(wire)])
        run_cli(["decrypt", "--password", "pw", "-o", str(out),
                 str(wire)])
        assert out.read_text().startswith("secret diary")


class TestInspect:
    def test_inspect_without_password(self, tmp_path, plain_file, capsys):
        wire = tmp_path / "doc.wire"
        run_cli(["encrypt", "--password", "pw", "--scheme", "rpc",
                 "-o", str(wire), str(plain_file)])
        assert run_cli(["inspect", str(wire)]) == 0
        out = capsys.readouterr().out
        assert "scheme:        rpc" in out
        assert "bookkeeping" in out

    def test_inspect_with_password_verifies(self, tmp_path, plain_file,
                                            capsys):
        wire = tmp_path / "doc.wire"
        run_cli(["encrypt", "--password", "pw", "-o", str(wire),
                 str(plain_file)])
        assert run_cli(["inspect", "--password", "pw", str(wire)]) == 0
        assert "verified" in capsys.readouterr().out

    def test_inspect_garbage_fails(self, tmp_path):
        bad = tmp_path / "bad"
        bad.write_text("not a wire document at all")
        assert run_cli(["inspect", str(bad)]) == 1


class TestSubprocessEntry:
    def test_python_dash_m(self, tmp_path, plain_file):
        """The `python -m repro` entry point works as installed."""
        result = subprocess.run(
            [sys.executable, "-m", "repro", "encrypt",
             "--password", "pw", "-o", str(tmp_path / "w"),
             str(plain_file)],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0, result.stderr

    def test_demo_runs(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "demo"],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0
        assert "server has:" in result.stdout
