"""The three interception strategies of SIII, compared.

1. browser extension (channel mediator) — the paper's choice;
2. standalone proxy — most general, but TLS-blind;
3. User-JavaScript-style rewritten client — no traffic hook needed,
   but re-implements client internals.

All three must leave the provider with ciphertext only; the proxy's TLS
limitation and the paper's reason for choosing the extension are
demonstrated explicitly.
"""

import dataclasses

import pytest

from repro.client.gdocs_client import GDocsClient
from repro.client.userjs_client import SelfEncryptingGDocsClient
from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import looks_encrypted
from repro.errors import BlockedRequestError
from repro.extension import GDocsExtension, PasswordVault
from repro.extension.proxy import MediatingProxy
from repro.net.channel import Channel
from repro.services import BespinServer, bespin
from repro.services.gdocs import protocol
from repro.services.gdocs.server import GDocsServer

SECRET = "the secret ingredient is love (and 2.4 tons of butter)"


def extension_deployment(seed):
    server = GDocsServer()
    channel = Channel(server)
    channel.set_mediator(GDocsExtension(
        PasswordVault({"doc": "pw"}), scheme="rpc",
        rng=DeterministicRandomSource(seed),
    ))
    return server, GDocsClient(channel, "doc")


def proxy_deployment(seed, tls_policy="block"):
    gdocs = GDocsServer()
    code = BespinServer()
    proxy = MediatingProxy(
        upstreams={protocol.HOST: gdocs, bespin.HOST: code},
        mediators={
            protocol.HOST: GDocsExtension(
                PasswordVault({"doc": "pw"}), scheme="rpc",
                rng=DeterministicRandomSource(seed),
            ),
        },
        tls_policy=tls_policy,
    )
    channel = Channel(proxy)
    return gdocs, proxy, GDocsClient(channel, "doc")


def userjs_deployment(seed):
    server = GDocsServer()
    channel = Channel(server)  # NO mediator installed
    client = SelfEncryptingGDocsClient(
        channel, "doc", password="pw", scheme="rpc",
        rng=DeterministicRandomSource(seed),
    )
    return server, client


class TestAllDeploymentsHideContent:
    @pytest.mark.parametrize("make", [
        extension_deployment,
        lambda seed: proxy_deployment(seed)[::2],
        userjs_deployment,
    ], ids=["extension", "proxy", "userjs"])
    def test_provider_sees_ciphertext_only(self, make):
        server, client = make(seed=1)
        client.open()
        client.type_text(0, SECRET)
        client.save()
        client.type_text(0, "note: ")
        outcome = client.save()
        assert outcome.kind == "delta"
        stored = server.store.get("doc").content
        assert looks_encrypted(stored)
        assert "butter" not in stored
        assert client.editor.text == "note: " + SECRET

    @pytest.mark.parametrize("make", [
        extension_deployment,
        lambda seed: proxy_deployment(seed)[::2],
        userjs_deployment,
    ], ids=["extension", "proxy", "userjs"])
    def test_reopen_with_extension_deployment(self, make):
        """Documents written by ANY deployment open under the standard
        extension deployment — the wire format is the contract."""
        server, client = make(seed=2)
        client.open()
        client.type_text(0, SECRET)
        client.save()
        channel = Channel(server)
        channel.set_mediator(GDocsExtension(
            PasswordVault({"doc": "pw"}),
            rng=DeterministicRandomSource(9),
        ))
        reader = GDocsClient(channel, "doc")
        assert reader.open() == SECRET


class TestProxySpecifics:
    def test_proxy_serves_multiple_hosts(self):
        gdocs, proxy, client = proxy_deployment(seed=3)
        client.open()
        client.type_text(0, SECRET)
        client.save()
        assert looks_encrypted(gdocs.store.get("doc").content)
        # unmediated host with no mediator configured is refused
        channel = Channel(proxy)
        response = channel.send(bespin.put_request("p/a.py", "code"))
        assert response.status == 403

    def test_proxy_blocks_feature_requests(self):
        _, proxy, client = proxy_deployment(seed=4)
        client.open()
        client.type_text(0, "text")
        client.save()
        with pytest.raises(BlockedRequestError):
            client.spellcheck()

    def test_tls_block_policy_fails_closed(self):
        gdocs, proxy, _ = proxy_deployment(seed=5, tls_policy="block")
        channel = Channel(proxy)
        request = protocol.open_request("doc")
        https = dataclasses.replace(
            request, url=request.url.replace("http://", "https://")
        )
        response = channel.send(https)
        assert response.status == 403
        assert proxy.blocked

    def test_tls_tunnel_policy_leaks_plaintext(self):
        """The paper's stated proxy weakness, demonstrated: tunnelled
        TLS traffic reaches the provider unencrypted-by-us."""
        gdocs, proxy, _ = proxy_deployment(seed=6, tls_policy="tunnel")
        channel = Channel(proxy)

        def https(req):
            return dataclasses.replace(
                req, url=req.url.replace("http://", "https://")
            )

        response = channel.send(https(protocol.open_request("doc")))
        sid = response.form[protocol.F_SID]
        channel.send(https(protocol.full_save_request(
            "doc", sid, 0, SECRET
        )))
        assert gdocs.store.get("doc").content == SECRET  # leaked!
        assert proxy.tunnelled


class TestUserjsSpecifics:
    def test_conflict_resync_works(self):
        """The rewritten client decrypts Ack content itself, so its
        conflict handling is *better* than the extension's blanking —
        the upside of rewriting components."""
        server, alice = userjs_deployment(seed=7)
        alice.open()
        alice.type_text(0, "base. ")
        alice.save()
        _, bob = userjs_deployment(seed=8)
        bob._channel = alice._channel  # same provider
        bob.open()
        bob.type_text(0, "bob. ")
        bob.save()
        alice.type_text(0, "alice. ")
        outcome = alice.save()
        assert outcome.conflict
        assert alice.editor.text == "bob. base. "  # silent resync

    def test_mirror_hash_check(self):
        server, client = userjs_deployment(seed=9)
        client.open()
        client.type_text(0, "check me")
        outcome = client.save()
        assert outcome.complaints == []  # ciphertext hash matches mirror
