"""Covert channels through the full stack, with and without
countermeasures (SVI-B / ablation C)."""

import pytest

from repro.client.malicious import LengthLeakClient, ShapeLeakClient
from repro.crypto.random import DeterministicRandomSource
from repro.extension import Countermeasures, GDocsExtension, PasswordVault
from repro.net.channel import Channel
from repro.security.covert import DeltaShapeChannel
from repro.services.gdocs import protocol
from repro.services.gdocs.server import GDocsServer


def build_stack(client_cls, countermeasures=None, seed=1):
    server = GDocsServer()
    channel = Channel(server)
    extension = GDocsExtension(
        PasswordVault({"doc": "pw"}),
        rng=DeterministicRandomSource(seed),
        countermeasures=countermeasures,
        clock=channel.clock,
    )
    channel.set_mediator(extension)
    client = client_cls(channel, "doc")
    return server, channel, client


def observed_delta_deletions(channel):
    """What the adversary reads off the last delta save's cdelta."""
    from repro.core.delta import Delete, Delta
    for exchange in reversed(channel.exchange_log):
        form = exchange.request.form if exchange.request.body else {}
        if protocol.F_DELTA in form:
            cdelta = Delta.parse(form[protocol.F_DELTA])
            return sum(
                op.count for op in cdelta.ops if isinstance(op, Delete)
            )
    return 0


class TestDeltaShapeChannel:
    def _run(self, symbol, countermeasures, seed):
        _, channel, client = build_stack(
            ShapeLeakClient, countermeasures, seed
        )
        client.open()
        client.type_text(0, "x" * 300)
        client.save()
        # calibrate the honest noise floor with symbol 0
        client.queue_symbol(0)
        client.type_text(300, "a")
        client.save()
        floor = observed_delta_deletions(channel)
        # now send the real symbol
        client.queue_symbol(symbol)
        client.type_text(301, "b")
        client.save()
        from repro.encoding.wire import RECORD_CHARS
        observed = observed_delta_deletions(channel)
        decoded = max(0, (observed - floor) // RECORD_CHARS)
        return decoded

    @pytest.mark.parametrize("symbol", [1, 4, 9])
    def test_leaks_without_countermeasures(self, symbol):
        assert self._run(symbol, None, seed=symbol) == symbol

    @pytest.mark.parametrize("symbol", [1, 4, 9])
    def test_canonicalization_alone_does_not_stop_it(self, symbol):
        """Structural canonicalization can't remove a delete-reinsert of
        identical text (it doesn't know the document) — the channel
        survives, motivating the recompute-from-versions countermeasure."""
        cm = Countermeasures(canonicalize_deltas=True)
        assert self._run(symbol, cm, seed=10 + symbol) == symbol


class TestLengthChannel:
    def test_bits_ride_record_count(self):
        server, channel, client = build_stack(LengthLeakClient, seed=20)
        client.open()
        client.type_text(0, "base document text")
        client.save()
        lengths = {}
        for bit in (1, 0, 1, 1, 0):
            client.queue_bit(bit)
            client.save()
            lengths.setdefault(bit, set()).add(
                len(server.store.get("doc").content)
            )
        # Each bit value maps to a distinct, consistent stored length —
        # a clean 1-bit-per-save channel (the paper concedes this one
        # and only sketches mitigations).
        assert lengths[0] != lengths[1]
        assert len(lengths[0]) == 1 and len(lengths[1]) == 1


class TestTimingChannel:
    def test_random_delay_jitters_timing(self):
        """With random delays on, save timing no longer cleanly encodes
        the bit (the jitter is the same order as the signal)."""
        def run(countermeasures, seed):
            _, channel, client = build_stack(
                ShapeLeakClient, countermeasures, seed
            )
            client.open()
            client.type_text(0, "doc")
            client.save()
            t0 = channel.clock.now()
            client.type_text(3, "x")
            client.save()
            return channel.clock.now() - t0

        import random as _random
        quiet = {run(None, s) for s in range(3)}
        noisy = {
            run(Countermeasures(random_delay=True, delay_max_seconds=0.5,
                                rng=_random.Random(s)), s)
            for s in range(3)
        }
        assert max(quiet) - min(quiet) < 1e-9  # deterministic w/o delays
        assert max(noisy) - min(noisy) > 0.01  # jittered with them


class TestPaddingCountermeasure:
    def test_pad_field_hides_body_size(self):
        cm = Countermeasures(pad_requests=True)
        sizes = set()
        for seed in range(4):
            cm_seeded = Countermeasures(pad_requests=True)
            cm_seeded.rng.seed(seed)
            _, channel, client = build_stack(
                ShapeLeakClient, cm_seeded, 30 + seed
            )
            client.open()
            client.type_text(0, "same text every time")
            client.save()
            sizes.add(channel.exchange_log[-1].request.wire_bytes)
        assert len(sizes) > 1  # same plaintext, different wire sizes
