"""Property tests over the text codecs and wire format."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import base32, formenc
from repro.encoding.wire import (
    RECORD_CHARS,
    Record,
    decode_records,
    encode_records,
)


class TestBase32:
    @settings(max_examples=300)
    @given(st.binary(max_size=100))
    def test_round_trip(self, data):
        assert base32.decode(base32.encode(data)) == data

    @settings(max_examples=300)
    @given(st.binary(max_size=100))
    def test_padded_round_trip(self, data):
        assert base32.decode(base32.encode(data, pad=True)) == data

    @settings(max_examples=200)
    @given(st.binary(max_size=100))
    def test_length_formula(self, data):
        assert len(base32.encode(data)) == base32.encoded_length(len(data))

    @settings(max_examples=200)
    @given(st.binary(max_size=60))
    def test_alphabet_only(self, data):
        assert set(base32.encode(data)) <= set(base32.ALPHABET)


class TestFormEncoding:
    @settings(max_examples=300)
    @given(st.text(max_size=80).filter(lambda s: "\x00" not in s or True))
    def test_quote_round_trip(self, text):
        assert formenc.unquote(formenc.quote(text)) == text

    @settings(max_examples=200)
    @given(st.dictionaries(st.text(min_size=1, max_size=10),
                           st.text(max_size=30), max_size=5))
    def test_form_round_trip(self, fields):
        assert formenc.parse_form(formenc.encode_form(fields)) == fields


records_strategy = st.lists(
    st.builds(
        Record,
        char_count=st.integers(0, 255),
        block=st.binary(min_size=16, max_size=16),
    ),
    max_size=30,
)


class TestWire:
    @settings(max_examples=200)
    @given(records_strategy)
    def test_record_area_round_trip(self, records):
        area = encode_records(records)
        assert len(area) == len(records) * RECORD_CHARS
        assert decode_records(area) == records

    @settings(max_examples=100)
    @given(records_strategy, st.data())
    def test_splice_equals_list_splice(self, records, data):
        """Cutting records out of the text area equals cutting them out
        of the list — the exactness cdeltas depend on."""
        area = encode_records(records)
        i = data.draw(st.integers(0, len(records)))
        j = data.draw(st.integers(i, len(records)))
        spliced = area[: i * RECORD_CHARS] + area[j * RECORD_CHARS :]
        assert decode_records(spliced) == records[:i] + records[j:]

    @settings(max_examples=100)
    @given(records_strategy, records_strategy)
    def test_concatenation(self, a, b):
        assert decode_records(encode_records(a) + encode_records(b)) == a + b
