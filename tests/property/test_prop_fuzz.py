"""Parser fuzzing: hostile input must raise *library* errors, never
arbitrary exceptions.

Everything these parsers see can come from an adversary (the server
controls stored content and responses), so a crash is a bug: the
acceptable outcomes are success or a ``ReproError`` subclass.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delta import Delta
from repro.encoding import base32
from repro.encoding.formenc import parse_form, unquote
from repro.encoding.stego import stego_unwrap
from repro.encoding.wire import decode_records, parse_document
from repro.errors import ReproError

hostile_text = st.text(max_size=200)
hostile_ascii = st.text(
    alphabet=string.printable, max_size=300
)
#: strings biased toward *almost* valid inputs
almost_wire = st.one_of(
    hostile_text,
    st.just("PE1-RECB-8-64-").map(lambda p: p + "AAAA."),
    st.text(alphabet=base32.ALPHABET + ".-", max_size=150).map(
        lambda s: "PE1-" + s
    ),
    st.text(alphabet=base32.ALPHABET, max_size=140),
)


def must_not_crash(fn, value):
    try:
        fn(value)
    except ReproError:
        pass
    except (SystemExit, KeyboardInterrupt):
        raise
    # any other exception type is a fuzzing failure
    # (pytest surfaces it as an error automatically)


class TestParserRobustness:
    @settings(max_examples=300)
    @given(hostile_text)
    def test_delta_parse(self, text):
        must_not_crash(Delta.parse, text)

    @settings(max_examples=300)
    @given(almost_wire)
    def test_parse_document(self, text):
        must_not_crash(parse_document, text)

    @settings(max_examples=300)
    @given(hostile_ascii)
    def test_decode_records(self, text):
        must_not_crash(decode_records, text)

    @settings(max_examples=300)
    @given(hostile_text)
    def test_base32_decode(self, text):
        must_not_crash(base32.decode, text)

    @settings(max_examples=300)
    @given(hostile_text)
    def test_form_parse(self, text):
        must_not_crash(parse_form, text)

    @settings(max_examples=300)
    @given(hostile_text)
    def test_unquote(self, text):
        must_not_crash(unquote, text)

    @settings(max_examples=300)
    @given(st.one_of(
        hostile_text,
        st.lists(
            st.sampled_from(["babab", "bamuk", "zuzuz", "hello"]),
            max_size=30,
        ).map(lambda ws: "".join(w + " " for w in ws)),
    ))
    def test_stego_unwrap(self, text):
        must_not_crash(stego_unwrap, text)

    @settings(max_examples=200)
    @given(hostile_text)
    def test_delta_apply_against_random_doc(self, text):
        """A parsed hostile delta applied to a random document may fail
        only with a ReproError."""
        try:
            delta = Delta.parse(text)
        except ReproError:
            return
        must_not_crash(lambda d: d.apply("some document text"), delta)


class TestLoadDocumentRobustness:
    @settings(max_examples=150, deadline=None)
    @given(almost_wire)
    def test_load_document_never_crashes(self, text):
        from repro.core import load_document

        def load(value):
            load_document(value, password="pw")

        must_not_crash(load, text)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_record_level_garbage(self, data):
        """Structurally valid wire framing around random record bytes."""
        from repro.core import load_document
        from repro.encoding.wire import Record, encode_records, DocumentHeader

        n = data.draw(st.integers(0, 6))
        records = [
            Record(
                char_count=data.draw(st.integers(0, 255)),
                block=data.draw(st.binary(min_size=16, max_size=16)),
            )
            for _ in range(n)
        ]
        header = DocumentHeader(
            scheme=data.draw(st.sampled_from(["recb", "rpc"])),
            block_chars=8, nonce_bits=32, salt=b"\x00" * 10,
        )
        wire = header.encode() + encode_records(records)
        must_not_crash(lambda w: load_document(w, password="pw"), wire)
