"""Property tests for operational transformation: TP1 convergence and
compose correctness over arbitrary concurrent deltas."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delta import Delete, Delta, Insert, Retain
from repro.core.ot import compose, transform

documents = st.text(alphabet="abcde ", max_size=40)


@st.composite
def delta_for_length(draw, length):
    ops = []
    cursor = 0
    current = length
    for _ in range(draw(st.integers(0, 5))):
        kind = draw(st.sampled_from(["retain", "insert", "delete"]))
        if kind == "retain" and cursor < current:
            n = draw(st.integers(1, current - cursor))
            ops.append(Retain(n))
            cursor += n
        elif kind == "insert":
            text = draw(st.text(alphabet="XYZ", min_size=1, max_size=6))
            ops.append(Insert(text))
            cursor += len(text)
            current += len(text)
        elif kind == "delete" and cursor < current:
            n = draw(st.integers(1, current - cursor))
            ops.append(Delete(n))
            current -= n
    return Delta(ops)


@st.composite
def concurrent_pair(draw):
    doc = draw(documents)
    a = draw(delta_for_length(len(doc)))
    b = draw(delta_for_length(len(doc)))
    return doc, a, b


class TestTP1:
    @settings(max_examples=400)
    @given(concurrent_pair())
    def test_convergence(self, case):
        doc, a, b = case
        a_prime = transform(a, b, "left")
        b_prime = transform(b, a, "right")
        assert a_prime.apply(b.apply(doc)) == b_prime.apply(a.apply(doc))

    @settings(max_examples=200)
    @given(concurrent_pair())
    def test_transform_preserves_net_insertions(self, case):
        """Every character a inserts survives into the merged document."""
        doc, a, b = case
        merged = transform(a, b, "left").apply(b.apply(doc))
        for op in a.ops:
            if isinstance(op, Insert):
                assert op.text in merged or all(
                    ch in merged for ch in op.text
                )

    @settings(max_examples=200)
    @given(documents, st.data())
    def test_transform_against_identity(self, doc, data):
        a = data.draw(delta_for_length(len(doc)))
        out = transform(a, Delta(()), "left")
        assert out.apply(doc) == a.apply(doc)


class TestCompose:
    @settings(max_examples=400)
    @given(documents, st.data())
    def test_compose_equals_sequential_apply(self, doc, data):
        first = data.draw(delta_for_length(len(doc)))
        middle = first.apply(doc)
        second = data.draw(delta_for_length(len(middle)))
        assert compose(first, second).apply(doc) == second.apply(middle)

    @settings(max_examples=150)
    @given(documents, st.data())
    def test_compose_associative_in_effect(self, doc, data):
        d1 = data.draw(delta_for_length(len(doc)))
        s1 = d1.apply(doc)
        d2 = data.draw(delta_for_length(len(s1)))
        s2 = d2.apply(s1)
        d3 = data.draw(delta_for_length(len(s2)))
        left = compose(compose(d1, d2), d3)
        right = compose(d1, compose(d2, d3))
        assert left.apply(doc) == right.apply(doc)
