"""Property tests for operational transformation: TP1 convergence,
compose correctness, the server-side rebase/patch duality the merging
server relies on (PR 8), and grid-alignment preservation over cdelta
quanta."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delta import Delete, Delta, Insert, Retain
from repro.core.ot import compose, transform
from repro.services import ot

documents = st.text(alphabet="abcde ", max_size=40)


@st.composite
def delta_for_length(draw, length):
    ops = []
    cursor = 0
    current = length
    for _ in range(draw(st.integers(0, 5))):
        kind = draw(st.sampled_from(["retain", "insert", "delete"]))
        if kind == "retain" and cursor < current:
            n = draw(st.integers(1, current - cursor))
            ops.append(Retain(n))
            cursor += n
        elif kind == "insert":
            text = draw(st.text(alphabet="XYZ", min_size=1, max_size=6))
            ops.append(Insert(text))
            cursor += len(text)
            current += len(text)
        elif kind == "delete" and cursor < current:
            n = draw(st.integers(1, current - cursor))
            ops.append(Delete(n))
            current -= n
    return Delta(ops)


@st.composite
def concurrent_pair(draw):
    doc = draw(documents)
    a = draw(delta_for_length(len(doc)))
    b = draw(delta_for_length(len(doc)))
    return doc, a, b


class TestTP1:
    @settings(max_examples=400)
    @given(concurrent_pair())
    def test_convergence(self, case):
        doc, a, b = case
        a_prime = transform(a, b, "left")
        b_prime = transform(b, a, "right")
        assert a_prime.apply(b.apply(doc)) == b_prime.apply(a.apply(doc))

    @settings(max_examples=200)
    @given(concurrent_pair())
    def test_transform_preserves_net_insertions(self, case):
        """Every character a inserts survives into the merged document."""
        doc, a, b = case
        merged = transform(a, b, "left").apply(b.apply(doc))
        for op in a.ops:
            if isinstance(op, Insert):
                assert op.text in merged or all(
                    ch in merged for ch in op.text
                )

    @settings(max_examples=200)
    @given(documents, st.data())
    def test_transform_against_identity(self, doc, data):
        a = data.draw(delta_for_length(len(doc)))
        out = transform(a, Delta(()), "left")
        assert out.apply(doc) == a.apply(doc)


class TestCompose:
    @settings(max_examples=400)
    @given(documents, st.data())
    def test_compose_equals_sequential_apply(self, doc, data):
        first = data.draw(delta_for_length(len(doc)))
        middle = first.apply(doc)
        second = data.draw(delta_for_length(len(middle)))
        assert compose(first, second).apply(doc) == second.apply(middle)

    @settings(max_examples=150)
    @given(documents, st.data())
    def test_compose_associative_in_effect(self, doc, data):
        d1 = data.draw(delta_for_length(len(doc)))
        s1 = d1.apply(doc)
        d2 = data.draw(delta_for_length(len(s1)))
        s2 = d2.apply(s1)
        d3 = data.draw(delta_for_length(len(s2)))
        left = compose(compose(d1, d2), d3)
        right = compose(d1, compose(d2, d3))
        assert left.apply(doc) == right.apply(doc)


# -- the PR-8 server-side merge path -------------------------------------


@st.composite
def rebase_case(draw):
    """A stale save plus the history that landed after its base rev."""
    doc = draw(documents)
    incoming = draw(delta_for_length(len(doc)))
    history, head = [], doc
    for _ in range(draw(st.integers(0, 4))):
        committed = draw(delta_for_length(len(head)))
        history.append(committed)
        head = committed.apply(head)
    return doc, incoming, history, head


class TestRebaseDuality:
    """``rebase`` hands the server a delta for *its* head and the saver
    a patch for *their* text; both must land on the same document."""

    @settings(max_examples=400)
    @given(rebase_case())
    def test_patch_and_rebased_agree(self, case):
        doc, incoming, history, head = case
        merge = ot.rebase(incoming, history)
        assert merge.depth == len(history)
        assert (merge.patch.apply(incoming.apply(doc))
                == merge.rebased.apply(head))

    @settings(max_examples=200)
    @given(rebase_case())
    def test_wire_string_history_matches_objects(self, case):
        doc, incoming, history, head = case
        by_wire = ot.rebase(incoming, [d.serialize() for d in history])
        by_obj = ot.rebase(incoming, history)
        assert by_wire.rebased.serialize() == by_obj.rebased.serialize()
        assert by_wire.patch.serialize() == by_obj.patch.serialize()


# -- grid alignment over cdelta quanta -----------------------------------

OFFSET, STEP = 6, 4


@st.composite
def grid_delta(draw, records):
    """A delta that only splices whole ``STEP``-wide records after a
    ``OFFSET``-char header — the shape of every genuine rECB cdelta."""
    ops = [Retain(OFFSET)]
    remaining = records
    while remaining > 0:
        kind = draw(st.sampled_from(["retain", "insert", "delete"]))
        span = draw(st.integers(1, remaining))
        if kind == "insert":
            ops.append(Insert("R" * (span * STEP)))
        elif kind == "delete":
            ops.append(Delete(span * STEP))
            remaining -= span
        else:
            ops.append(Retain(span * STEP))
            remaining -= span
    if draw(st.booleans()):
        ops.append(Insert("T" * (draw(st.integers(1, 3)) * STEP)))
    return Delta(ops)


@st.composite
def concurrent_grid_pair(draw):
    records = draw(st.integers(0, 6))
    doc = "H" * OFFSET + "r" * (records * STEP)
    return doc, draw(grid_delta(records)), draw(grid_delta(records))


class TestGridPreservation:
    """Transform and compose keep cdeltas on the record grid, which is
    what licenses the extension's cheap pre-filter on merge patches."""

    @settings(max_examples=300)
    @given(concurrent_grid_pair())
    def test_inputs_are_aligned_by_construction(self, case):
        _, a, b = case
        assert ot.grid_aligned(a, OFFSET, STEP)
        assert ot.grid_aligned(b, OFFSET, STEP)

    @settings(max_examples=300)
    @given(concurrent_grid_pair())
    def test_transform_preserves_alignment(self, case):
        doc, a, b = case
        for one, other, side in ((a, b, "left"), (b, a, "right")):
            out = transform(one, other, side)
            assert ot.grid_aligned(out, OFFSET, STEP)
            assert out.apply(other.apply(doc))  # still applies cleanly

    @settings(max_examples=200)
    @given(st.data())
    def test_compose_preserves_alignment(self, data):
        records = data.draw(st.integers(0, 6))
        doc = "H" * OFFSET + "r" * (records * STEP)
        first = data.draw(grid_delta(records))
        middle = first.apply(doc)
        second = data.draw(grid_delta((len(middle) - OFFSET) // STEP))
        assert ot.grid_aligned(compose(first, second), OFFSET, STEP)

    @settings(max_examples=200)
    @given(rebase_case())
    def test_rebased_patch_alignment_over_grid_history(self, case):
        """Full-path version: a grid-aligned save rebased over
        grid-aligned history yields grid-aligned rebased + patch."""
        # reuse the generic case only for history depth; rebuild on grid
        _, _, history, _ = case
        depth = len(history)
        doc = "H" * OFFSET + "r" * (4 * STEP)
        incoming = Delta((Retain(OFFSET), Insert("I" * STEP)))
        grid_history, head = [], doc
        for i in range(depth):
            committed = Delta((Retain(len(head)), Insert("C" * STEP)))
            grid_history.append(committed)
            head = committed.apply(head)
        merge = ot.rebase(incoming, grid_history)
        assert ot.grid_aligned(merge.rebased, OFFSET, STEP)
        assert ot.grid_aligned(merge.patch, OFFSET, STEP)
