"""Encoder round-trips fed from the fuzzer's string corpus.

``tests/property/test_prop_encoding.py`` covers these codecs with
hypothesis-generated inputs; this module feeds them the *same* seeded
corpus the differential fuzzer edits with (`repro.fuzz.generators` —
reused, not duplicated), so the degenerate shapes the fuzzer is known
to produce (empty strings, astral-plane unicode, form metacharacters,
percent-escape look-alikes, block-boundary lengths) are each pinned
through every codec the pipeline crosses:

* ``formenc`` — the quoting layer every save request and Ack rides on;
* ``base32`` — ciphertext alphabet, fast path cross-checked against
  the scalar reference;
* ``wire`` — record framing, batched NumPy path against the per-record
  path;
* ``stego`` — the pseudo-prose disguise over whole wire documents.
"""

from __future__ import annotations

import pytest

from repro.core import KeyMaterial, create_document, load_document
from repro.crypto.random import DeterministicRandomSource
from repro.encoding import base32, formenc
from repro.encoding.stego import looks_stego, stego_unwrap, stego_wrap
from repro.encoding.wire import (
    RECORD_CHARS,
    Record,
    decode_record,
    decode_records,
    encode_record,
    encode_records,
)
from repro.fuzz.generators import corpus_strings

#: one seeded draw shared by every test in the module — the corpus the
#: fuzzer types with, so any divergence found here has a fuzz trace too
CORPUS = corpus_strings(1729, 64)
CORPUS_IDS = [f"s{i}" for i in range(len(CORPUS))]

#: the same strings as byte payloads for the binary codecs
BLOBS = [s.encode("utf-8") for s in CORPUS]

KEYS = KeyMaterial.from_password("prop-encoders",
                                 salt=b"prop-encoders-salt")


@pytest.mark.parametrize("text", CORPUS, ids=CORPUS_IDS)
class TestFormEncoding:
    def test_quote_round_trip(self, text):
        assert formenc.unquote(formenc.quote(text)) == text

    def test_quote_no_plus_round_trip(self, text):
        quoted = formenc.quote(text, plus_spaces=False)
        assert formenc.unquote(quoted, plus_spaces=False) == text

    def test_quoted_text_is_wire_safe(self, text):
        """Quoted values may not contain the form metacharacters that
        would merge or split pairs on the wire."""
        quoted = formenc.quote(text)
        assert "&" not in quoted and "=" not in quoted

    def test_form_round_trip(self, text):
        fields = {"docContents": text, "sid": "s", "rev": "0"}
        assert formenc.parse_form(formenc.encode_form(fields)) == fields


@pytest.mark.parametrize("blob", BLOBS, ids=CORPUS_IDS)
class TestBase32:
    def test_fast_encode_matches_scalar(self, blob):
        assert base32.encode(blob) == base32._encode_scalar(blob)
        assert base32.encode(blob, pad=True) == \
            base32._encode_scalar(blob, pad=True)

    def test_fast_decode_matches_scalar(self, blob):
        text = base32.encode(blob)
        assert base32.decode(text) == base32._decode_scalar(text) == blob


class TestWireRecords:
    @staticmethod
    def _records(blob: bytes) -> list[Record]:
        padded = blob + bytes(16)
        return [
            Record(char_count=min(len(blob), 255),
                   block=padded[i : i + 16])
            for i in range(0, max(len(blob), 1), 16)
        ]

    @pytest.mark.parametrize("blob", BLOBS, ids=CORPUS_IDS)
    def test_single_record_round_trip(self, blob):
        record = self._records(blob)[0]
        text = encode_record(record)
        assert len(text) == RECORD_CHARS
        assert decode_record(text) == record

    def test_batched_path_matches_per_record_path(self):
        """`encode_records` switches to the NumPy bit-unpack at 8+
        records; both paths must produce identical wire text."""
        records = [r for blob in BLOBS for r in self._records(blob)]
        assert len(records) >= 8
        batched = encode_records(records)
        assert batched == "".join(encode_record(r) for r in records)
        assert decode_records(batched) == records


@pytest.mark.parametrize("scheme", ["recb", "rpc"])
class TestStego:
    @staticmethod
    def _wire(text: str, scheme: str) -> str:
        return create_document(
            text, key_material=KEYS, scheme=scheme, block_chars=8,
            rng=DeterministicRandomSource(11),
        ).wire()

    @pytest.mark.parametrize(
        "text", CORPUS[:24], ids=CORPUS_IDS[:24])
    def test_wrap_unwrap_round_trip(self, scheme, text):
        wire = self._wire(text, scheme)
        wrapped = stego_wrap(wire)
        assert looks_stego(wrapped)
        assert stego_unwrap(wrapped) == wire

    def test_unwrapped_corpus_document_decrypts(self, scheme):
        text = "".join(CORPUS[:12])
        wire = self._wire(text, scheme)
        reloaded = load_document(stego_unwrap(stego_wrap(wire)),
                                 key_material=KEYS)
        assert reloaded.text == text
