"""Property tests over the delta language and diff derivation."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delta import Delete, Delta, Insert, Retain
from repro.workloads.diff import myers_delta, simple_delta

TEXT_ALPHABET = string.ascii_lowercase + " .é中"

documents = st.text(alphabet=TEXT_ALPHABET, max_size=60)


@st.composite
def delta_for(draw, document):
    """A random delta valid against ``document``."""
    ops = []
    cursor = 0          # cursor over the evolving document
    length = len(document)
    for _ in range(draw(st.integers(0, 6))):
        kind = draw(st.sampled_from(["retain", "insert", "delete"]))
        if kind == "retain" and cursor < length:
            n = draw(st.integers(1, length - cursor))
            ops.append(Retain(n))
            cursor += n
        elif kind == "insert":
            text = draw(st.text(alphabet=TEXT_ALPHABET, min_size=1,
                                max_size=10))
            ops.append(Insert(text))
            cursor += len(text)
            length += len(text)
        elif kind == "delete" and cursor < length:
            n = draw(st.integers(1, length - cursor))
            ops.append(Delete(n))
            length -= n
    return Delta(ops)


@st.composite
def doc_and_delta(draw):
    document = draw(documents)
    return document, draw(delta_for(document))


class TestDeltaProperties:
    @settings(max_examples=200)
    @given(doc_and_delta())
    def test_parse_serialize_round_trip(self, pair):
        _, delta = pair
        assert Delta.parse(delta.serialize()) == delta

    @settings(max_examples=200)
    @given(doc_and_delta())
    def test_canonical_preserves_effect(self, pair):
        document, delta = pair
        assert delta.canonical().apply(document) == delta.apply(document)

    @settings(max_examples=200)
    @given(doc_and_delta())
    def test_canonical_idempotent(self, pair):
        _, delta = pair
        once = delta.canonical()
        assert once.canonical() == once

    @settings(max_examples=200)
    @given(doc_and_delta())
    def test_length_change_consistent(self, pair):
        document, delta = pair
        assert len(delta.apply(document)) == (
            len(document) + delta.length_change
        )

    @settings(max_examples=200)
    @given(doc_and_delta())
    def test_source_edits_replay(self, pair):
        """Replaying the source-coordinate edits reproduces apply()."""
        document, delta = pair
        out = document
        shift = 0
        from repro.core.delta import SourceInsert
        for edit in delta.source_edits():
            pos = edit.pos + shift
            if isinstance(edit, SourceInsert):
                out = out[:pos] + edit.text + out[pos:]
                shift += len(edit.text)
            else:
                out = out[:pos] + out[pos + edit.count:]
                shift -= edit.count
        assert out == delta.apply(document)

    @settings(max_examples=200)
    @given(doc_and_delta())
    def test_span_bounds_edits(self, pair):
        document, delta = pair
        span = delta.source_span()
        if span is None:
            assert delta.is_identity or not delta.ops
            return
        lo, hi = span
        assert 0 <= lo <= hi <= len(document) + delta.chars_inserted
        for edit in delta.source_edits():
            assert lo <= edit.pos <= hi


class TestDiffProperties:
    @settings(max_examples=200)
    @given(documents, documents)
    def test_simple_delta_transforms(self, old, new):
        assert simple_delta(old, new).apply(old) == new

    @settings(max_examples=200)
    @given(documents, documents)
    def test_myers_delta_transforms(self, old, new):
        assert myers_delta(old, new).apply(old) == new

    @settings(max_examples=100)
    @given(documents, documents)
    def test_myers_never_worse_than_simple(self, old, new):
        m = myers_delta(old, new)
        s = simple_delta(old, new)
        assert (m.chars_inserted + m.chars_deleted
                <= s.chars_inserted + s.chars_deleted)

    @settings(max_examples=100)
    @given(documents)
    def test_diff_of_identical_is_identity(self, text):
        assert myers_delta(text, text).is_identity
        assert simple_delta(text, text).is_identity
