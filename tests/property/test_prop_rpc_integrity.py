"""Property test: RPC integrity catches *arbitrary* record-level
tampering, not just the curated attacks.

The adversary model: any combination of record duplications, deletions,
swaps, and character corruptions applied to a valid wire document.  The
verifier must either reject (IntegrityError / DecryptionError /
CiphertextFormatError) or — only when the tampering is the identity —
return the original text.  (Rollback to a *different valid version* is
out of scope here: the adversary below only has one version.)
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KeyMaterial, create_document, load_document
from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import RECORD_CHARS, split_header
from repro.errors import (
    CiphertextFormatError,
    DecryptionError,
    IntegrityError,
)

KEYS = KeyMaterial.from_password("prop", salt=b"saltsaltsa")
REJECTED = (IntegrityError, DecryptionError, CiphertextFormatError)


@st.composite
def tampering(draw):
    """A list of record-level mutations."""
    ops = []
    for _ in range(draw(st.integers(1, 4))):
        kind = draw(st.sampled_from(["dup", "drop", "swap", "corrupt"]))
        ops.append((kind, draw(st.integers(0, 10_000)),
                    draw(st.integers(0, 10_000))))
    return ops


def apply_tampering(wire, ops):
    header_end = wire.index(".") + 1
    header, area = wire[:header_end], wire[header_end:]
    recs = [area[i:i + RECORD_CHARS] for i in range(0, len(area), RECORD_CHARS)]
    changed = False
    for kind, a, b in ops:
        if not recs:
            break
        i = a % len(recs)
        j = b % len(recs)
        if kind == "dup":
            recs.insert(i, recs[i])
            changed = True
        elif kind == "drop":
            recs.pop(i)
            changed = True
        elif kind == "swap":
            if i != j and recs[i] != recs[j]:
                recs[i], recs[j] = recs[j], recs[i]
                changed = True
        else:  # corrupt one char within record i
            off = b % RECORD_CHARS
            old = recs[i][off]
            new = "A" if old != "A" else "B"
            recs[i] = recs[i][:off] + new + recs[i][off + 1:]
            changed = True
    return header + "".join(recs), changed


class TestRpcTamperResistance:
    @settings(max_examples=150, deadline=None)
    @given(
        st.text(alphabet=string.ascii_lowercase + " ", min_size=1,
                max_size=80),
        tampering(),
    )
    def test_any_tampering_detected_or_harmless(self, text, ops):
        doc = create_document(text, key_material=KEYS, scheme="rpc",
                              rng=DeterministicRandomSource(5))
        wire = doc.wire()
        tampered, changed = apply_tampering(wire, ops)
        if not changed or tampered == wire:
            assert load_document(tampered, key_material=KEYS).text == text
            return
        try:
            result = load_document(tampered, key_material=KEYS)
        except REJECTED:
            return  # detected: the required outcome
        # If the verifier accepted, the recovered text MUST be unchanged
        # (e.g. a swap of bookkeeping records that happens to be
        # structure-preserving).  Silent corruption = failure.
        assert result.text == text
