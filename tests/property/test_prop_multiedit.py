"""Property tests targeting multi-cluster deltas.

One delta carrying several far-apart edits exercises the IncE
clustering machinery hardest: span location under accumulated
rank/char shifts, neighbour absorption for emptied spans, and patch
emission in old-wire coordinates.  These strategies deliberately
generate block-aligned deletions and small inter-cluster gaps — the
geometry where any off-by-one in the cluster bookkeeping would break
the commuting square.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Delta, KeyMaterial, create_document, load_document
from repro.core.delta import Delete, Insert, Retain
from repro.crypto.random import DeterministicRandomSource

KEYS = KeyMaterial.from_password("prop", salt=b"multi-salt")


@st.composite
def multi_cluster_case(draw):
    length = draw(st.integers(40, 120))
    block_chars = draw(st.sampled_from([1, 2, 4, 8]))
    scheme = draw(st.sampled_from(["recb", "rpc"]))
    text = "".join(
        draw(st.sampled_from("abcdef")) for _ in range(length)
    )
    # two to three edit groups separated by gaps straddling the
    # clustering threshold
    ops = []
    cursor = 0
    for _ in range(draw(st.integers(2, 3))):
        gap = draw(st.integers(9, 40))
        if cursor + gap >= length:
            break
        ops.append(Retain(gap if cursor else max(1, gap)))
        cursor += gap if cursor else max(1, gap)
        kind = draw(st.sampled_from(["delete", "insert", "both"]))
        if kind in ("delete", "both") and cursor < length:
            count = min(draw(st.integers(1, 16)), length - cursor)
            # bias toward block-aligned deletions (the absorb path)
            if draw(st.booleans()):
                count = max(block_chars,
                            count - count % block_chars or block_chars)
                count = min(count, length - cursor)
            ops.append(Delete(count))
            cursor += count
        if kind in ("insert", "both"):
            ops.append(Insert("X" * draw(st.integers(1, 10))))
    if not ops:
        ops = [Insert("Y")]
    return text, Delta(ops), scheme, block_chars


class TestMultiClusterDeltas:
    @settings(max_examples=250, deadline=None)
    @given(multi_cluster_case(), st.integers(0, 10_000))
    def test_commuting_square(self, case, seed):
        text, delta, scheme, block_chars = case
        doc = create_document(
            text, key_material=KEYS, scheme=scheme,
            block_chars=block_chars,
            rng=DeterministicRandomSource(seed),
        )
        expected = delta.apply(text)
        server = doc.wire()
        server = doc.apply_delta(delta).apply(server)
        assert doc.text == expected
        assert server == doc.wire()
        assert load_document(server, key_material=KEYS).text == expected

    @settings(max_examples=120, deadline=None)
    @given(multi_cluster_case(), st.integers(0, 10_000))
    def test_rpc_chain_survives(self, case, seed):
        text, delta, _, block_chars = case
        doc = create_document(
            text, key_material=KEYS, scheme="rpc",
            block_chars=block_chars,
            rng=DeterministicRandomSource(seed),
        )
        doc.apply_delta(delta)
        doc.verify()

    @settings(max_examples=120, deadline=None)
    @given(multi_cluster_case(), st.integers(0, 10_000))
    def test_tail_deletion_absorb(self, case, seed):
        """Append a delete-to-end to stress the absorb-left path."""
        text, delta, scheme, block_chars = case
        doc = create_document(
            text, key_material=KEYS, scheme=scheme,
            block_chars=block_chars,
            rng=DeterministicRandomSource(seed),
        )
        mid = delta.apply(text)
        if len(mid) < 20:
            return
        tail = Delta([Retain(len(mid) - 13), Delete(13)])
        server = doc.wire()
        server = doc.apply_delta(delta).apply(server)
        server = doc.apply_delta(tail).apply(server)
        assert doc.text == tail.apply(mid)
        assert server == doc.wire()
