"""Property tests over the core scheme invariants.

The two invariants everything rests on:

* ``Dec(K, Enc(K, M)) == M`` — for both schemes and every block size;
* ``Dec(IncE*(Enc(M), ops)) == apply*(M, ops)`` **and** the server copy
  evolved by the emitted cdeltas equals the mirror's wire form — the
  commuting-square of Fig. 1.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KeyMaterial, create_document, load_document
from repro.core.delta import Delta
from repro.crypto.random import DeterministicRandomSource
from repro.workloads.diff import myers_delta

ALPHABET = string.ascii_letters + " .,!?é中🎉"

documents = st.text(alphabet=ALPHABET, max_size=120)
schemes = st.sampled_from(["recb", "rpc"])
block_sizes = st.integers(min_value=1, max_value=8)

KEYS = KeyMaterial.from_password("prop", salt=b"saltsaltsa")


def fresh_rng():
    return DeterministicRandomSource(99)


class TestEncDec:
    @settings(max_examples=120, deadline=None)
    @given(documents, schemes, block_sizes)
    def test_dec_inverts_enc(self, text, scheme, block_chars):
        doc = create_document(text, key_material=KEYS, scheme=scheme,
                              block_chars=block_chars, rng=fresh_rng())
        assert doc.text == text
        reloaded = load_document(doc.wire(), key_material=KEYS)
        assert reloaded.text == text

    @settings(max_examples=60, deadline=None)
    @given(documents, schemes)
    def test_ciphertext_hides_content(self, text, scheme):
        doc = create_document(text, key_material=KEYS, scheme=scheme,
                              rng=fresh_rng())
        wire = doc.wire()
        for word in text.split():
            if len(word) >= 4:
                assert word not in wire


@st.composite
def edit_scripts(draw):
    """A starting document plus a list of version snapshots."""
    current = draw(documents)
    versions = [current]
    for _ in range(draw(st.integers(1, 5))):
        kind = draw(st.sampled_from(["insert", "delete", "replace"]))
        n = len(current)
        if kind == "insert" or n == 0:
            pos = draw(st.integers(0, n))
            text = draw(st.text(alphabet=ALPHABET, min_size=1, max_size=20))
            current = current[:pos] + text + current[pos:]
        elif kind == "delete":
            pos = draw(st.integers(0, n - 1))
            count = draw(st.integers(1, n - pos))
            current = current[:pos] + current[pos + count:]
        else:
            pos = draw(st.integers(0, n - 1))
            count = draw(st.integers(1, n - pos))
            text = draw(st.text(alphabet=ALPHABET, max_size=10))
            current = current[:pos] + text + current[pos + count:]
        versions.append(current)
    return versions


class TestIncE:
    @settings(max_examples=80, deadline=None)
    @given(edit_scripts(), schemes, block_sizes)
    def test_commuting_square(self, versions, scheme, block_chars):
        """IncE on ciphertext == edit on plaintext, and the server copy
        (evolved only by cdeltas) matches the mirror exactly."""
        doc = create_document(versions[0], key_material=KEYS, scheme=scheme,
                              block_chars=block_chars, rng=fresh_rng())
        server = doc.wire()
        for before, after in zip(versions, versions[1:]):
            delta = myers_delta(before, after)
            cdelta = doc.apply_delta(delta)
            server = cdelta.apply(server)
            assert doc.text == after
            assert server == doc.wire()
        reloaded = load_document(server, key_material=KEYS)
        assert reloaded.text == versions[-1]

    @settings(max_examples=40, deadline=None)
    @given(edit_scripts())
    def test_rpc_stays_verifiable(self, versions):
        doc = create_document(versions[0], key_material=KEYS, scheme="rpc",
                              rng=fresh_rng())
        for before, after in zip(versions, versions[1:]):
            doc.apply_delta(myers_delta(before, after))
            doc.verify()  # chain + checksum + length hold after every op

    @settings(max_examples=60, deadline=None)
    @given(edit_scripts(), block_sizes)
    def test_block_invariants(self, versions, block_chars):
        """Every block respects capacity; widths sum to the text length."""
        doc = create_document(versions[0], key_material=KEYS, scheme="recb",
                              block_chars=block_chars, rng=fresh_rng())
        for before, after in zip(versions, versions[1:]):
            doc.apply_delta(myers_delta(before, after))
            hist = doc.block_fill_histogram()
            assert all(1 <= width <= block_chars for width in hist)
            assert sum(k * v for k, v in hist.items()) == doc.char_length
